"""Figure 6: HMult time versus processed limbs on four GPUs (best limb batch)."""

import pytest

from repro.bench.reporting import BenchmarkTable
from repro.perf.fideslib_model import FIDESlibModel, best_limb_batch_for

LIMB_COUNTS = (5, 10, 15, 20, 25, 30)


@pytest.mark.parametrize("limbs", LIMB_COUNTS)
def test_fig6_hmult_rtx4090(benchmark, fideslib_4090, limbs):
    """Benchmark the modelled HMult at each ciphertext level on the RTX 4090."""
    cost = fideslib_4090.operation_cost("HMult", limbs=limbs)
    elapsed = benchmark(fideslib_4090.execute, cost).total_time
    benchmark.extra_info.update({"limbs": limbs, "time_us": round(elapsed * 1e6, 2)})
    assert elapsed > 0


def test_fig6_summary(paper_params, all_gpus):
    """Print the Figure 6 series (best limb batch per platform)."""
    table = BenchmarkTable("Figure 6: HMult vs processed limbs (µs, best limb batch)")
    platform_totals = {}
    for platform in all_gpus:
        batch = best_limb_batch_for(platform, paper_params)
        model = FIDESlibModel(platform, paper_params, limb_batch=batch)
        row = {"Platform": platform.name, "Best batch": batch}
        times = []
        for limbs in LIMB_COUNTS:
            elapsed = model.time_operation("HMult", limbs=limbs)
            times.append(elapsed)
            row[f"{limbs} limbs"] = round(elapsed * 1e6, 1)
        table.add_row(**row)
        platform_totals[platform.name] = times[-1]
        assert all(a < b for a, b in zip(times, times[1:]))
    print()
    print(table.to_text())
    # The RTX 4090 (highest bandwidth) is fastest at the full limb count.
    assert platform_totals["RTX 4090"] == min(platform_totals.values())
