"""Cluster-plane benchmark: device-sharded serving and the shard crossover.

Two experiment families, both emitted into ``BENCH_cluster.json``:

**Sharded serving throughput** -- a burst of encrypted polynomial-scoring
requests spread over several program buckets is served at every
``D ∈ {1, 2, 4}`` device count × ``B ∈ {1, 8}`` max-batch policy.
Buckets are placed round-robin on the devices of a PCIe RTX 4090 box (the
planner's whole-bucket placement), every drain's recorded kernel stream is
priced on the multi-device :class:`~repro.perf.trace_model.TraceCostModel`,
and throughput is requests per modeled cluster makespan (max per-device
busy time -- devices drain concurrently).  A member-sharded drain variant
(``shard_drains=True``) is measured at the same loads.  Every response is
asserted **bit-identical** to sequential single-device execution first;
multi-GPU serving must be invisible to clients.

**Planner crossover table** -- per parameter set, HMult+rescale traces
recorded at several batch sizes are priced under both
:class:`~repro.cluster.sharding.MemberShardPlan` and
:class:`~repro.cluster.sharding.LimbShardPlan` on an NVLink V100 box and a
PCIe RTX 4090 box, yielding the predicted member-vs-limb crossover batch
size for each (topology, parameter set) pair.  Slow links and small rings
favour member sharding everywhere; the NVLink box at N=2^15 is where limb
sharding holds on for small batches.

``--min-shard-speedup`` fails the run unless burst modeled throughput at
``D=4, B=8`` reaches that factor over the single-device ``D=1, B=8``
server (the CI gate).

    PYTHONPATH=src python benchmarks/bench_cluster.py --output BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.cluster import ShardPlanner, nvlink_box, pcie_box, single_device
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel
from repro.serve import BatchingPolicy, OpProgram

from run_quick import BENCH_SCHEMA_VERSION, git_sha, quick_params

#: Device counts of the serving sweep (D=1 is the speedup baseline).
DEVICE_COUNTS = (1, 2, 4)

#: Max-batch policies of the serving sweep.
BATCH_POLICIES = (1, 8)

#: Distinct polynomial programs (= serving buckets) in the request mix.
PROGRAM_COUNT = 4

#: Requests per program bucket (so B=8 drains one full bucket at a time).
REQUESTS_PER_PROGRAM = 8

#: Parameter sets of the planner crossover tables: (ring_log2, depth,
#: batch sizes to record traces at).
CROSSOVER_SETS = (
    (12, 6, (1, 2, 4, 8)),
    (13, 6, (1, 2, 4, 8)),
    (15, 8, (1, 2, 4)),
)


def scoring_programs(count: int = PROGRAM_COUNT) -> list[OpProgram]:
    """Distinct two-level polynomial programs (one serving bucket each)."""
    return [
        OpProgram.polynomial([1.0, 0.0, 1.0 + 0.5 * k]) for k in range(count)
    ]


def serve_burst(session, programs, encrypted, *, device_count: int,
                max_batch: int, shard_drains: bool = False) -> tuple[float, dict]:
    """Serve one burst across a D-device box; returns (wall s, metrics).

    ``encrypted`` maps each program to its request vectors (encrypted once
    by the caller so every configuration serves byte-identical inputs, and
    responses can be compared across configurations).
    """
    cluster = (
        single_device(GPU_RTX_4090) if device_count == 1
        else pcie_box(device_count, platform=GPU_RTX_4090)
    )
    server = session.server(
        BatchingPolicy(max_batch_size=max_batch, max_wait=0.0),
        trace_costs=TraceCostModel(GPU_RTX_4090),
        cluster=cluster,
        shard_drains=shard_drains,
    )
    start = time.perf_counter()
    pending = [
        (program, vector, server.submit(program, vector))
        for program in programs
        for vector in encrypted[program]
    ]
    server.flush()
    wall = time.perf_counter() - start

    # Bit-identity gate: every response equals the sequential evaluator.
    for program, vector, request in pending:
        reference = program(vector)
        if not (
            np.array_equal(request.result().handle.c0.stack.data,
                           reference.handle.c0.stack.data)
            and np.array_equal(request.result().handle.c1.stack.data,
                               reference.handle.c1.stack.data)
        ):
            raise AssertionError(
                f"served response diverged from sequential execution at "
                f"D={device_count}, B={max_batch}, shard_drains={shard_drains}"
            )
    return wall, server.metrics.summary()


def run_serving(table: BenchmarkTable, ring_log2: int,
                depth: int) -> dict[tuple[int, int], float]:
    """The serving sweep; returns modeled throughput per (D, B)."""
    session = CKKSSession.create(
        quick_params(ring_log2, depth), seed=3, register_default=False
    )
    programs = scoring_programs()
    rng = np.random.default_rng(17)
    encrypted = {
        program: [
            session.encrypt(rng.uniform(-1.0, 1.0, 16))
            for _ in range(REQUESTS_PER_PROGRAM)
        ]
        for program in programs
    }
    requests = PROGRAM_COUNT * REQUESTS_PER_PROGRAM
    throughput: dict[tuple[int, int], float] = {}
    for shard_drains in (False, True):
        for device_count in DEVICE_COUNTS:
            if shard_drains and device_count == 1:
                continue  # identical to the placed D=1 row
            for max_batch in BATCH_POLICIES:
                if shard_drains and max_batch == 1:
                    continue  # singleton drains cannot shard
                wall, metrics = serve_burst(
                    session, programs, encrypted,
                    device_count=device_count, max_batch=max_batch,
                    shard_drains=shard_drains,
                )
                rps = metrics["modeled_requests_per_sec"]
                if not shard_drains:
                    throughput[(device_count, max_batch)] = rps
                utilization = metrics["device_utilization"]
                table.add_row(
                    mode="sharded-drains" if shard_drains else "placed-buckets",
                    devices=device_count,
                    max_batch=max_batch,
                    requests=requests,
                    buckets=PROGRAM_COUNT,
                    modeled_makespan_s=round(metrics["modeled_makespan_s"], 9),
                    modeled_gpu_rps=round(rps, 1),
                    min_device_util=round(min(utilization.values()), 4),
                    kernels=metrics["modeled_kernels"],
                    python_s=round(wall, 6),
                )
    for max_batch in BATCH_POLICIES:
        for device_count in DEVICE_COUNTS[1:]:
            table.add_row(
                mode="placed-buckets",
                devices=device_count,
                max_batch=max_batch,
                speedup_vs_one_device=round(
                    throughput[(device_count, max_batch)]
                    / throughput[(1, max_batch)], 4
                ),
            )
    return throughput


def run_crossover(table: BenchmarkTable) -> None:
    """The planner crossover tables, one per (parameter set, topology)."""
    for ring_log2, depth, batch_sizes in CROSSOVER_SETS:
        session = CKKSSession.create(
            quick_params(ring_log2, depth), seed=3, register_default=False
        )
        rng = np.random.default_rng(5)
        traces = {}
        for batch_size in batch_sizes:
            rows = rng.uniform(-1, 1, (batch_size, 16))
            a = session.batch([session.encrypt(row) for row in rows])
            b = session.batch([session.encrypt(row) for row in rows])
            with session.trace() as trace:
                (a * b).rescale()
            traces[batch_size] = trace
        for topology in (nvlink_box(4), pcie_box(4)):
            result = ShardPlanner(topology).crossover(traces)
            for comparison in result["comparisons"]:
                table.add_row(
                    parameter_set=f"N=2^{ring_log2}, L={depth}",
                    topology=topology.name,
                    batch=comparison.batch_size,
                    member_makespan_s=round(comparison.member_makespan, 9),
                    limb_makespan_s=round(comparison.limb_makespan, 9),
                    winner=comparison.winner,
                    crossover_batch=result["crossover_batch"],
                )
        session.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_cluster.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=13,
                        help="ring size of the serving sweep")
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument(
        "--min-shard-speedup", type=float, default=None,
        help="fail unless modeled serving throughput at D=4/B=8 reaches "
             "this factor over the single-device server (CI gate)",
    )
    args = parser.parse_args()

    table = BenchmarkTable(
        "Cluster plane: device-sharded serving and shard-plan crossover",
        note="buckets placed round-robin on a PCIe RTX 4090 box; drains "
             "priced per device on the multi-device trace model; responses "
             "bit-identical to sequential execution; crossover tables price "
             "member vs limb shard plans from recorded traces",
    )
    throughput = run_serving(table, args.ring_log2, args.depth)
    run_crossover(table)

    params = quick_params(args.ring_log2, args.depth)
    document = table.to_json(
        schema_version=BENCH_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={"label": params.label,
                       "logN_L_scale_dnum": params.describe()},
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    if args.min_shard_speedup is not None:
        top_devices = max(DEVICE_COUNTS)
        top_batch = max(BATCH_POLICIES)
        speedup = (
            throughput[(top_devices, top_batch)] / throughput[(1, top_batch)]
        )
        if speedup < args.min_shard_speedup:
            raise SystemExit(
                f"FAIL: modeled serving throughput at D={top_devices}, "
                f"B={top_batch} is {speedup:.2f}x the single-device server, "
                f"below the {args.min_shard_speedup:.2f}x gate"
            )
        print(
            f"OK: modeled serving throughput at D={top_devices}, "
            f"B={top_batch} is {speedup:.2f}x the single-device server "
            f"(gate {args.min_shard_speedup:.2f}x)"
        )


if __name__ == "__main__":
    main()
