"""Table V: per-primitive latency of OpenFHE / HEXL / Phantom / FIDESlib.

Parameters [2^16, 29, 59, 4], maximum-level ciphertexts, RTX 4090 GPU and
Ryzen 9 7900 CPU -- the configuration of the paper's Table V.
"""

import pytest

from repro.bench.reporting import BenchmarkTable, format_seconds, speedup

OPERATIONS = (
    "ScalarAdd", "PtAdd", "HAdd", "ScalarMult", "PtMult", "Rescale", "HRotate", "HMult",
)


@pytest.mark.parametrize("operation", OPERATIONS)
def test_table5_operation(benchmark, operation, fideslib_4090, phantom_4090,
                          openfhe_baseline, openfhe_hexl):
    """Model one Table V row and benchmark the FIDESlib evaluation path."""
    cost = fideslib_4090.operation_cost(operation)
    result = benchmark(fideslib_4090.execute, cost)
    fides_time = result.total_time
    base_time = openfhe_baseline.time_operation(operation)
    hexl_time = openfhe_hexl.time_operation(operation)
    phantom_time = (
        phantom_4090.time_operation(operation) if phantom_4090.supports(operation) else None
    )
    benchmark.extra_info.update(
        {
            "operation": operation,
            "openfhe_baseline": format_seconds(base_time),
            "openfhe_hexl": format_seconds(hexl_time),
            "phantom_rtx4090": format_seconds(phantom_time) if phantom_time else "N/A",
            "fideslib_rtx4090": format_seconds(fides_time),
            "speedup_vs_baseline": round(speedup(base_time, fides_time), 1),
        }
    )
    # Shape assertions from the paper: FIDESlib is the fastest backend.
    assert fides_time <= hexl_time and fides_time <= base_time
    if phantom_time is not None:
        assert fides_time <= phantom_time


def test_table5_summary(fideslib_4090, phantom_4090, openfhe_baseline, openfhe_hexl):
    """Print the full reproduced Table V."""
    table = BenchmarkTable(
        "Table V: CKKS primitive latency, [2^16, 29, 59, 4], level 29",
        note="Modelled times; paper-measured values in EXPERIMENTS.md",
    )
    for operation in OPERATIONS:
        base = openfhe_baseline.time_operation(operation)
        hexl = openfhe_hexl.time_operation(operation)
        fides = fideslib_4090.time_operation(operation)
        phantom = (
            format_seconds(phantom_4090.time_operation(operation))
            if phantom_4090.supports(operation)
            else "N/A"
        )
        table.add_row(
            Operation=operation,
            OpenFHE=format_seconds(base),
            HEXL24=format_seconds(hexl),
            Phantom=phantom,
            FIDESlib=format_seconds(fides),
            Speedup=f"{speedup(base, fides):.0f}x",
        )
    print()
    print(table.to_text())
    assert len(table.rows) == len(OPERATIONS)
