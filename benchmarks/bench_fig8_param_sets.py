"""Figure 8: HMult across parameter sets [logN, L, Δ, dnum] on four GPUs."""

import pytest

from repro.bench.reporting import BenchmarkTable
from repro.ckks.params import PARAMETER_SETS
from repro.gpu.platforms import GPU_RTX_4060TI, GPU_RTX_4090, GPU_V100
from repro.perf.fideslib_model import FIDESlibModel

FIG8_SETS = (
    "fig8-13-5-36-2",
    "fig8-14-9-41-3",
    "fig8-15-15-50-3",
    "fig8-16-29-59-4",
    "fig8-17-44-59-4",
)


@pytest.mark.parametrize("set_name", FIG8_SETS)
def test_fig8_hmult_rtx4090(benchmark, set_name):
    """Benchmark the modelled HMult for each Figure 8 parameter set."""
    params = PARAMETER_SETS[set_name]
    model = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
    cost = model.operation_cost("HMult")
    elapsed = benchmark(model.execute, cost).total_time
    benchmark.extra_info.update(
        {"parameter_set": params.describe(),
         "ksk_megabytes": round(params.key_switching_key_bytes() / 1e6, 1),
         "time_us": round(elapsed * 1e6, 2)}
    )
    assert elapsed > 0


def test_fig8_summary(all_gpus):
    """Print the Figure 8 comparison and check its qualitative claims."""
    table = BenchmarkTable("Figure 8: HMult (max level) per parameter set (µs)")
    results = {}
    for set_name in FIG8_SETS:
        params = PARAMETER_SETS[set_name]
        row = {"Parameter set": params.describe()}
        for platform in all_gpus:
            elapsed = FIDESlibModel(platform, params, limb_batch=4).time_operation("HMult")
            row[platform.name] = round(elapsed * 1e6, 1)
            results[(set_name, platform.name)] = elapsed
        table.add_row(**row)
    print()
    print(table.to_text())
    # Small parameter sets are latency-bound and favour high-clock GPUs.
    assert results[("fig8-13-5-36-2", GPU_RTX_4060TI.name)] < \
        results[("fig8-13-5-36-2", GPU_V100.name)]
    # Large parameter sets favour the bandwidth/cache-rich RTX 4090.
    assert results[("fig8-17-44-59-4", GPU_RTX_4090.name)] == min(
        results[(FIG8_SETS[-1], p.name)] for p in all_gpus
    )
