"""Microbenchmarks of the functional Python kernels (reduced parameters).

These complement the paper-scale model benches: they measure the actual
Python implementation of the core kernels (NTT, base conversion,
homomorphic primitives) at the toy parameter set, mirroring the
microbenchmark suite FIDESlib ships with Google Benchmark.  The
homomorphic primitives are driven through the high-level API
(:class:`~repro.api.session.CKKSSession` + ``CipherVector`` operators),
so the measured path is the one applications actually use.
"""

import numpy as np
import pytest

from repro.api import CKKSSession
from repro.core.ntt import get_engine


@pytest.fixture(scope="module")
def functional_setup():
    session = CKKSSession.create(
        "toy", rotations=[1], seed=3, register_default=False
    )
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    return {"session": session, "ct_a": ct_a, "ct_b": ct_b}


def test_micro_ntt_forward(benchmark, functional_setup):
    context = functional_setup["session"].context
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = np.random.default_rng(1).integers(0, context.moduli[0], context.ring_degree)
    benchmark(engine.forward, data)


def test_micro_ntt_inverse(benchmark, functional_setup):
    context = functional_setup["session"].context
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = engine.forward(
        np.random.default_rng(2).integers(0, context.moduli[0], context.ring_degree)
    )
    benchmark(engine.inverse, data)


def test_micro_base_conversion(benchmark, functional_setup):
    context = functional_setup["session"].context
    converter = context.modup_converter(len(context.moduli), 0)
    limbs = [
        np.random.default_rng(i).integers(0, q, context.ring_degree).astype(np.uint64)
        for i, q in enumerate(converter.source.moduli)
    ]
    benchmark(converter.convert, limbs)


def test_micro_hadd(benchmark, functional_setup):
    ct_a, ct_b = functional_setup["ct_a"], functional_setup["ct_b"]
    benchmark(lambda: ct_a + ct_b)


def test_micro_hmult(benchmark, functional_setup):
    ct_a, ct_b = functional_setup["ct_a"], functional_setup["ct_b"]
    benchmark(lambda: ct_a * ct_b)


def test_micro_rescale(benchmark, functional_setup):
    session = functional_setup["session"]
    raw = session.evaluator.multiply(
        functional_setup["ct_a"].handle, functional_setup["ct_b"].handle, rescale=False
    )
    unscaled = session.wrap(raw)
    benchmark(unscaled.rescale)


def test_micro_rotation(benchmark, functional_setup):
    ct_a = functional_setup["ct_a"]
    benchmark(lambda: ct_a << 1)
