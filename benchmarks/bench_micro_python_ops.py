"""Microbenchmarks of the functional Python kernels (reduced parameters).

These complement the paper-scale model benches: they measure the actual
Python implementation of the core kernels (NTT, base conversion,
homomorphic primitives) at the toy parameter set, mirroring the
microbenchmark suite FIDESlib ships with Google Benchmark.  The
homomorphic primitives are driven through the high-level API
(:class:`~repro.api.session.CKKSSession` + ``CipherVector`` operators),
so the measured path is the one applications actually use.
"""

import numpy as np
import pytest

from repro.api import CKKSSession
from repro.ckks.params import CKKSParameters
from repro.core.ntt import get_engine, get_stacked_engine

#: The limb-batch acceptance configuration: N = 2^13, the size used by the
#: committed ``BENCH_limbstack.json`` speedup record.
N13_PARAMS = CKKSParameters(
    ring_degree=1 << 13,
    mult_depth=6,
    scale_bits=28,
    dnum=3,
    first_mod_bits=30,
    label="micro-n13",
)


@pytest.fixture(scope="module")
def functional_setup():
    session = CKKSSession.create(
        "toy", rotations=[1], seed=3, register_default=False
    )
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    return {"session": session, "ct_a": ct_a, "ct_b": ct_b}


@pytest.fixture(scope="module")
def n13_setup():
    session = CKKSSession.create(
        N13_PARAMS, rotations=[1], seed=3, register_default=False
    )
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    return {"session": session, "ct_a": ct_a, "ct_b": ct_b}


def test_micro_ntt_forward(benchmark, functional_setup):
    context = functional_setup["session"].context
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = np.random.default_rng(1).integers(0, context.moduli[0], context.ring_degree)
    benchmark(engine.forward, data)


def test_micro_ntt_inverse(benchmark, functional_setup):
    context = functional_setup["session"].context
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = engine.forward(
        np.random.default_rng(2).integers(0, context.moduli[0], context.ring_degree)
    )
    benchmark(engine.inverse, data)


def test_micro_base_conversion(benchmark, functional_setup):
    context = functional_setup["session"].context
    converter = context.modup_converter(len(context.moduli), 0)
    limbs = [
        np.random.default_rng(i).integers(0, q, context.ring_degree).astype(np.uint64)
        for i, q in enumerate(converter.source.moduli)
    ]
    benchmark(converter.convert, limbs)


def test_micro_hadd(benchmark, functional_setup):
    ct_a, ct_b = functional_setup["ct_a"], functional_setup["ct_b"]
    benchmark(lambda: ct_a + ct_b)


def test_micro_hmult(benchmark, functional_setup):
    ct_a, ct_b = functional_setup["ct_a"], functional_setup["ct_b"]
    benchmark(lambda: ct_a * ct_b)


def test_micro_rescale(benchmark, functional_setup):
    session = functional_setup["session"]
    raw = session.evaluator.multiply(
        functional_setup["ct_a"].handle, functional_setup["ct_b"].handle, rescale=False
    )
    unscaled = session.wrap(raw)
    benchmark(unscaled.rescale)


def test_micro_rotation(benchmark, functional_setup):
    ct_a = functional_setup["ct_a"]
    benchmark(lambda: ct_a << 1)


def test_micro_hmult_rescale_n13(benchmark, n13_setup):
    """HMult + relinearize + rescale at N = 2^13 (the limb-batch headline).

    The committed ``BENCH_limbstack.json`` records this exact operation
    measured before and after the flat limb-stack refactor.
    """
    ct_a, ct_b = n13_setup["ct_a"], n13_setup["ct_b"]
    benchmark(lambda: ct_a * ct_b)


def test_micro_stacked_ntt_n13(benchmark, n13_setup):
    """One stacked forward NTT over every limb of an N = 2^13 polynomial."""
    session = n13_setup["session"]
    context = session.context
    engine = get_stacked_engine(context.ring_degree, tuple(context.moduli))
    stack = n13_setup["ct_a"].handle.c0.stack.data
    benchmark(engine.forward, stack)
