"""Microbenchmarks of the functional Python kernels (reduced parameters).

These complement the paper-scale model benches: they measure the actual
Python implementation of the core kernels (NTT, base conversion,
homomorphic primitives) at the toy parameter set, mirroring the
microbenchmark suite FIDESlib ships with Google Benchmark.
"""

import numpy as np
import pytest

from repro.ckks.context import Context
from repro.ckks.encryption import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.params import PARAMETER_SETS
from repro.core.ntt import get_engine
from repro.core.rns import BaseConverter, RNSBasis


@pytest.fixture(scope="module")
def functional_setup():
    params = PARAMETER_SETS["toy"]
    context = Context(params)
    keys = KeyGenerator(context, seed=3).generate(rotations=[1], conjugation=False)
    evaluator = Evaluator(context, keys)
    encryptor = Encryptor(context, keys.public_key, seed=4)
    rng = np.random.default_rng(0)
    ct_a = encryptor.encrypt_values(rng.uniform(-1, 1, 16))
    ct_b = encryptor.encrypt_values(rng.uniform(-1, 1, 16))
    return {"context": context, "evaluator": evaluator, "ct_a": ct_a, "ct_b": ct_b}


def test_micro_ntt_forward(benchmark, functional_setup):
    context = functional_setup["context"]
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = np.random.default_rng(1).integers(0, context.moduli[0], context.ring_degree)
    benchmark(engine.forward, data)


def test_micro_ntt_inverse(benchmark, functional_setup):
    context = functional_setup["context"]
    engine = get_engine(context.ring_degree, context.moduli[0])
    data = engine.forward(
        np.random.default_rng(2).integers(0, context.moduli[0], context.ring_degree)
    )
    benchmark(engine.inverse, data)


def test_micro_base_conversion(benchmark, functional_setup):
    context = functional_setup["context"]
    converter = context.modup_converter(len(context.moduli), 0)
    limbs = [
        np.random.default_rng(i).integers(0, q, context.ring_degree).astype(np.uint64)
        for i, q in enumerate(converter.source.moduli)
    ]
    benchmark(converter.convert, limbs)


def test_micro_hadd(benchmark, functional_setup):
    ev = functional_setup["evaluator"]
    benchmark(ev.add, functional_setup["ct_a"], functional_setup["ct_b"])


def test_micro_hmult(benchmark, functional_setup):
    ev = functional_setup["evaluator"]
    benchmark(ev.multiply, functional_setup["ct_a"], functional_setup["ct_b"])


def test_micro_rescale(benchmark, functional_setup):
    ev = functional_setup["evaluator"]
    raw = ev.multiply(functional_setup["ct_a"], functional_setup["ct_b"], rescale=False)
    benchmark(ev.rescale, raw)


def test_micro_rotation(benchmark, functional_setup):
    ev = functional_setup["evaluator"]
    benchmark(ev.rotate, functional_setup["ct_a"], 1)
