"""Figure 5: PtMult + Rescale time versus processed limbs on four GPUs."""

import pytest

from repro.bench.reporting import BenchmarkTable
from repro.perf.fideslib_model import FIDESlibModel

LIMB_COUNTS = (5, 10, 15, 20, 25, 30)


@pytest.mark.parametrize("limbs", LIMB_COUNTS)
def test_fig5_ptmult_rescale_rtx4090(benchmark, fideslib_4090, limbs):
    """Benchmark the modelled PtMult+Rescale sequence on the RTX 4090."""
    cost = fideslib_4090.operation_cost("PtMultRescale", limbs=limbs)
    elapsed = benchmark(fideslib_4090.execute, cost).total_time
    benchmark.extra_info.update({"limbs": limbs, "time_us": round(elapsed * 1e6, 2)})
    assert elapsed > 0


def test_fig5_summary(paper_params, all_gpus):
    """Print the Figure 5 series for every platform."""
    table = BenchmarkTable("Figure 5: PtMult + Rescale vs processed limbs (µs)")
    for platform in all_gpus:
        model = FIDESlibModel(platform, paper_params, limb_batch=4)
        row = {"Platform": platform.name}
        times = []
        for limbs in LIMB_COUNTS:
            elapsed = model.time_operation("PtMultRescale", limbs=limbs)
            times.append(elapsed)
            row[f"{limbs} limbs"] = round(elapsed * 1e6, 1)
        table.add_row(**row)
        # Time grows (roughly linearly) with the number of limbs.
        assert all(a < b for a, b in zip(times, times[1:]))
    print()
    print(table.to_text())
