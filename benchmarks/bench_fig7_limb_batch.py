"""Figure 7: impact of the limb-batch parameter on HMult across GPUs."""

import pytest

from repro.bench.reporting import BenchmarkTable
from repro.perf.fideslib_model import FIDESlibModel

BATCH_SIZES = (2, 4, 6, 8, 10, 12)


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_fig7_limb_batch_rtx4090(benchmark, paper_params, batch):
    """Benchmark the modelled HMult at each limb batch on the RTX 4090."""
    from repro.gpu.platforms import GPU_RTX_4090

    model = FIDESlibModel(GPU_RTX_4090, paper_params, limb_batch=batch)
    cost = model.operation_cost("HMult")
    elapsed = benchmark(model.execute, cost).total_time
    benchmark.extra_info.update({"limb_batch": batch, "time_us": round(elapsed * 1e6, 2)})
    assert elapsed > 0


def test_fig7_summary(paper_params, all_gpus):
    """Print the Figure 7 sweep for every platform."""
    table = BenchmarkTable("Figure 7: HMult (max level) vs limb batch (µs)")
    for platform in all_gpus:
        base = FIDESlibModel(platform, paper_params)
        row = {"Platform": platform.name}
        times = {}
        for batch in BATCH_SIZES:
            elapsed = base.with_limb_batch(batch).time_operation("HMult")
            times[batch] = elapsed
            row[f"batch {batch}"] = round(elapsed * 1e6, 1)
        table.add_row(**row)
        # Small-L2 GPUs suffer at large batches (working set spills L2).
        if platform.shared_cache_mb <= 32:
            assert times[12] >= times[2]
    print()
    print(table.to_text())
