"""Table VI: bootstrapping time and amortised time versus slot count."""

import pytest

from repro.bench.reporting import BenchmarkTable, format_seconds, speedup
from repro.perf.workloads import BootstrapWorkload

SLOT_COUNTS = (64, 512, 16384, 32768)


@pytest.mark.parametrize("slots", SLOT_COUNTS)
def test_table6_bootstrap(benchmark, slots, paper_params, fideslib_4090,
                          openfhe_baseline, openfhe_hexl):
    """Model one Table VI row (bootstrap at a given slot count)."""
    workload = BootstrapWorkload(paper_params, slots)
    cost = workload.build(fideslib_4090.costs)
    result = benchmark(fideslib_4090.execute, cost)
    gpu_time = result.total_time
    base_time = openfhe_baseline.time_cost(workload.build(openfhe_baseline.costs))
    hexl_time = openfhe_hexl.time_cost(workload.build(openfhe_hexl.costs))
    benchmark.extra_info.update(
        {
            "slots": slots,
            "levels_remaining": workload.remaining_levels,
            "openfhe": format_seconds(base_time),
            "hexl_24_threads": format_seconds(hexl_time),
            "fideslib_rtx4090": format_seconds(gpu_time),
            "amortized_us": round(workload.amortized_time_us(gpu_time), 3),
            "speedup_vs_hexl": round(speedup(hexl_time, gpu_time), 1),
        }
    )
    # Paper: bootstrapping is no less than 70x faster than HEXL OpenFHE.
    assert speedup(hexl_time, gpu_time) > 70


def test_table6_summary(paper_params, fideslib_4090, openfhe_baseline, openfhe_hexl):
    """Print the full reproduced Table VI."""
    table = BenchmarkTable("Table VI: bootstrapping performance vs slot count")
    for slots in SLOT_COUNTS:
        workload = BootstrapWorkload(paper_params, slots)
        gpu = fideslib_4090.execute(workload.build(fideslib_4090.costs)).total_time
        base = openfhe_baseline.time_cost(workload.build(openfhe_baseline.costs))
        hexl = openfhe_hexl.time_cost(workload.build(openfhe_hexl.costs))
        table.add_row(
            Slots=slots,
            Levels=workload.remaining_levels,
            OpenFHE=format_seconds(base),
            HEXL24=format_seconds(hexl),
            FIDESlib=format_seconds(gpu),
            Amortized_us=round(workload.amortized_time_us(gpu), 3),
            Speedup=f"{speedup(hexl, gpu):.0f}x",
        )
    print()
    print(table.to_text())
    amortized = table.column_values("Amortized_us")
    assert all(a > b for a, b in zip(amortized, amortized[1:]))
