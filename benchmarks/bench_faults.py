"""Chaos-replay benchmark: availability and bit-identity under injected faults.

Two runs against the serving plane's fault-tolerant control plane:

* **functional oracle** -- a modest replay on the functional backend with
  a ``D=4`` cluster, sharded drains and a seeded fault plan (OOM windows,
  transient drain failures, one device loss).  Every OK response is
  asserted **bit-identical** to fault-free sequential execution and every
  failure must carry a typed :class:`~repro.serve.errors.ServeError` --
  the acceptance contract, checked on real ciphertexts.
* **scale replay** (headline, CI-gated) -- a burst arrival trace of 10^4
  requests on the cost-model backend under a plan covering 10% of the
  timeline with OOM windows plus scattered transients and one device
  loss at ``D=4``.  Gates: availability (completed / admitted) at or
  above ``--min-availability`` (CI pins 0.99) and zero OK responses
  dispatched past their deadlines.

Both runs are pure functions of their seeds on the simulated clock, so
the artifact trajectory is comparable commit to commit.

    PYTHONPATH=src python benchmarks/bench_faults.py --output BENCH_faults.json
"""

from __future__ import annotations

import argparse
import platform
import time
import warnings

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.cluster import pcie_box
from repro.obs import MetricsRegistry
from repro.serve import (
    AdmissionPolicy,
    BatchingPolicy,
    FaultPlan,
    OpProgram,
    ReplayDriver,
    RetryPolicy,
    Server,
    burst_arrivals,
)

from run_quick import BENCH_SCHEMA_VERSION, git_sha, quick_params

#: The served program: 1 + 2x^2 (two levels deep, no rotation keys).
PROGRAM = OpProgram.polynomial([1.0, 0.0, 2.0])

#: Cluster size of both runs (one device dies mid-replay).
DEVICE_COUNT = 4

#: Requests of the functional bit-identity oracle.
ORACLE_REQUESTS = 48

#: Requests of the gated cost-model scale replay.
SCALE_REQUESTS = 10_000


def chaos_server(backend, *, plan: FaultPlan, cluster=None,
                 shard_drains: bool = False,
                 max_queue_depth: int | None = None) -> Server:
    """One consistently-configured server for both runs."""
    admission = (
        AdmissionPolicy(max_queue_depth=max_queue_depth)
        if max_queue_depth is not None else None
    )
    return Server(
        backend, BatchingPolicy(max_batch_size=8, max_wait=1e-3),
        cluster=cluster, shard_drains=shard_drains,
        admission=admission,
        retry=RetryPolicy(max_retries=3, backoff=1e-5),
        fault_plan=plan,
    )


def chaos_plan(seed: int, duration: float, *, device: int | None = None) -> FaultPlan:
    """OOM windows over 10% of the timeline + transients (+ one device loss)."""
    device_loss = None if device is None else (duration / 2.0, device)
    return FaultPlan.generate(
        seed, duration=duration, oom_fraction=0.10,
        oom_window=duration / 50.0, transients=3, device_loss=device_loss,
    )


def run_functional_oracle(table: BenchmarkTable, *, ring_log2: int,
                          depth: int, seed: int) -> dict:
    """Bit-identity under faults on the real data plane (D=4, sharded)."""
    session = CKKSSession.create(quick_params(ring_log2, depth), seed=3,
                                 register_default=False)
    rng = np.random.default_rng(seed)
    vectors = [session.encrypt(rng.uniform(-1, 1, 8))
               for _ in range(ORACLE_REQUESTS)]
    references = [PROGRAM(vector) for vector in vectors]  # fault-free oracle

    arrivals = burst_arrivals(ORACLE_REQUESTS, bursts=6, burst_gap=1e-2,
                              seed=seed)
    duration = float(arrivals[-1]) + 1e-2
    server = chaos_server(
        session, plan=chaos_plan(seed, duration, device=0),
        cluster=pcie_box(DEVICE_COUNT), shard_drains=True,
    )
    registry = MetricsRegistry()
    driver = ReplayDriver(server, PROGRAM, lambda i: vectors[i],
                          deadline_offset=2e-2, registry=registry)
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = driver.run(arrivals)
    wall = time.perf_counter() - start

    identical = 0
    for request, reference in zip(driver.requests, references):
        response = request.response()
        if response.ok:
            result = request.result()
            if not (
                np.array_equal(result.handle.c0.stack.data,
                               reference.handle.c0.stack.data)
                and np.array_equal(result.handle.c1.stack.data,
                                   reference.handle.c1.stack.data)
            ):
                raise AssertionError(
                    f"response {request.id} diverged from fault-free "
                    f"sequential execution under the fault plan"
                )
            identical += 1
        elif response.error_kind not in {
            "RequestRejected", "DeadlineExceeded", "DrainFailed", "DeviceLost",
        }:
            raise AssertionError(
                f"response {request.id} failed with untyped error "
                f"{response.error_kind}: {response.error}"
            )
    # One source of truth: the driver published the report onto the
    # registry, so the table row reads the replay_* instruments instead of
    # re-folding ReplayReport fields by hand.
    table.add_row(
        run="functional-oracle",
        requests=ORACLE_REQUESTS,
        devices=DEVICE_COUNT,
        bit_identical_ok=identical,
        availability=round(registry.value("replay_availability"), 6),
        retries=int(registry.value("replay_events_total", kind="retry")),
        degraded_drains=int(
            registry.value("replay_events_total", kind="degraded_drain")
        ),
        device_losses=int(
            registry.value("replay_events_total", kind="device_loss")
        ),
        deadline_violations=int(
            registry.value("replay_events_total", kind="deadline_violation")
        ),
        python_s=round(wall, 6),
    )
    summary = report.summary()
    summary["availability"] = registry.value("replay_availability")
    summary["deadline_violations"] = int(
        registry.value("replay_events_total", kind="deadline_violation")
    )
    summary["bit_identical_ok"] = identical
    return summary


def run_scale_replay(table: BenchmarkTable, *, requests: int,
                     seed: int) -> dict:
    """The gated 10^4-request burst replay on the cost-model backend."""
    session = CKKSSession.create(quick_params(), seed=3, register_default=False)
    backend = session.cost_backend()
    arrivals = burst_arrivals(requests, bursts=max(1, requests // 100),
                              burst_gap=5e-3, seed=seed)
    duration = float(arrivals[-1]) + 5e-3
    server = chaos_server(
        backend, plan=chaos_plan(seed, duration, device=0),
        cluster=pcie_box(DEVICE_COUNT),
        max_queue_depth=64,
    )
    registry = MetricsRegistry()
    driver = ReplayDriver(server, PROGRAM,
                          lambda i: backend.encrypt(np.full(16, 0.5)),
                          deadline_offset=1e-2, registry=registry)
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = driver.run(arrivals)
    wall = time.perf_counter() - start

    def events(kind: str) -> int:
        return int(registry.value("replay_events_total", kind=kind))

    # The gated figures read off the registry the driver published to.
    table.add_row(
        run="scale-replay",
        requests=requests,
        devices=DEVICE_COUNT,
        admitted=int(registry.value("replay_requests_total",
                                    outcome="admitted")),
        shed=int(registry.value("replay_requests_total", outcome="shed")),
        availability=round(registry.value("replay_availability"), 6),
        retries=events("retry"),
        degraded_drains=events("degraded_drain"),
        deadline_misses=events("deadline_miss"),
        device_losses=events("device_loss"),
        deadline_violations=events("deadline_violation"),
        p95_wait_ms=round(
            registry.value("replay_latency_seconds", quantile="0.95") * 1e3, 3
        ),
        python_s=round(wall, 6),
        python_rps=round(requests / wall, 1),
    )
    summary = report.summary()
    summary["availability"] = registry.value("replay_availability")
    summary["admitted"] = int(
        registry.value("replay_requests_total", outcome="admitted")
    )
    summary["deadline_violations"] = events("deadline_violation")
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_faults.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=12)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--requests", type=int, default=SCALE_REQUESTS,
                        help="request count of the scale replay")
    parser.add_argument("--seed", type=int, default=29,
                        help="seed of both the arrival trace and fault plan")
    parser.add_argument(
        "--min-availability", type=float, default=None,
        help="fail unless scale-replay availability (completed / admitted) "
             "reaches this fraction (CI gate)",
    )
    args = parser.parse_args()

    table = BenchmarkTable(
        "Fault-tolerant serving: availability under a seeded chaos plan",
        note=f"FaultPlan: 10% OOM timeline + 3 transients + device 0 lost "
             f"mid-replay on a D={DEVICE_COUNT} PCIe box; burst arrivals; "
             f"all timing on the simulated clock (deterministic)",
    )
    oracle = run_functional_oracle(table, ring_log2=args.ring_log2,
                                   depth=args.depth, seed=args.seed)
    scale = run_scale_replay(table, requests=args.requests, seed=args.seed)

    params = quick_params(args.ring_log2, args.depth)
    document = table.to_json(
        schema_version=BENCH_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={"label": params.label,
                       "logN_L_scale_dnum": params.describe()},
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    for name, report in (("functional-oracle", oracle), ("scale-replay", scale)):
        if report["deadline_violations"]:
            raise SystemExit(
                f"FAIL: {name} dispatched {report['deadline_violations']} OK "
                f"responses past their deadlines"
            )
    if args.min_availability is not None:
        achieved = scale["availability"]
        if achieved < args.min_availability:
            raise SystemExit(
                f"FAIL: scale-replay availability is {achieved:.4f}, below "
                f"the {args.min_availability:.4f} gate"
            )
        print(
            f"OK: availability {achieved:.4f} over {scale['admitted']} "
            f"admitted requests (gate {args.min_availability:.4f}), "
            f"0 deadline violations, all OK responses bit-identical"
        )


if __name__ == "__main__":
    main()
