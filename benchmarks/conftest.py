"""Shared fixtures for the table/figure benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation section using the performance models (for paper-scale
parameters) or the functional Python backend (for the microbenchmarks).
Run with ``pytest benchmarks/ --benchmark-only``; the reproduced tables are
attached to each benchmark's ``extra_info`` and printed when ``-s`` is
given.
"""

from __future__ import annotations

import pytest

from repro.ckks.params import PARAMETER_SETS
from repro.gpu.platforms import ALL_GPUS, GPU_RTX_4090
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.openfhe_model import OpenFHEModel
from repro.perf.phantom_model import PhantomModel


@pytest.fixture(scope="session")
def paper_params():
    """The evaluation's default parameter set [2^16, 29, 59, 4]."""
    return PARAMETER_SETS["paper-default"]


@pytest.fixture(scope="session")
def lr_params():
    """The logistic-regression parameter set [2^16, 26, 59, 4]."""
    return PARAMETER_SETS["paper-lr"]


@pytest.fixture(scope="session")
def fideslib_4090(paper_params):
    """FIDESlib execution model on the RTX 4090."""
    return FIDESlibModel(GPU_RTX_4090, paper_params, limb_batch=4)


@pytest.fixture(scope="session")
def phantom_4090(paper_params):
    """Phantom execution model on the RTX 4090."""
    return PhantomModel(GPU_RTX_4090, paper_params)


@pytest.fixture(scope="session")
def openfhe_baseline(paper_params):
    """Single-threaded OpenFHE model."""
    return OpenFHEModel(paper_params, variant="baseline")


@pytest.fixture(scope="session")
def openfhe_hexl(paper_params):
    """HEXL/AVX-512 24-thread OpenFHE model."""
    return OpenFHEModel(paper_params, variant="hexl")


@pytest.fixture(scope="session")
def all_gpus():
    """The four GPU platforms of Table IV."""
    return ALL_GPUS
