"""Table IV: compute-platform specifications used by every experiment."""

from repro.bench.reporting import BenchmarkTable
from repro.gpu.platforms import platform_table


def test_table4_platform_specifications(benchmark):
    """Regenerate Table IV (and benchmark the table construction itself)."""
    rows = benchmark(platform_table)
    table = BenchmarkTable("Table IV: platform specifications")
    for row in rows:
        table.add_row(**row)
    print()
    print(table.to_text())
    benchmark.extra_info["platforms"] = [row["Compute Platform"] for row in rows]
    assert len(rows) == 5
