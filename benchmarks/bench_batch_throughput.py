"""Throughput plane: batched vs sequential HMult+rescale, interleaved protocol.

The deeper companion of the ``run_quick.py`` batched-throughput rows: for
each batch size ``B`` it measures a serving-style workload -- ``B``
independent HMult+rescale requests -- three ways:

* **sequential loop** on the per-ciphertext evaluator (the baseline every
  serving deployment starts from);
* **batched** through :class:`repro.ckks.batch.BatchEvaluator`'s fused
  ``(B·L, N)`` kernels, asserting the outputs stay bit-identical to the
  sequential loop;
* **modeled GPU** makespans of both recorded kernel traces
  (:class:`repro.perf.trace_model.TraceCostModel`), which is where the
  §III-F.1 launch-overhead amortisation shows: the sequential loop
  launches ``B×`` the kernels over the same bytes.

Wall-clock timing uses the interleaved A/B protocol of the PR-2 limb-stack
benchmarks: sequential and batched timings alternate within each
repetition so drift (thermal, allocator state) hits both sides equally,
and the best-of-``repeats`` per side is reported.

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel

from run_quick import BENCH_SCHEMA_VERSION, git_sha, quick_params


def measure_batch(session, batch_size: int, *, repeats: int = 5):
    """Interleaved sequential/batched timing plus recorded traces."""
    rng = np.random.default_rng(batch_size)
    vectors_a = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    vectors_b = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    batch_a = session.batch(vectors_a)
    batch_b = session.batch(vectors_b)

    def sequential():
        return [a * b for a, b in zip(vectors_a, vectors_b)]

    def batched():
        return batch_a * batch_b

    # Bit-identity gate: the batched members must equal the loop's outputs.
    reference = sequential()
    for member, ref in zip(batched().split(), reference):
        if not (
            np.array_equal(member.handle.c0.stack.data, ref.handle.c0.stack.data)
            and np.array_equal(member.handle.c1.stack.data, ref.handle.c1.stack.data)
        ):
            raise AssertionError(
                f"batched output diverged from the sequential loop at B={batch_size}"
            )

    best_seq = best_bat = float("inf")
    for _ in range(repeats):  # interleaved A/B: drift hits both sides
        start = time.perf_counter()
        sequential()
        best_seq = min(best_seq, time.perf_counter() - start)
        start = time.perf_counter()
        batched()
        best_bat = min(best_bat, time.perf_counter() - start)

    with session.trace() as trace_seq:
        sequential()
    with session.trace() as trace_bat:
        batched()
    return best_seq, best_bat, trace_seq, trace_bat


def run(ring_log2: int = 13, depth: int = 6, batch_sizes=(1, 2, 4, 8),
        repeats: int = 5) -> BenchmarkTable:
    """Build the batched-throughput comparison table."""
    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(params, seed=3, register_default=False)
    pricer = TraceCostModel(GPU_RTX_4090)
    table = BenchmarkTable(
        f"Batched HMult+rescale throughput [{params.describe()}]",
        note="interleaved A/B protocol; batched outputs bit-identical to the "
             "sequential loop; modeled rows price the recorded kernel traces",
    )
    for batch_size in batch_sizes:
        seq_s, bat_s, trace_seq, trace_bat = measure_batch(
            session, batch_size, repeats=repeats
        )
        seq_model = pricer.price(trace_seq, streams=1)
        bat_model = pricer.price(trace_bat, streams=1)
        table.add_row(
            batch=batch_size,
            seq_python_s=round(seq_s, 6),
            batch_python_s=round(bat_s, 6),
            python_speedup=round(seq_s / bat_s, 4),
            seq_model_us=round(seq_model.makespan * 1e6, 3),
            batch_model_us=round(bat_model.makespan * 1e6, 3),
            model_speedup=round(seq_model.makespan / bat_model.makespan, 4),
            seq_kernels=seq_model.kernel_count,
            batch_kernels=bat_model.kernel_count,
            batch_model_ops_per_sec=round(batch_size / bat_model.makespan, 1),
        )
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="optional JSON artifact path")
    parser.add_argument("--ring-log2", type=int, default=13)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    table = run(args.ring_log2, args.depth, repeats=args.repeats)
    print(table.to_text())
    if args.output:
        params = quick_params(args.ring_log2, args.depth)
        document = table.to_json(
            schema_version=BENCH_SCHEMA_VERSION,
            git_sha=git_sha(),
            parameter_set={"label": params.label,
                           "logN_L_scale_dnum": params.describe()},
            python=platform.python_version(),
            machine=platform.machine(),
            numpy=np.__version__,
        )
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
