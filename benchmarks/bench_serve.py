"""Serving-plane benchmark: throughput vs offered load and max-batch policy.

Drives a stream of encrypted logistic-regression scoring requests through
:class:`repro.serve.Server` for every max-batch policy ``B ∈ {1, 2, 4, 8}``
under two offered loads:

* **burst** -- all requests arrive at once (the throughput ceiling: every
  drain fills a full fused batch);
* **paced** -- requests arrive on the simulated clock faster than
  ``max_wait`` but slower than instantly, so drains mix full and
  deadline-partial batches (what dynamic batching actually sees).

Two throughput figures per configuration:

* **python requests/sec**: real wall clock of the functional data plane
  (the bit-exact correctness oracle, not a GPU);
* **modeled GPU requests/sec** (headline, CI-gated): each drain's recorded
  kernel stream priced by :class:`~repro.perf.trace_model.TraceCostModel`,
  where the §III-F.1 launch-overhead amortisation shows -- an unbatched
  server launches ``B×`` the kernels per fused-batch-equivalent of work.

``--min-throughput-gain`` fails the run unless burst modeled throughput at
the largest ``B`` reaches that factor over the unbatched (``B=1``) server.
Every response is asserted bit-identical to sequential scoring first.

    PYTHONPATH=src python benchmarks/bench_serve.py --output BENCH_serve.json
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np

from repro.api import CKKSSession
from repro.apps.logistic_regression import EncryptedLRScorer
from repro.bench.reporting import BenchmarkTable
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel
from repro.serve import BatchingPolicy, SimulatedClock

from run_quick import BENCH_SCHEMA_VERSION, git_sha, quick_params

#: Max-batch policies measured (the acceptance pins B=8 vs B=1).
BATCH_POLICIES = (1, 2, 4, 8)

#: Model width of the scoring workload (needs rotation keys 1 and 2).
FEATURES = 4

#: Simulated wait budget of every policy (seconds).
MAX_WAIT = 2e-3


def build_session(ring_log2: int, depth: int) -> tuple[CKKSSession, EncryptedLRScorer]:
    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(
        params, rotations=EncryptedLRScorer.required_rotations(FEATURES),
        seed=3, register_default=False,
    )
    weights = np.random.default_rng(42).uniform(-1.0, 1.0, FEATURES)
    return session, EncryptedLRScorer(session, weights)


def serve_stream(session, scorer, *, max_batch: int, requests: int,
                 interarrival: float) -> tuple[float, dict]:
    """Serve one request stream; returns (python wall seconds, metrics summary).

    ``interarrival == 0`` is the burst load (everything queued before one
    flush); otherwise arrivals advance the simulated clock and the server
    is driven through every policy deadline (the ``drain`` loop).
    """
    rng = np.random.default_rng(max_batch * 1009 + requests)
    rows = [rng.uniform(-1.0, 1.0, FEATURES) for _ in range(requests)]
    vectors = [session.encrypt(row) for row in rows]
    program = scorer.program()
    clock = SimulatedClock()
    server = session.server(
        BatchingPolicy(max_batch_size=max_batch, max_wait=MAX_WAIT),
        clock=clock,
        trace_costs=TraceCostModel(GPU_RTX_4090),
    )

    start = time.perf_counter()
    if interarrival == 0.0:
        pending = [server.submit(program, vector) for vector in vectors]
        server.flush()
    else:
        pending = []
        for vector in vectors:
            pending.append(server.submit(program, vector))
            clock.advance(interarrival)
            server.poll()
        server.drain()
    wall = time.perf_counter() - start

    # Bit-identity gate: every response equals sequential scoring.
    for request in pending:
        reference = scorer.score(request.vector)
        if not (
            np.array_equal(request.result().handle.c0.stack.data,
                           reference.handle.c0.stack.data)
            and np.array_equal(request.result().handle.c1.stack.data,
                               reference.handle.c1.stack.data)
        ):
            raise AssertionError(
                f"served response diverged from sequential scoring at "
                f"B={max_batch}"
            )
    return wall, server.metrics.summary()


def run(ring_log2: int = 13, depth: int = 6, *, burst_requests: int = 16,
        paced_requests: int = 8) -> tuple[BenchmarkTable, dict[int, float]]:
    """Build the serving table; returns it plus burst modeled throughput per B."""
    session, scorer = build_session(ring_log2, depth)
    table = BenchmarkTable(
        f"Serving plane: encrypted LR scoring [{session.params.describe()}]",
        note="shape-bucketed dynamic batching over fused (B*L, N) kernels; "
             "responses bit-identical to sequential scoring; modeled rows "
             "price each drain's recorded kernel trace (1 stream)",
    )
    burst_throughput: dict[int, float] = {}
    loads = (
        ("burst", burst_requests, 0.0),
        ("paced", paced_requests, MAX_WAIT / 2),
    )
    for load_name, requests, interarrival in loads:
        for max_batch in BATCH_POLICIES:
            wall, metrics = serve_stream(
                session, scorer, max_batch=max_batch, requests=requests,
                interarrival=interarrival,
            )
            modeled_rps = metrics["modeled_requests_per_sec"]
            if load_name == "burst":
                burst_throughput[max_batch] = modeled_rps
            table.add_row(
                load=load_name,
                max_batch=max_batch,
                requests=requests,
                mean_batch=round(metrics["mean_batch_size"], 3),
                python_s=round(wall, 6),
                python_rps=round(requests / wall, 3),
                modeled_s=round(metrics["modeled_seconds"], 9),
                modeled_gpu_rps=round(modeled_rps, 1),
                kernels=metrics["modeled_kernels"],
                p50_wait_ms=round(metrics["p50_latency_s"] * 1e3, 3),
                p95_wait_ms=round(metrics["p95_latency_s"] * 1e3, 3),
            )
    for max_batch in BATCH_POLICIES[1:]:
        table.add_row(
            load="burst",
            max_batch=max_batch,
            speedup_vs_unbatched=round(
                burst_throughput[max_batch] / burst_throughput[1], 4
            ),
        )
    return table, burst_throughput


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=13)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--burst-requests", type=int, default=16)
    parser.add_argument("--paced-requests", type=int, default=8)
    parser.add_argument(
        "--min-throughput-gain", type=float, default=None,
        help="fail unless burst modeled GPU throughput at the largest "
             "max-batch policy reaches this factor over B=1 (CI gate)",
    )
    args = parser.parse_args()

    table, burst_throughput = run(
        args.ring_log2, args.depth,
        burst_requests=args.burst_requests,
        paced_requests=args.paced_requests,
    )
    params = quick_params(args.ring_log2, args.depth)
    document = table.to_json(
        schema_version=BENCH_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={"label": params.label,
                       "logN_L_scale_dnum": params.describe()},
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    if args.min_throughput_gain is not None:
        largest = max(burst_throughput)
        gain = burst_throughput[largest] / burst_throughput[1]
        if gain < args.min_throughput_gain:
            raise SystemExit(
                f"FAIL: modeled serving throughput gain at B={largest} is "
                f"{gain:.2f}x over unbatched, below the "
                f"{args.min_throughput_gain:.2f}x gate"
            )
        print(
            f"OK: modeled serving throughput gain at B={largest} is "
            f"{gain:.2f}x over unbatched (gate {args.min_throughput_gain:.2f}x)"
        )


if __name__ == "__main__":
    main()
