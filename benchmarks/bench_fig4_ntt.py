"""Figure 4: (i)NTT time per limb versus limb count, FIDESlib vs Phantom."""

import pytest

from repro.bench.reporting import BenchmarkTable
from repro.gpu.platforms import GPU_RTX_4060TI, GPU_RTX_4090
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.phantom_model import PhantomModel

LIMB_COUNTS = (16, 32, 64, 128)
PLATFORMS = (GPU_RTX_4090, GPU_RTX_4060TI)


@pytest.mark.parametrize("platform", PLATFORMS, ids=lambda p: p.name)
@pytest.mark.parametrize("limbs", LIMB_COUNTS)
@pytest.mark.parametrize("inverse", [False, True], ids=["ntt", "intt"])
def test_fig4_ntt_per_limb(benchmark, paper_params, platform, limbs, inverse):
    """Model one Figure 4 data point."""
    fides = FIDESlibModel(platform, paper_params, limb_batch=2)
    phantom = PhantomModel(platform, paper_params)
    operation = "iNTT" if inverse else "NTT"
    cost = fides.operation_cost(operation, limbs=limbs)
    fides_time = benchmark(fides.execute, cost).total_time
    phantom_time = phantom.time_operation(operation, limbs=limbs)
    benchmark.extra_info.update(
        {
            "platform": platform.name,
            "limbs": limbs,
            "fideslib_us_per_limb": round(fides_time / limbs * 1e6, 3),
            "phantom_us_per_limb": round(phantom_time / limbs * 1e6, 3),
        }
    )
    assert fides_time < phantom_time  # FIDESlib wins at every working-set size


def test_fig4_summary(paper_params):
    """Print the full Figure 4 series."""
    table = BenchmarkTable("Figure 4: time per (i)NTT vs number of limbs (µs/limb)")
    for platform in PLATFORMS:
        fides = FIDESlibModel(platform, paper_params, limb_batch=2)
        phantom = PhantomModel(platform, paper_params)
        for limbs in LIMB_COUNTS:
            table.add_row(
                Platform=platform.name,
                Limbs=limbs,
                FIDESlib_NTT=round(fides.time_operation("NTT", limbs=limbs) / limbs * 1e6, 3),
                Phantom_NTT=round(phantom.time_operation("NTT", limbs=limbs) / limbs * 1e6, 3),
                FIDESlib_iNTT=round(fides.time_operation("iNTT", limbs=limbs) / limbs * 1e6, 3),
                Phantom_iNTT=round(phantom.time_operation("iNTT", limbs=limbs) / limbs * 1e6, 3),
            )
    print()
    print(table.to_text())
    assert len(table.rows) == len(PLATFORMS) * len(LIMB_COUNTS)
