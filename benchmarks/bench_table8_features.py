"""Table VIII: qualitative feature comparison of GPU CKKS libraries."""

from repro.bench.reporting import BenchmarkTable
from repro.perf.feature_matrix import FEATURE_MATRIX, feature_table


def test_table8_feature_matrix(benchmark):
    """Regenerate Table VIII."""
    rows = benchmark(feature_table)
    table = BenchmarkTable("Table VIII: qualitative comparison of GPU CKKS libraries")
    for row in rows:
        table.add_row(**row)
    print()
    print(table.to_text())
    fides = next(lib for lib in FEATURE_MATRIX if lib.name == "FIDESlib")
    assert fides.bootstrapping and fides.openfhe_interoperability
    assert len(rows) == 9
