"""CI gate: the recorded execution plane must match the hand-built cost model.

Records an HMult+rescale kernel trace from the real data plane
(:mod:`repro.core.dispatch`) and reconciles it against
``CKKSOperationCosts.hmult(include_rescale=True)`` --- kernel counts and
bytes per kernel kind.  Divergence beyond the tolerance means the
analytical workload math has drifted from what :mod:`repro.core` actually
executes, which would silently skew every figure/table benchmark; the
script exits non-zero so CI fails loudly instead.

    PYTHONPATH=src python benchmarks/check_trace_reconciliation.py

Also asserts the §III-F.1 scheduling trend on the recorded trace
(multi-stream makespan must not exceed the single-stream makespan) and
reconciles the throughput plane: a batched HMult+rescale trace at ``B``
ciphertexts must move ``B×`` the bytes of the single-ciphertext cost
model per kernel kind while launching the *same* number of kernels --
the fused ``(B·L, N)`` contract of :mod:`repro.ckks.batch`.

Finally reconciles the 59-bit double-word plane: an HMult+rescale trace
at a paper-class 59-bit parameter set (residues as hi/lo uint64 digit
planes) must move ``2×`` the bytes of the single-word cost model per
kernel kind while launching the *same* number of kernels -- the dword
backend widens every element to 16 bytes but never changes the kernel
structure.

The fusion plane is checked last: :func:`repro.core.fusion.fuse_trace`
applied to a stage-granular HMult+rescale trace must conserve total
``int_ops`` exactly and must never increase ``bytes_moved`` -- fusion is
only allowed to delete global-memory round trips, not to invent or drop
arithmetic.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from repro.api import CKKSSession
from repro.core.dispatch import get_dispatcher
from repro.core.fusion import fuse_trace
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.calibration import reconcile_trace
from repro.perf.costmodel import CKKSOperationCosts
from repro.perf.trace_model import TraceCostModel

from run_quick import paper_scale_params, quick_params


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ring-log2", type=int, default=12)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="maximum relative kernel-count/bytes divergence")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="batch width of the throughput-plane check")
    args = parser.parse_args()

    params = quick_params(args.ring_log2, args.depth)
    session = CKKSSession.create(params, seed=3, register_default=False)
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))

    with session.trace() as trace:
        ct_a * ct_b  # HMult + rescale on the real data plane

    limbs = ct_a.limb_count
    costs = CKKSOperationCosts(params, limb_batch=None, fusion=True)
    report = reconcile_trace(
        trace, costs.hmult(limbs, include_rescale=True),
        name=f"HMult+rescale @ N=2^{args.ring_log2}, {limbs} limbs",
    )
    print(report.describe())

    pricer = TraceCostModel(GPU_RTX_4090)
    single = pricer.price(trace, streams=1).makespan
    multi = pricer.price(trace, streams=8).makespan
    print(f"makespan: 1 stream {single * 1e6:.1f} us, 8 streams {multi * 1e6:.1f} us")

    failed = False
    if not report.within(kernel_tolerance=args.tolerance,
                         bytes_tolerance=args.tolerance):
        print(
            f"FAIL: trace diverges from the cost model beyond "
            f"{args.tolerance:.0%} (kernels {report.kernel_count_delta:.2%}, "
            f"bytes {report.bytes_delta:.2%})"
        )
        failed = True
    if multi > single + 1e-12:
        print("FAIL: multi-stream makespan exceeds single-stream makespan")
        failed = True

    # -- throughput plane: batched trace vs B x the single-ciphertext model --
    batch_size = args.batch_size
    batch_a = session.batch([session.wrap(ct_a.handle.copy()) for _ in range(batch_size)])
    batch_b = session.batch([session.wrap(ct_b.handle.copy()) for _ in range(batch_size)])
    with session.trace() as batch_trace:
        batch_a * batch_b  # batched HMult + rescale, fused kernels
    hmult_cost = costs.hmult(limbs, include_rescale=True)
    scaled = [k.scaled(batch_size) for k in hmult_cost.kernels]
    bytes_report = reconcile_trace(
        batch_trace, scaled,
        name=f"batched HMult+rescale, B={batch_size} vs {batch_size}x model bytes",
    )
    print(bytes_report.describe())
    launch_report = reconcile_trace(
        batch_trace, hmult_cost,
        name=f"batched HMult+rescale, B={batch_size} vs 1x model launches",
    )
    if bytes_report.bytes_delta > args.tolerance:
        print(
            f"FAIL: batched trace bytes diverge from {batch_size}x the "
            f"single-ciphertext model by {bytes_report.bytes_delta:.2%} "
            f"(> {args.tolerance:.0%})"
        )
        failed = True
    if launch_report.kernel_count_delta > args.tolerance:
        print(
            f"FAIL: batched trace launches {launch_report.kernel_count_trace:.0f} "
            f"kernels vs {launch_report.kernel_count_model:.0f} for one "
            f"sequential op (delta {launch_report.kernel_count_delta:.2%} > "
            f"{args.tolerance:.0%}); the throughput plane must launch once "
            f"per op for the whole batch"
        )
        failed = True
    else:
        print(
            f"batched launches {launch_report.kernel_count_trace:.0f} == "
            f"single-op launches {launch_report.kernel_count_model:.0f} "
            f"at {batch_size}x bytes (delta {bytes_report.bytes_delta:.2%})"
        )

    # -- dword plane: 59-bit trace vs 2x model bytes at 1x model launches --
    dword_params = paper_scale_params()
    dword_session = CKKSSession.create(dword_params, seed=3, register_default=False)
    if dword_session.numeric_backend != "dword":
        print(
            f"FAIL: paper-scale context resolved to the "
            f"{dword_session.numeric_backend!r} backend, expected 'dword'"
        )
        return 1
    dct_a = dword_session.encrypt(rng.uniform(-1, 1, 16))
    dct_b = dword_session.encrypt(rng.uniform(-1, 1, 16))
    with dword_session.trace() as dword_trace:
        dct_a * dct_b  # HMult + rescale on hi/lo uint64 digit planes
    dword_limbs = dct_a.limb_count
    dword_costs = CKKSOperationCosts(dword_params, limb_batch=None, fusion=True)
    dword_cost = dword_costs.hmult(dword_limbs, include_rescale=True)
    # The dword backend doubles element width (8 -> 16 bytes), nothing
    # else: same kernels, same launch count.  Widen the model's bytes by
    # hand -- Kernel.scaled(2) would double the launches too.
    widened = [
        replace(k, bytes_read=k.bytes_read * 2, bytes_written=k.bytes_written * 2)
        for k in dword_cost.kernels
    ]
    dword_bytes_report = reconcile_trace(
        dword_trace, widened,
        name=f"59-bit dword HMult+rescale @ N=2^11, {dword_limbs} limbs "
             f"vs 2x model bytes",
    )
    print(dword_bytes_report.describe())
    dword_launch_report = reconcile_trace(
        dword_trace, dword_cost,
        name=f"59-bit dword HMult+rescale vs 1x model launches",
    )
    if dword_bytes_report.bytes_delta > args.tolerance:
        print(
            f"FAIL: dword trace bytes diverge from 2x the single-word "
            f"model by {dword_bytes_report.bytes_delta:.2%} "
            f"(> {args.tolerance:.0%}); the hi/lo digit planes must cost "
            f"exactly one extra word per element"
        )
        failed = True
    if dword_launch_report.kernel_count_delta > args.tolerance:
        print(
            f"FAIL: dword trace launches "
            f"{dword_launch_report.kernel_count_trace:.0f} kernels vs "
            f"{dword_launch_report.kernel_count_model:.0f} for the "
            f"single-word model (delta "
            f"{dword_launch_report.kernel_count_delta:.2%} > "
            f"{args.tolerance:.0%}); widening the element must not change "
            f"the kernel structure"
        )
        failed = True
    if (dword_bytes_report.bytes_delta <= args.tolerance
            and dword_launch_report.kernel_count_delta <= args.tolerance):
        print(
            f"dword launches {dword_launch_report.kernel_count_trace:.0f} == "
            f"single-word launches "
            f"{dword_launch_report.kernel_count_model:.0f} at 2x bytes "
            f"(delta {dword_bytes_report.bytes_delta:.2%})"
        )

    # -- fusion plane: the fused trace must conserve work, never add bytes --
    with session.trace(executable=True, stage_launches=True) as stage_trace:
        ct_a * ct_b  # per-stage launches, every boundary canonical
    fused_trace = fuse_trace(stage_trace).fused_trace
    ops_delta = abs(fused_trace.int_ops - stage_trace.int_ops) / max(
        stage_trace.int_ops, 1.0
    )
    if ops_delta > 1e-9:
        print(
            f"FAIL: fused trace int_ops {fused_trace.int_ops:.0f} diverge "
            f"from the unfused stage trace {stage_trace.int_ops:.0f} "
            f"(delta {ops_delta:.2e}); fusion must conserve arithmetic work"
        )
        failed = True
    if fused_trace.bytes_moved > stage_trace.bytes_moved:
        print(
            f"FAIL: fused trace moves {fused_trace.bytes_moved:.0f} bytes, "
            f"more than the unfused stage trace's "
            f"{stage_trace.bytes_moved:.0f}; fusion must only remove "
            f"round trips, never add them"
        )
        failed = True
    if ops_delta <= 1e-9 and fused_trace.bytes_moved <= stage_trace.bytes_moved:
        saved = stage_trace.bytes_moved - fused_trace.bytes_moved
        print(
            f"fusion conserves {stage_trace.int_ops:.0f} int_ops across "
            f"{len(stage_trace.events)} -> {len(fused_trace.events)} "
            f"launches, saving {saved / 2**20:.1f} MiB of traffic"
        )

    if not failed:
        print("OK: execution plane and cost model reconcile")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
