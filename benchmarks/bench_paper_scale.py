"""Paper-scale gate: the 59-bit dword fast path vs the exact object oracle.

Paper-class parameter sets use ~59-bit scaling primes, which overflow the
single-word uint64 fast path; before the double-word backend they fell
back to Python-object arithmetic.  This benchmark times HMult+rescale and
the stacked NTT at a reduced 59-bit parameter set on both backends --
first asserting the dword ciphertext is **bit-identical** to the object
oracle's -- and emits ``BENCH_paper_scale.json``.  CI gates the
HMult+rescale speedup with ``--min-dword-speedup`` so the wide-modulus
fast path can never silently regress back toward object-backend speeds:

    PYTHONPATH=src python benchmarks/bench_paper_scale.py \
        --output BENCH_paper_scale.json --min-dword-speedup 5
"""

from __future__ import annotations

import argparse
import platform
import warnings
from contextlib import contextmanager

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.core import modmath
from repro.core.ntt import get_stacked_engine

from run_quick import _time, git_sha, paper_scale_params

#: Version of the BENCH_paper_scale.json schema.
#: v1: dword-vs-object rows (HMult+rescale, stacked NTT) at a reduced
#: 59-bit parameter set, plus the gated HMult+rescale speedup row.
PAPER_SCALE_SCHEMA_VERSION = 1


@contextmanager
def object_oracle():
    """Force the exact object backend onto moduli the dword path owns.

    Lowers ``DWORD_MODULUS_LIMIT`` to the single-word boundary and clears
    the two caches that embed the backend decision, so freshly built
    contexts classify 59-bit moduli as object -- the pre-dword behaviour
    this benchmark measures the speedup against.
    """
    old_limit = modmath.DWORD_MODULUS_LIMIT
    modmath.DWORD_MODULUS_LIMIT = modmath.FAST_MODULUS_LIMIT
    modmath._moduli_column_cached.cache_clear()
    get_stacked_engine.cache_clear()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        modmath.DWORD_MODULUS_LIMIT = old_limit
        modmath._moduli_column_cached.cache_clear()
        get_stacked_engine.cache_clear()


def _workload(params):
    """A deterministic session + ciphertext pair under the active backend."""
    session = CKKSSession.create(params, seed=3, register_default=False)
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    return session, ct_a, ct_b


def _residue_rows(ciphertext) -> list:
    """Backend-independent integer residues of both components."""
    rows = []
    for component in (ciphertext.handle.c0, ciphertext.handle.c1):
        data = component.stack.data
        if modmath.is_dword_stack(data):
            data = modmath.dword_merge(data)
        rows.append([[int(x) for x in row] for row in data])
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_paper_scale.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=11)
    parser.add_argument("--depth", type=int, default=3)
    parser.add_argument(
        "--min-dword-speedup", type=float, default=None,
        help="fail unless the dword HMult+rescale speedup over the object "
             "oracle reaches this factor (CI regression gate)",
    )
    args = parser.parse_args()

    params = paper_scale_params(args.ring_log2, args.depth)

    # -- dword backend (the path under test) ------------------------------
    session, ct_a, ct_b = _workload(params)
    assert session.numeric_backend == "dword", session.numeric_backend
    dword_product = _residue_rows(ct_a * ct_b)
    engine = get_stacked_engine(params.ring_degree, tuple(session.context.moduli))
    stack = ct_a.handle.c0.stack.data
    dword_times = {
        "HMult+rescale": _time(lambda: ct_a * ct_b),
        "stacked NTT (all limbs)": _time(lambda: engine.forward(stack)),
    }

    # -- object oracle (the pre-dword fallback) ---------------------------
    with object_oracle():
        osession, oct_a, oct_b = _workload(params)
        assert osession.numeric_backend == "object", osession.numeric_backend
        object_product = _residue_rows(oct_a * oct_b)
        oengine = get_stacked_engine(
            params.ring_degree, tuple(osession.context.moduli)
        )
        ostack = oct_a.handle.c0.stack.data
        object_times = {
            "HMult+rescale": _time(lambda: oct_a * oct_b),
            "stacked NTT (all limbs)": _time(lambda: oengine.forward(ostack)),
        }

    if dword_product != object_product:
        raise SystemExit(
            "FAIL: dword HMult+rescale residues differ from the exact "
            "object oracle -- the fast path is numerically wrong, timing "
            "it is meaningless"
        )

    table = BenchmarkTable(
        f"Paper-scale 59-bit backend comparison [{params.describe()}]",
        note="dword (hi/lo uint64) backend vs exact object oracle, "
             "bit-identity asserted before timing",
    )
    speedups: dict[str, float] = {}
    for name in dword_times:
        speedup = object_times[name] / dword_times[name]
        speedups[name] = speedup
        table.add_row(operation=f"{name} [object oracle]",
                      seconds=round(object_times[name], 6))
        table.add_row(operation=f"{name} [dword fast path]",
                      seconds=round(dword_times[name], 6),
                      speedup_vs_object=round(speedup, 4))

    document = table.to_json(
        schema_version=PAPER_SCALE_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={
            "label": params.label,
            "logN_L_scale_dnum": params.describe(),
        },
        bit_identical=True,
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    if args.min_dword_speedup is not None:
        achieved = speedups["HMult+rescale"]
        if achieved < args.min_dword_speedup:
            raise SystemExit(
                f"FAIL: dword HMult+rescale speedup over the object oracle "
                f"is {achieved:.2f}x, below the "
                f"{args.min_dword_speedup:.2f}x gate"
            )
        print(
            f"OK: dword HMult+rescale speedup is {achieved:.2f}x "
            f"(gate {args.min_dword_speedup:.2f}x)"
        )


if __name__ == "__main__":
    main()
