"""Fusion benchmark: fused vs unfused execution, measured python wall clock.

The unfused baseline is the trace recorded at **per-stage launch
granularity** (``stage_launches=True``): every fast-path NTT/iNTT runs as
its ``log2 N`` butterfly-stage launches (plus the iNTT's ``N^-1`` scaling
launch), each a full global-memory round trip handing canonical residues
to the next launch -- exactly how a GPU executes transforms before stage
fusion (the paper's baseline).  ``repro.core.fusion.fuse_trace`` then
merges each recorded stage run back into the engine's stage-fused
mega-kernel and fuses the surrounding elementwise chains, and the two
programs race on real python wall clock:

* **unfused**: ``TraceProgram.run`` of the stage-granular trace;
* **fused**: ``FusedProgram.run`` of the fusion pass's output.

Both are first asserted bit-identical to the recorded eager execution
(``verify``), so the speedup is never bought with wrong answers.  Modeled
rows price the same pair of traces on :class:`TraceCostModel`, where the
per-stage launch overhead and round-trip bytes show at GPU scale.

``--min-fusion-speedup`` fails the run unless the measured wall-clock
speedup of fused over unfused HMult+rescale reaches that factor (CI gate).

    PYTHONPATH=src python benchmarks/bench_fusion.py --output BENCH_fusion.json
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.core.dispatch import TraceProgram
from repro.core.fusion import fuse_trace
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel

from run_quick import BENCH_SCHEMA_VERSION, git_sha, quick_params

#: Interleaved A/B timing rounds (min-of-N on both sides).
TIMING_ROUNDS = 7


def _race(unfused, fused, *, rounds: int = TIMING_ROUNDS) -> tuple[float, float]:
    """Best per-call wall time of both runners, interleaved (PR-2 protocol)."""
    # Two warm-up passes each: engines, twiddle tables, the scratch pool
    # and the allocator all settle before the first timed round.
    unfused(); fused(); unfused(); fused()
    best_u = best_f = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        unfused()
        best_u = min(best_u, time.perf_counter() - start)
        start = time.perf_counter()
        fused()
        best_f = min(best_f, time.perf_counter() - start)
    return best_u, best_f


def bench_workload(table: BenchmarkTable, session, name: str, workload,
                   *, pricer: TraceCostModel) -> float:
    """One fused-vs-unfused comparison; returns the measured speedup.

    Records the workload at stage granularity, asserts both the unfused
    replay and the fused program bit-identical to eager execution, then
    races them on wall clock and prices both traces on the cost model.
    """
    # Eager wall clock (transparency row): the live data plane, untraced.
    workload()  # warm
    eager_wall = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        workload()
        eager_wall = min(eager_wall, time.perf_counter() - start)

    with session.trace(executable=True, stage_launches=True) as trace:
        workload()
    program = TraceProgram(trace)
    program.verify()  # unfused replay bit-identical to eager execution
    result = fuse_trace(trace)
    fused_program = result.program()
    fused_program.verify()  # fused execution bit-identical as well
    summary = result.summary()

    best_u, best_f = _race(program.run, fused_program.run)
    speedup = best_u / best_f
    table.add_row(
        operation=f"unfused {name} [python wall clock, per-stage launches]",
        seconds=round(best_u, 6),
        kernels=summary["events_before"],
    )
    table.add_row(
        operation=f"fused {name} [python wall clock]",
        seconds=round(best_f, 6),
        kernels=summary["events_after"],
        speedup_vs_unfused=round(speedup, 4),
    )
    table.add_row(
        operation=f"eager {name} [python wall clock, untraced]",
        seconds=round(eager_wall, 6),
    )

    unfused_report = pricer.price(trace, streams=1)
    fused_report = pricer.price(result.fused_trace, streams=1)
    table.add_row(
        operation=f"unfused {name} makespan [modeled {unfused_report.platform}]",
        seconds=round(unfused_report.makespan, 9),
        kernels=unfused_report.kernel_count,
    )
    table.add_row(
        operation=f"fused {name} makespan [modeled {fused_report.platform}]",
        seconds=round(fused_report.makespan, 9),
        kernels=fused_report.kernel_count,
        speedup_vs_unfused=round(
            unfused_report.makespan / fused_report.makespan, 4
        ),
    )
    table.add_row(
        operation=f"fusion pass {name}",
        chains=summary["chains"],
        stage_groups_fused=summary["stage_groups_fused"],
        longest_chain=summary["longest_chain"],
        saved_mb=round(summary["saved_bytes"] / 2**20, 3),
    )
    return speedup


def run(ring_log2: int = 13, depth: int = 6, *, batch_size: int = 8,
        ) -> tuple[BenchmarkTable, dict[str, float]]:
    """Build the fusion table; returns it plus measured speedups per workload."""
    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(
        params, rotations=[1], seed=3, register_default=False
    )
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    batch_a = session.batch(
        [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    )
    batch_b = session.batch(
        [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    )
    table = BenchmarkTable(
        f"Trace fusion: fused vs per-stage-launch execution "
        f"[{params.describe()}]",
        note="unfused = TraceProgram replay of the stage-granular trace "
             "(one launch per NTT butterfly stage, canonical residues at "
             "every launch boundary); fused = FusedProgram after "
             "fuse_trace merges stage runs into the stage-fused engine "
             "kernels and collapses elementwise chains; both verified "
             "bit-identical to eager execution before timing",
    )
    pricer = TraceCostModel(GPU_RTX_4090)
    speedups = {
        "HMult+rescale": bench_workload(
            table, session, f"HMult+rescale [N=2^{ring_log2}]",
            lambda: ct_a * ct_b, pricer=pricer,
        ),
        "keyswitch": bench_workload(
            table, session, f"HRotate keyswitch [N=2^{ring_log2}]",
            lambda: ct_a << 1, pricer=pricer,
        ),
        "batch-drain": bench_workload(
            table, session,
            f"batched HMult+rescale [B={batch_size}, N=2^{ring_log2}]",
            lambda: batch_a * batch_b, pricer=pricer,
        ),
    }
    return table, speedups


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_fusion.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=13)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument(
        "--min-fusion-speedup", type=float, default=None,
        help="fail unless the measured python wall-clock speedup of fused "
             "over unfused HMult+rescale reaches this factor (CI gate)",
    )
    args = parser.parse_args()

    table, speedups = run(
        args.ring_log2, args.depth, batch_size=args.batch_size
    )
    params = quick_params(args.ring_log2, args.depth)
    document = table.to_json(
        schema_version=BENCH_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={"label": params.label,
                       "logN_L_scale_dnum": params.describe()},
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    if args.min_fusion_speedup is not None:
        achieved = speedups["HMult+rescale"]
        if achieved < args.min_fusion_speedup:
            raise SystemExit(
                f"FAIL: measured fused HMult+rescale speedup is "
                f"{achieved:.2f}x over the unfused path, below the "
                f"{args.min_fusion_speedup:.2f}x gate"
            )
        print(
            f"OK: measured fused HMult+rescale speedup is {achieved:.2f}x "
            f"over the unfused path (gate {args.min_fusion_speedup:.2f}x)"
        )


if __name__ == "__main__":
    main()
