"""Quick benchmark runner: real timings of the hot-path kernels.

Runs in seconds (toy-scale parameters) and emits a machine-readable
``BENCH_quick.json`` artifact via :meth:`BenchmarkTable.to_json`.  CI runs
this as a smoke test so every change leaves a benchmark trail; locally it
is the fastest way to see whether a data-plane change moved the needle:

    PYTHONPATH=src python benchmarks/run_quick.py --output BENCH_quick.json
"""

from __future__ import annotations

import argparse
import platform
import subprocess
import time

import numpy as np

from repro.api import CKKSSession
from repro.bench.reporting import BenchmarkTable
from repro.ckks.params import CKKSParameters
from repro.core.dispatch import TraceProgram, get_dispatcher
from repro.core.fusion import fuse_trace
from repro.core.ntt import get_stacked_engine
from repro.gpu.memory import measure_allocation_strategies
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel

#: Version of the BENCH_quick.json schema.  Bump when rows/metadata change
#: shape so the CI artifact trajectory stays self-describing.
#: v3: cross-ciphertext batched-throughput rows (B in {1, 8}) -- modeled GPU
#: throughput from recorded traces (headline, CI-gated) plus the Python
#: data-plane wall clock of the same workload for transparency.
#: v4: device-count rows -- the B=8 batched trace member-sharded across
#: D in {1, 2, 4} modeled devices (the cluster plane), makespan per D.
#: v5: 59-bit double-word rows -- real timings of the paper-class 59-bit
#: parameter set on the dword (hi/lo uint64) backend, so the vectorized
#: wide-modulus path leaves a trail next to the 28-bit fast-path rows.
#: v6: fused-execution rows -- measured python wall clock of the fused
#: HMult+rescale program vs its per-stage-launch (unfused) trace replay,
#: both verified bit-identical to eager execution before timing.
#: v7: availability-under-faults row -- a seeded chaos replay (burst
#: arrivals through the serving plane under a FaultPlan of OOM windows and
#: transient drain failures) reporting availability, shed rate, retries
#: and degraded drains; the full-size gated run is bench_faults.py.
#: v8: instrumentation-overhead row -- HMult+rescale wall clock with the
#: observability seam present-but-disabled vs absent (the pre-obs
#: Dispatcher.scope patched back in), CI-gated at <= 5% overhead.
BENCH_SCHEMA_VERSION = 8

#: Device counts of the member-shard rows (the cluster plane).
DEVICE_COUNTS = (1, 2, 4)

#: Ring size of the batched-throughput headline (the acceptance pins 2^13).
BATCH_RING_LOG2 = 13

#: Batch sizes measured by the throughput rows.
BATCH_SIZES = (1, 8)


def git_sha() -> str:
    """The commit this artifact was produced from (``unknown`` off-repo)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _time(fn, *, min_seconds: float = 0.2, repeats: int = 3) -> float:
    """Return the best per-call time of ``fn`` over a few timed batches."""
    fn()  # warm caches and twiddle tables
    best = float("inf")
    for _ in range(repeats):
        count = 0
        start = time.perf_counter()
        while time.perf_counter() - start < min_seconds / repeats:
            fn()
            count += 1
        best = min(best, (time.perf_counter() - start) / count)
    return best


def quick_params(ring_log2: int = 12, depth: int = 6) -> CKKSParameters:
    """The reduced parameter set the quick benchmarks run at."""
    return CKKSParameters(
        ring_degree=1 << ring_log2,
        mult_depth=depth,
        scale_bits=28,
        dnum=3,
        first_mod_bits=30,
        label=f"quick-{ring_log2}-{depth}",
    )


def paper_scale_params(ring_log2: int = 11, depth: int = 3) -> CKKSParameters:
    """A reduced paper-class 59-bit parameter set (dword backend).

    ``scale_bits=59`` / ``first_mod_bits=60`` put every modulus in the
    double-word range (2^31, 2^62), matching the paper's production
    parameter sets; the ring degree and depth are shrunk so the exact
    object-backend oracle stays timeable in CI.
    """
    return CKKSParameters(
        ring_degree=1 << ring_log2,
        mult_depth=depth,
        scale_bits=59,
        dnum=2,
        first_mod_bits=60,
        secret_hamming_weight=16,
        label=f"paper59-{ring_log2}-{depth}",
    )


def run_dword_rows(table: BenchmarkTable, *, ring_log2: int = 11,
                   depth: int = 3) -> None:
    """Time the hot path at the paper-class 59-bit set (dword backend).

    These rows are real wall-clock timings of the same kernels as the
    28-bit rows, but with every residue stored as (hi, lo) uint64 digit
    planes and reduced with improved Barrett / 64-bit Shoup.  The
    dword-vs-object speedup itself is gated in
    ``benchmarks/bench_paper_scale.py``; these rows track the absolute
    cost of the wide-modulus path release over release.
    """
    params = paper_scale_params(ring_log2, depth)
    session = CKKSSession.create(params, rotations=[1], seed=3, register_default=False)
    assert session.numeric_backend == "dword", session.numeric_backend
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    engine = get_stacked_engine(
        params.ring_degree, tuple(session.context.moduli)
    )
    stack = ct_a.handle.c0.stack.data
    suffix = f"[59-bit dword, {params.describe()}]"
    cases = {
        f"HAdd {suffix}": lambda: ct_a + ct_b,
        f"HMult+rescale {suffix}": lambda: ct_a * ct_b,
        f"HRotate {suffix}": lambda: ct_a << 1,
        f"stacked NTT (all limbs) {suffix}": lambda: engine.forward(stack),
        f"stacked iNTT (all limbs) {suffix}": lambda: engine.inverse(stack),
    }
    for name, fn in cases.items():
        table.add_row(operation=name, seconds=round(_time(fn), 6))


def run(ring_log2: int = 12, depth: int = 6) -> BenchmarkTable:
    """Measure the homomorphic hot path at a reduced parameter set."""
    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(params, rotations=[1], seed=3, register_default=False)
    rng = np.random.default_rng(0)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))
    engine = get_stacked_engine(
        params.ring_degree, tuple(session.context.moduli)
    )
    stack = ct_a.handle.c0.stack.data

    table = BenchmarkTable(
        f"Quick hot-path benchmarks [{params.describe()}]",
        note="functional Python backend, limb-stack data plane",
    )
    cases = {
        "HAdd": lambda: ct_a + ct_b,
        "HMult+rescale": lambda: ct_a * ct_b,
        "HRotate": lambda: ct_a << 1,
        "stacked NTT (all limbs)": lambda: engine.forward(stack),
        "stacked iNTT (all limbs)": lambda: engine.inverse(stack),
    }
    for name, fn in cases.items():
        table.add_row(operation=name, seconds=round(_time(fn), 6))

    layouts = measure_allocation_strategies(params)
    for strategy in ("array-per-limb", "flattened"):
        report = layouts[strategy]
        table.add_row(
            operation=f"poly footprint [{strategy}]",
            bytes=report["bytes_in_use"],
            allocations=report["allocations"],
            fragmentation=round(report["internal_fragmentation"], 6),
        )

    # Scheduler makespan of a trace recorded from the real execution plane
    # (§III-F.1: multi-stream launch hiding vs the single-stream baseline).
    with get_dispatcher().record() as trace:
        ct_a * ct_b
    pricer = TraceCostModel(GPU_RTX_4090)
    for streams in (1, pricer.streams):
        report = pricer.price(trace, streams=streams)
        table.add_row(
            operation=f"trace HMult+rescale makespan [{report.platform}, "
                      f"{streams} stream{'s' if streams > 1 else ''}]",
            seconds=round(report.makespan, 9),
            kernels=report.kernel_count,
        )

    # Fused execution (v6): the stage-granular trace replayed launch by
    # launch vs the fusion pass's output, both bit-identical to eager
    # execution.  bench_fusion.py carries the full comparison and the CI
    # gate; these two rows keep the headline next to the hot-path numbers.
    with get_dispatcher().record(executable=True, stage_launches=True) as trace:
        ct_a * ct_b
    program = TraceProgram(trace)
    program.verify()
    result = fuse_trace(trace)
    fused = result.program()
    fused.verify()
    for label, runner, count in (
        ("unfused", program.run, len(trace.events)),
        ("fused", fused.run, len(result.fused_trace.events)),
    ):
        table.add_row(
            operation=f"{label} HMult+rescale [python wall clock, "
                      f"stage-granular trace]",
            seconds=round(_time(runner), 6),
            kernels=count,
        )
    return table


def run_batch_throughput(table: BenchmarkTable, *, ring_log2: int = BATCH_RING_LOG2,
                         depth: int = 6, batch_sizes=BATCH_SIZES) -> dict[int, float]:
    """Measure cross-ciphertext batched HMult+rescale vs a sequential loop.

    Appends two row families per batch size ``B``:

    * **modeled GPU throughput** (headline, CI-gated): the sequential-loop
      trace launches ``B×`` the kernels of the batched trace over the same
      bytes, so the :class:`TraceCostModel` makespan exposes the §III-F.1
      launch-overhead amortisation the throughput plane exists for;
    * **python data-plane wall clock**: the functional backend's real time
      for the same work, measured with the interleaved A/B protocol (the
      PR-2 precedent).  The Python plane is the bit-exact correctness
      oracle, not a GPU -- its fused kernels match the sequential loop's
      arithmetic element for element, so wall clock lands near parity
      while the modeled launch overhead drops from ``O(B)`` to ``O(1)``.

    Returns the modeled batched-vs-sequential speedup per batch size.
    """
    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(params, seed=3, register_default=False)
    rng = np.random.default_rng(0)
    pricer = TraceCostModel(GPU_RTX_4090)
    speedups: dict[int, float] = {}
    for batch_size in batch_sizes:
        vectors_a = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
        vectors_b = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
        batch_a = session.batch(vectors_a)
        batch_b = session.batch(vectors_b)

        def sequential():
            for a, b in zip(vectors_a, vectors_b):
                a * b

        def batched():
            batch_a * batch_b

        # Modeled GPU throughput from the recorded execution plane.
        with session.trace() as trace_seq:
            sequential()
        with session.trace() as trace_bat:
            batched()
        seq_report = pricer.price(trace_seq, streams=1)
        bat_report = pricer.price(trace_bat, streams=1)
        speedup = seq_report.makespan / bat_report.makespan
        speedups[batch_size] = speedup
        table.add_row(
            operation=f"sequential HMult+rescale loop [modeled {seq_report.platform}, "
                      f"B={batch_size}, N=2^{ring_log2}]",
            seconds=round(seq_report.makespan, 9),
            ops_per_sec=round(batch_size / seq_report.makespan, 3),
            kernels=seq_report.kernel_count,
        )
        table.add_row(
            operation=f"batched HMult+rescale [modeled {bat_report.platform}, "
                      f"B={batch_size}, N=2^{ring_log2}]",
            seconds=round(bat_report.makespan, 9),
            ops_per_sec=round(batch_size / bat_report.makespan, 3),
            kernels=bat_report.kernel_count,
            speedup_vs_sequential=round(speedup, 4),
        )

        # Python data-plane wall clock, interleaved A/B protocol.
        sequential(); batched()  # warm engines and tiled keys
        best_seq = best_bat = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            sequential()
            best_seq = min(best_seq, time.perf_counter() - start)
            start = time.perf_counter()
            batched()
            best_bat = min(best_bat, time.perf_counter() - start)
        table.add_row(
            operation=f"sequential HMult+rescale loop [python data plane, "
                      f"B={batch_size}, N=2^{ring_log2}]",
            seconds=round(best_seq, 6),
            ops_per_sec=round(batch_size / best_seq, 3),
        )
        table.add_row(
            operation=f"batched HMult+rescale [python data plane, "
                      f"B={batch_size}, N=2^{ring_log2}]",
            seconds=round(best_bat, 6),
            ops_per_sec=round(batch_size / best_bat, 3),
            speedup_vs_sequential=round(best_seq / best_bat, 4),
        )
    return speedups


def run_cluster_rows(table: BenchmarkTable, *, ring_log2: int = BATCH_RING_LOG2,
                     depth: int = 6, batch_size: int = 8,
                     device_counts=DEVICE_COUNTS) -> dict[int, float]:
    """Member-shard the B=8 batched trace across D modeled devices.

    One row per device count: the fused HMult+rescale trace rewritten by
    :class:`~repro.cluster.sharding.MemberShardPlan` over a PCIe box of
    RTX 4090s and priced on the multi-device scheduler.  D=1 is the
    single-device baseline the speedups are relative to.
    """
    from repro.cluster import MemberShardPlan, pcie_box, single_device

    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(params, seed=3, register_default=False)
    rng = np.random.default_rng(0)
    vectors_a = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    vectors_b = [session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(batch_size)]
    batch_a = session.batch(vectors_a)
    batch_b = session.batch(vectors_b)
    with session.trace() as trace:
        batch_a * batch_b
    makespans: dict[int, float] = {}
    for device_count in device_counts:
        topology = (
            single_device(GPU_RTX_4090) if device_count == 1
            else pcie_box(device_count, platform=GPU_RTX_4090)
        )
        pricer = TraceCostModel(GPU_RTX_4090, topology=topology)
        plan = MemberShardPlan(topology, batch_size)
        report = pricer.price(plan.apply(trace), streams=1)
        makespans[device_count] = report.makespan
        table.add_row(
            operation=f"member-sharded batched HMult+rescale [modeled "
                      f"{report.platform}, B={batch_size}, D={device_count}, "
                      f"N=2^{ring_log2}]",
            seconds=round(report.makespan, 9),
            ops_per_sec=round(batch_size / report.makespan, 3),
            kernels=report.kernel_count,
            speedup_vs_one_device=round(
                makespans[device_counts[0]] / report.makespan, 4
            ),
        )
    return makespans


def run_fault_rows(table: BenchmarkTable, *, requests: int = 2000,
                   seed: int = 23) -> float:
    """Chaos-replay availability row (v7): burst load under a fault plan.

    Runs on the cost-model backend (symbolic handles, so thousands of
    requests replay in well under a second) with a seeded
    :class:`~repro.serve.FaultPlan` injecting OOM windows over 10% of the
    timeline plus scattered transient drain failures.  The row reports
    the availability figure (completed / admitted) together with the shed
    / retry / degradation counters; ``bench_faults.py`` runs the
    full-size replay with the CI gate and the functional bit-identity
    oracle.
    """
    import warnings

    from repro.serve import (
        AdmissionPolicy,
        BatchingPolicy,
        FaultPlan,
        OpProgram,
        ReplayDriver,
        RetryPolicy,
        Server,
        burst_arrivals,
    )

    params = quick_params()
    session = CKKSSession.create(params, seed=3, register_default=False)
    backend = session.cost_backend()
    arrivals = burst_arrivals(requests, bursts=requests // 100 or 1,
                              burst_gap=5e-3, seed=seed)
    plan = FaultPlan.generate(seed, duration=float(arrivals[-1]) + 5e-3,
                              oom_fraction=0.1, transients=3)
    server = Server(
        backend, BatchingPolicy(max_batch_size=8, max_wait=1e-3),
        admission=AdmissionPolicy(max_queue_depth=64),
        retry=RetryPolicy(max_retries=3, backoff=1e-5),
        fault_plan=plan,
    )
    program = OpProgram.polynomial([1.0, 0.0, 2.0])
    driver = ReplayDriver(server, program,
                          lambda i: backend.encrypt(np.full(16, 0.5)),
                          deadline_offset=1e-2)
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = driver.run(arrivals)
    wall = time.perf_counter() - start
    table.add_row(
        operation=f"availability under faults [cost-model chaos replay, "
                  f"{requests} requests, 10% OOM timeline]",
        seconds=round(wall, 6),
        availability=round(report.availability, 6),
        shed=report.shed,
        retries=report.retries,
        degraded_drains=report.degraded_drains,
        deadline_violations=report.deadline_violations,
    )
    return report.availability


def run_obs_overhead_row(table: BenchmarkTable, *, ring_log2: int = 12,
                         depth: int = 6) -> float:
    """Instrumentation-overhead row (v8): the cost of the disabled seam.

    The observability plane promises to be free when off: with no trace
    and no profiler installed, :meth:`Dispatcher.scope` hands out a shared
    null context after one extra attribute check (``_profiler``).  This
    row times the HMult+rescale hot path twice -- once as shipped
    ("obs disabled") and once with the pre-observability ``scope`` (which
    checks only ``_trace``) patched back in ("obs absent") -- and reports
    the ratio, which CI gates at <= 1.05.
    """
    from repro.core import dispatch as _dispatch

    params = quick_params(ring_log2, depth)
    session = CKKSSession.create(params, seed=3, register_default=False)
    rng = np.random.default_rng(11)
    ct_a = session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = session.encrypt(rng.uniform(-1, 1, 16))

    # The pre-obs scope fast path: no profiler seam, trace check only.
    # Reaches into dispatch privates on purpose -- the measurement has to
    # splice the old implementation into the live singleton's class.
    def scope_absent(self, name):
        if self._trace is None:
            return _dispatch._NULL_CONTEXT
        return _dispatch._ScopeGuard(self, name)

    shipped_scope = _dispatch.Dispatcher.scope

    # The seam's true cost is one extra attribute check per scope entry
    # -- far below the run-to-run noise of a single timed block -- so the
    # two configurations are timed *interleaved*, best-of per config, and
    # machine-load phases hit both equally.
    def timed_call() -> float:
        start = time.perf_counter()
        ct_a * ct_b
        return time.perf_counter() - start

    timed_call()  # warm caches and twiddle tables
    best = {"disabled": float("inf"), "absent": float("inf")}
    for _ in range(12):
        best["disabled"] = min(best["disabled"], timed_call())
        _dispatch.Dispatcher.scope = scope_absent
        try:
            best["absent"] = min(best["absent"], timed_call())
        finally:
            _dispatch.Dispatcher.scope = shipped_scope

    disabled, absent = best["disabled"], best["absent"]
    overhead = disabled / absent
    table.add_row(
        operation="observability seam overhead [HMult+rescale, obs "
                  "disabled vs absent]",
        seconds=round(disabled, 6),
        baseline_seconds=round(absent, 6),
        overhead_ratio=round(overhead, 4),
    )
    return overhead


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_quick.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--ring-log2", type=int, default=12)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument(
        "--min-batch-speedup", type=float, default=None,
        help="fail unless the modeled batched speedup at the largest batch "
             "size reaches this factor (CI regression gate)",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=None,
        help="fail if the disabled observability seam costs more than this "
             "ratio of the seam-free HMult+rescale wall clock (CI gate)",
    )
    args = parser.parse_args()

    table = run(args.ring_log2, args.depth)
    run_dword_rows(table)
    speedups = run_batch_throughput(table, depth=args.depth)
    run_cluster_rows(table, depth=args.depth)
    run_fault_rows(table)
    obs_overhead = run_obs_overhead_row(table, ring_log2=args.ring_log2,
                                        depth=args.depth)
    params = quick_params(args.ring_log2, args.depth)
    document = table.to_json(
        schema_version=BENCH_SCHEMA_VERSION,
        git_sha=git_sha(),
        parameter_set={
            "label": params.label,
            "logN_L_scale_dnum": params.describe(),
        },
        python=platform.python_version(),
        machine=platform.machine(),
        numpy=np.__version__,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
    print(table.to_text())
    print(f"\nwrote {args.output}")

    if args.min_batch_speedup is not None:
        largest = max(speedups)
        achieved = speedups[largest]
        if achieved < args.min_batch_speedup:
            raise SystemExit(
                f"FAIL: modeled batched speedup at B={largest} is "
                f"{achieved:.2f}x, below the {args.min_batch_speedup:.2f}x gate"
            )
        print(
            f"OK: modeled batched speedup at B={largest} is {achieved:.2f}x "
            f"(gate {args.min_batch_speedup:.2f}x)"
        )

    if args.max_obs_overhead is not None:
        if obs_overhead > args.max_obs_overhead:
            raise SystemExit(
                f"FAIL: disabled observability seam costs "
                f"{obs_overhead:.3f}x the seam-free hot path, above the "
                f"{args.max_obs_overhead:.3f}x gate"
            )
        print(
            f"OK: disabled observability seam overhead is "
            f"{obs_overhead:.3f}x (gate {args.max_obs_overhead:.3f}x)"
        )


if __name__ == "__main__":
    main()
