"""Table VII: logistic-regression iteration and iteration+bootstrap times."""

import numpy as np
import pytest

from repro.api import CostModelBackend
from repro.apps.logistic_regression import EncryptedLogisticRegression
from repro.bench.reporting import BenchmarkTable, format_seconds, speedup
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.openfhe_model import OpenFHEModel
from repro.perf.workloads import LogisticRegressionWorkload


@pytest.fixture(scope="module")
def lr_models(lr_params):
    return {
        "workload": LogisticRegressionWorkload(lr_params),
        "fideslib": FIDESlibModel(GPU_RTX_4090, lr_params, limb_batch=4),
        "baseline": OpenFHEModel(lr_params, variant="baseline"),
        "hexl": OpenFHEModel(lr_params, variant="hexl"),
    }


@pytest.mark.parametrize("with_bootstrap", [False, True], ids=["iteration", "iteration+bootstrap"])
def test_table7_lr(benchmark, lr_models, with_bootstrap):
    """Model one Table VII row and benchmark the FIDESlib evaluation path."""
    workload = lr_models["workload"]
    fides = lr_models["fideslib"]
    build = (
        workload.build_iteration_with_bootstrap if with_bootstrap else workload.build_iteration
    )
    cost = build(fides.costs)
    gpu_time = benchmark(fides.execute, cost).total_time
    base_time = lr_models["baseline"].time_cost(build(lr_models["baseline"].costs))
    hexl_time = lr_models["hexl"].time_cost(build(lr_models["hexl"].costs))
    benchmark.extra_info.update(
        {
            "configuration": "Iteration + Bootstrap" if with_bootstrap else "Iteration",
            "openfhe": format_seconds(base_time),
            "hexl_24_threads": format_seconds(hexl_time),
            "fideslib_rtx4090": format_seconds(gpu_time),
            "speedup_vs_openfhe": round(speedup(base_time, gpu_time), 1),
        }
    )
    assert gpu_time < hexl_time < base_time


def test_table7_program_on_cost_backend(benchmark, lr_params, lr_models):
    """Cost the *actual* LR training program through the backend seam.

    The same :class:`EncryptedLogisticRegression` step that the functional
    tests verify at toy parameters is replayed symbolically on a
    :class:`CostModelBackend` at the paper's LR parameter set, and the
    accumulated ledger is executed on the FIDESlib GPU model -- the
    written-once / costed-on-GPU loop of the reproduction.
    """
    batch_size, features = 8, 4
    rng = np.random.default_rng(0)

    def run_program():
        backend = CostModelBackend.for_model(lr_models["fideslib"])
        model = EncryptedLogisticRegression(backend=backend, feature_count=features)
        columns, labels = model.encrypt_batch(
            rng.uniform(-1, 1, (batch_size, features)),
            rng.integers(0, 2, batch_size).astype(float),
        )
        model.train_batch(columns, labels, batch_size)
        return backend.ledger

    ledger = benchmark(run_program)
    fides = lr_models["fideslib"]
    gpu_time = fides.execute(ledger.as_cost("lr-iteration")).total_time
    counts = ledger.operation_counts()
    benchmark.extra_info.update(
        {
            "operations": sum(counts.values()),
            "hmult_count": counts.get("HMult", 0),
            "fideslib_rtx4090": format_seconds(gpu_time),
        }
    )
    assert counts.get("HMult", 0) >= features + 1  # X·w products + sigmoid cube
    assert counts.get("HRotate", 0) > 0            # gradient rotation sums
    assert gpu_time > 0


def test_table7_summary(lr_models):
    """Print the full reproduced Table VII."""
    table = BenchmarkTable("Table VII: logistic-regression training performance")
    workload = lr_models["workload"]
    for label, build in (
        ("Iteration", workload.build_iteration),
        ("Iteration + Bootstrap", workload.build_iteration_with_bootstrap),
    ):
        fides = lr_models["fideslib"]
        gpu = fides.execute(build(fides.costs)).total_time
        base = lr_models["baseline"].time_cost(build(lr_models["baseline"].costs))
        hexl = lr_models["hexl"].time_cost(build(lr_models["hexl"].costs))
        table.add_row(
            Configuration=label,
            OpenFHE=format_seconds(base),
            HEXL24=format_seconds(hexl),
            FIDESlib=format_seconds(gpu),
            Speedup=f"{speedup(base, gpu):.0f}x",
        )
    print()
    print(table.to_text())
    assert len(table.rows) == 2
