"""Tests of :class:`repro.api.session.CKKSSession`.

Session construction (presets, rotation autofill, from_client), the
client/server round trip, the key inventory in ``describe()``, and the
default-context wiring of the singleton in :mod:`repro.ckks.context`.
"""

import numpy as np
import pytest

from repro.api.session import CKKSSession, resolve_parameters, resolve_rotations
from repro.ckks.context import (
    clear_default_context,
    get_default_context,
    set_default_context,
)
from repro.ckks.params import CKKSParameters, PARAMETER_SETS
from repro.openfhe.client import OpenFHEClient
from tests.conftest import assert_close

#: A deliberately tiny parameter set so per-test key generation stays fast.
TINY_PARAMS = CKKSParameters(
    ring_degree=1 << 8,
    mult_depth=4,
    scale_bits=22,
    dnum=2,
    first_mod_bits=26,
    label="tiny",
)


@pytest.fixture(scope="module")
def tiny_session():
    return CKKSSession.create(
        TINY_PARAMS, rotations="power-of-two", conjugation=True, seed=7,
        register_default=False,
    )


class TestResolvers:
    def test_resolve_parameters_passthrough(self):
        assert resolve_parameters(TINY_PARAMS) is TINY_PARAMS

    def test_resolve_parameters_preset(self):
        assert resolve_parameters("toy") is PARAMETER_SETS["toy"]

    def test_resolve_parameters_unknown_preset(self):
        with pytest.raises(ValueError, match="toy"):
            resolve_parameters("does-not-exist")

    def test_resolve_parameters_bad_type(self):
        with pytest.raises(TypeError):
            resolve_parameters(42)

    def test_resolve_rotations_explicit(self):
        assert resolve_rotations([3, 1, -2, 1, 0], 512) == [-2, 1, 3]

    def test_resolve_rotations_power_of_two(self):
        steps = resolve_rotations("power-of-two", 16)
        assert steps == [-8, -4, -2, -1, 1, 2, 4, 8]

    def test_resolve_rotations_mixed(self):
        steps = resolve_rotations([3, "pow2"], 8)
        assert steps == [-4, -2, -1, 1, 2, 3, 4]

    def test_resolve_rotations_none(self):
        assert resolve_rotations(None, 16) == []

    def test_resolve_rotations_unknown_spec(self):
        with pytest.raises(ValueError, match="rotation spec"):
            resolve_rotations("all-of-them", 16)


class TestCreate:
    def test_power_of_two_autofill_generates_keys(self, tiny_session):
        slots = TINY_PARAMS.slots
        expected = resolve_rotations("power-of-two", slots)
        assert sorted(tiny_session.keys.rotation_keys) == expected

    def test_autofilled_rotations_all_work(self, tiny_session):
        # The encoder replicates an 8-value message across all slots, so a
        # rotation by any step acts cyclically with period 8.
        values = np.arange(8) / 8.0
        ct = tiny_session.encrypt(values)
        for step in (1, 2, -4, 64):
            assert_close(
                tiny_session.decrypt(ct << step, 8).real,
                np.roll(values, -step),
                5e-3,
            )

    def test_round_trip(self, tiny_session):
        values = np.array([0.1, -0.2, 0.3])
        assert_close(tiny_session.decrypt(tiny_session.encrypt(values), 3).real, values, 5e-3)

    def test_describe_merges_key_inventory(self, tiny_session):
        summary = tiny_session.describe()
        assert summary["ring_degree"] == TINY_PARAMS.ring_degree
        assert summary["keys"]["relinearization"] is True
        assert summary["keys"]["conjugation"] is True
        assert summary["keys"]["rotation_steps"] == sorted(tiny_session.keys.rotation_keys)
        assert summary["keys"]["secret_available"] is True

    def test_server_keys_hold_no_secret(self, tiny_session):
        assert tiny_session.keys.secret_key is None

    def test_properties(self, tiny_session):
        assert tiny_session.params is TINY_PARAMS
        assert tiny_session.slots == TINY_PARAMS.slots
        assert tiny_session.max_level == TINY_PARAMS.mult_depth


class TestFromClient:
    def test_preserves_client_server_split(self):
        client = OpenFHEClient(TINY_PARAMS, seed=5)
        client.key_gen(rotations=[1], conjugation=False)
        session = CKKSSession.from_client(client, register_default=False)
        values = np.array([0.5, -0.25])
        raw = client.encrypt(values)
        uploaded = session.upload(raw)
        shifted = uploaded << 1
        raw_out = session.download(shifted)
        assert_close(client.decrypt(raw_out, 2).real, np.roll(values, -1), 5e-3)

    def test_generates_keys_when_missing(self):
        client = OpenFHEClient(TINY_PARAMS, seed=6)
        session = CKKSSession.from_client(
            client, rotations=[2], conjugation=True, register_default=False
        )
        assert client.has_keys
        assert 2 in session.keys.rotation_keys
        assert session.keys.conjugation_key is not None

    def test_extends_existing_keys(self):
        client = OpenFHEClient(TINY_PARAMS, seed=8)
        client.key_gen(rotations=[1])
        session = CKKSSession.from_client(
            client, rotations=[1, 4], conjugation=True, register_default=False
        )
        assert sorted(session.keys.rotation_keys) == [1, 4]
        assert session.keys.conjugation_key is not None

    def test_add_rotation_keys_after_creation(self):
        session = CKKSSession.create(TINY_PARAMS, rotations=[1], seed=9,
                                     register_default=False)
        values = np.arange(4) / 4.0
        ct = session.encrypt(values)
        with pytest.raises(KeyError, match="available rotation steps: 1"):
            ct << 2
        session.add_rotation_keys([2])
        assert_close(
            session.decrypt(ct << 2, 2).real,
            np.array([0.5, 0.75]),
            5e-3,
        )


class TestDefaultContextWiring:
    def test_create_registers_default_context(self):
        previous = set_default_context(None)
        try:
            session = CKKSSession.create(TINY_PARAMS, seed=1)
            assert get_default_context() is session.context
        finally:
            set_default_context(previous)

    def test_registered_session_restores_previous_default_on_close(self, context):
        previous = set_default_context(context)
        try:
            with CKKSSession.create(TINY_PARAMS, seed=2) as scoped:
                assert get_default_context() is scoped.context
            # register_default=True captured the pre-construction default;
            # leaving the with-block must restore it, not the session itself.
            assert get_default_context() is context
        finally:
            set_default_context(previous)

    def test_context_manager_restores_previous_default(self, tiny_session, context):
        previous = set_default_context(context)
        try:
            with CKKSSession(
                context=tiny_session.context,
                evaluator=tiny_session.evaluator,
                keys=tiny_session.keys,
                encryptor=tiny_session.backend.encryptor,
                register_default=False,
            ) as scoped:
                assert get_default_context() is scoped.context
            assert get_default_context() is context
        finally:
            set_default_context(previous)

    def test_clear_default_context(self):
        previous = set_default_context(None)
        try:
            clear_default_context()
            with pytest.raises(RuntimeError, match="no default CKKS context"):
                get_default_context()
        finally:
            set_default_context(previous)

    def test_close_is_idempotent(self, tiny_session, context):
        previous = set_default_context(context)
        try:
            scoped = CKKSSession(
                context=tiny_session.context,
                evaluator=tiny_session.evaluator,
                keys=tiny_session.keys,
                register_default=False,
            )
            with scoped:
                pass
            scoped.close()  # second close is a no-op
            assert get_default_context() is context
        finally:
            set_default_context(previous)


class TestErrorPaths:
    def test_decrypt_without_decryptor(self, tiny_session):
        server_only = CKKSSession(
            context=tiny_session.context,
            evaluator=tiny_session.evaluator,
            keys=tiny_session.keys,
            register_default=False,
        )
        ct = tiny_session.encrypt([0.5])
        with pytest.raises(RuntimeError, match="no decryptor"):
            server_only.decrypt(ct)

    def test_decrypt_rejects_symbolic_handles(self, tiny_session):
        cost = tiny_session.cost_backend()
        with pytest.raises(TypeError, match="cost-model"):
            tiny_session.decrypt(cost.encrypt([1.0]))

    def test_encrypt_without_encryptor(self, tiny_session):
        server_only = CKKSSession(
            context=tiny_session.context,
            evaluator=tiny_session.evaluator,
            keys=tiny_session.keys,
            register_default=False,
        )
        with pytest.raises(RuntimeError, match="no encryptor"):
            server_only.encrypt([0.5])

    def test_add_rotation_keys_requires_client(self, session):
        with pytest.raises(RuntimeError, match="without a client"):
            session.add_rotation_keys([16])
