"""Throughput plane: batched execution vs the sequential evaluator.

The contract under test is the tentpole invariant of the batching layer:
every :class:`~repro.ckks.batch.BatchEvaluator` operation is bit-identical
per member to the sequential :class:`~repro.ckks.evaluator.Evaluator`
(tracing on and off), ``fuse``/``split`` are zero-copy and pool-accounted
exactly once, mixed-level batches are rejected with a descriptive error,
and a batched trace keeps the single-op kernel structure at ``B×`` bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CKKSSession, CostModelBackend, SymbolicCipherBatch
from repro.ckks.batch import BatchEvaluator, CiphertextBatch
from repro.ckks.evaluator import Evaluator
from repro.core.dispatch import get_dispatcher
from repro.core.limb_stack import LimbStack
from repro.core.memory import MemoryPool


BATCH = 3


@pytest.fixture(scope="module")
def batch_evaluator(context, keys) -> BatchEvaluator:
    return BatchEvaluator(context, keys)


@pytest.fixture(scope="module")
def cts_a(context, encryptor):
    rng = np.random.default_rng(11)
    return [
        encryptor.encrypt_values(rng.uniform(-1, 1, 8)) for _ in range(BATCH)
    ]


@pytest.fixture(scope="module")
def cts_b(context, encryptor):
    rng = np.random.default_rng(13)
    return [
        encryptor.encrypt_values(rng.uniform(-1, 1, 8)) for _ in range(BATCH)
    ]


def assert_members_identical(batch: CiphertextBatch, sequential, *,
                             scale=True, label=""):
    """Every member of ``batch`` matches its sequential twin bit for bit."""
    members = batch.split()
    assert len(members) == len(sequential), label
    for member, reference in zip(members, sequential):
        assert np.array_equal(member.c0.stack.data, reference.c0.stack.data), label
        assert np.array_equal(member.c1.stack.data, reference.c1.stack.data), label
        assert member.c0.moduli == reference.c0.moduli, label
        if scale:
            assert member.scale == pytest.approx(reference.scale, rel=1e-9), label


def _ops(evaluator: Evaluator, batch_evaluator: BatchEvaluator, cts_a, cts_b):
    """(name, batched thunk, sequential thunk) for every batched op."""
    pt_mult = evaluator.encode_for(cts_a[0], [0.5] * 8, for_multiplication=True)
    pt_add = evaluator.encode_for(cts_a[0], [0.25] * 8, for_multiplication=False)
    ba = CiphertextBatch.from_ciphertexts(cts_a)
    bb = CiphertextBatch.from_ciphertexts(cts_b)
    raw = evaluator.multiply(cts_a[0], cts_b[0], rescale=False)
    raw_batch = batch_evaluator.multiply(ba, bb, rescale=False)
    return [
        ("add", lambda: batch_evaluator.add(ba, bb),
         lambda: [evaluator.add(a, b) for a, b in zip(cts_a, cts_b)]),
        ("sub", lambda: batch_evaluator.sub(ba, bb),
         lambda: [evaluator.sub(a, b) for a, b in zip(cts_a, cts_b)]),
        ("negate", lambda: batch_evaluator.negate(ba),
         lambda: [evaluator.negate(a) for a in cts_a]),
        ("add_plain", lambda: batch_evaluator.add_plain(ba, pt_add),
         lambda: [evaluator.add_plain(a, pt_add) for a in cts_a]),
        ("sub_plain", lambda: batch_evaluator.sub_plain(ba, pt_add),
         lambda: [evaluator.sub_plain(a, pt_add) for a in cts_a]),
        ("add_scalar", lambda: batch_evaluator.add_scalar(ba, 0.375),
         lambda: [evaluator.add_scalar(a, 0.375) for a in cts_a]),
        ("multiply_plain", lambda: batch_evaluator.multiply_plain(ba, pt_mult),
         lambda: [evaluator.multiply_plain(a, pt_mult) for a in cts_a]),
        ("multiply_scalar", lambda: batch_evaluator.multiply_scalar(ba, 1.5),
         lambda: [evaluator.multiply_scalar(a, 1.5) for a in cts_a]),
        ("multiply", lambda: batch_evaluator.multiply(ba, bb),
         lambda: [evaluator.multiply(a, b) for a, b in zip(cts_a, cts_b)]),
        ("square", lambda: batch_evaluator.square(ba),
         lambda: [evaluator.square(a) for a in cts_a]),
        ("rescale", lambda: batch_evaluator.rescale(raw_batch),
         lambda: [evaluator.rescale(
             evaluator.multiply(a, b, rescale=False))
             for a, b in zip(cts_a, cts_b)]),
        ("rotate", lambda: batch_evaluator.rotate(ba, 2),
         lambda: [evaluator.rotate(a, 2) for a in cts_a]),
        ("conjugate", lambda: batch_evaluator.conjugate(ba),
         lambda: [evaluator.conjugate(a) for a in cts_a]),
    ]


class TestBitIdenticalOutputs:
    """Batched == sequential, residue for residue, for every operation."""

    @pytest.mark.parametrize("tracing", [False, True], ids=["untraced", "traced"])
    def test_every_op_matches_sequential(self, evaluator, batch_evaluator,
                                         cts_a, cts_b, tracing):
        for name, batched, sequential in _ops(evaluator, batch_evaluator,
                                              cts_a, cts_b):
            reference = sequential()
            if tracing:
                with get_dispatcher().record():
                    result = batched()
            else:
                result = batched()
            assert_members_identical(result, reference, label=name)

    def test_hoisted_rotations_share_one_decomposition(self, evaluator,
                                                       batch_evaluator, cts_a):
        batch = CiphertextBatch.from_ciphertexts(cts_a)
        batched = batch_evaluator.hoisted_rotations(batch, [1, 2, 0])
        sequential = [evaluator.hoisted_rotations(a, [1, 2, 0]) for a in cts_a]
        for step in (1, 2, 0):
            assert_members_identical(
                batched[step], [seq[step] for seq in sequential]
            )

    def test_decrypted_values_match_plain_compute(self, decryptor, batch_evaluator,
                                                  cts_a, cts_b, encryptor):
        rng = np.random.default_rng(11)
        rows_a = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        rng = np.random.default_rng(13)
        rows_b = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        batch = batch_evaluator.multiply(
            CiphertextBatch.from_ciphertexts(cts_a),
            CiphertextBatch.from_ciphertexts(cts_b),
        )
        for member, expect_a, expect_b in zip(batch.split(), rows_a, rows_b):
            values = decryptor.decrypt_values(member, 8)
            assert np.allclose(values, expect_a * expect_b, atol=1e-2)


class TestFuseSplit:
    """LimbStack.fuse/split: zero-copy members, single pool charge."""

    def test_fuse_charges_pool_once_and_split_is_free(self):
        pool = MemoryPool()
        stacks = [
            LimbStack.from_rows(
                [97, 193], [np.arange(8) % 97 + i, np.arange(8) % 193 + i],
                pool=pool,
            )
            for i in range(3)
        ]
        allocations_before = pool.allocation_count
        fused = LimbStack.fuse(stacks, pool=pool)
        assert pool.allocation_count == allocations_before + 1
        assert fused.num_limbs == 6
        assert fused.footprint_bytes() == sum(s.footprint_bytes() for s in stacks)
        members = fused.split(3)
        # Splitting allocates nothing: members are unmanaged views.
        assert pool.allocation_count == allocations_before + 1
        for member, original in zip(members, stacks):
            assert np.array_equal(member.data, original.data)
            assert member.data.base is fused.data  # zero-copy row view
            assert not member.buffer.managed
        bytes_before = pool.bytes_in_use
        for member in members:
            member.release()  # no-op for unmanaged views
        assert pool.bytes_in_use == bytes_before

    def test_split_view_sees_fused_writes(self):
        stacks = [
            LimbStack.from_rows([97], [np.arange(8) % 97]) for _ in range(2)
        ]
        fused = LimbStack.fuse(stacks)
        view = fused.split(2)[1]
        fused.data[1, 0] = 42
        assert int(view.data[0, 0]) == 42

    def test_split_rejects_uneven_partition(self):
        fused = LimbStack.from_rows([97, 193, 389], [np.zeros(8)] * 3)
        with pytest.raises(ValueError, match="equal members"):
            fused.split(2)

    def test_ciphertext_batch_split_members_are_views(self, cts_a):
        batch = CiphertextBatch.from_ciphertexts(cts_a)
        members = batch.split()
        for member in members:
            assert member.c0.stack.data.base is batch.c0.stack.data
        # Mutating the fused buffer is visible through the view.
        batch.c0.stack.data[0, 0] += 0
        assert np.array_equal(members[0].c0.stack.data, batch.c0.stack.data[: members[0].c0.level_count])


class TestBatchValidation:
    """Mixed-shape batches are rejected with descriptive errors."""

    def test_mixed_level_batch_rejected(self, evaluator, cts_a):
        dropped = evaluator.mod_reduce(cts_a[1], cts_a[1].limb_count - 1)
        with pytest.raises(ValueError, match="mixed levels"):
            CiphertextBatch.from_ciphertexts([cts_a[0], dropped])

    def test_mixed_level_symbolic_batch_rejected(self, toy_params):
        backend = CostModelBackend(toy_params)
        a = backend.encrypt([1.0])
        b = backend.rescale(
            backend.encrypt([1.0], scale=toy_params.scale ** 2)
        )
        with pytest.raises(ValueError, match="mixed levels"):
            backend.batch_from([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            CiphertextBatch.from_ciphertexts([])

    def test_mismatched_batch_sizes_rejected(self, batch_evaluator, cts_a, cts_b):
        a = CiphertextBatch.from_ciphertexts(cts_a)
        b = CiphertextBatch.from_ciphertexts(cts_b[:2])
        with pytest.raises(ValueError, match="batch sizes differ"):
            batch_evaluator.add(a, b)

    def test_level_zero_batch_rescale_rejected(self, batch_evaluator, cts_a,
                                               evaluator):
        bottom = [evaluator.mod_reduce(ct, 1) for ct in cts_a]
        batch = CiphertextBatch.from_ciphertexts(bottom)
        with pytest.raises(ValueError, match="level-0"):
            batch_evaluator.rescale(batch)


class TestBatchTrace:
    """Batched traces keep the single-op kernel structure at B x bytes."""

    def test_kernel_counts_match_single_op(self, evaluator, batch_evaluator,
                                           cts_a, cts_b):
        with get_dispatcher().record() as single:
            evaluator.multiply(cts_a[0], cts_b[0])
        batch_a = CiphertextBatch.from_ciphertexts(cts_a)
        batch_b = CiphertextBatch.from_ciphertexts(cts_b)
        with get_dispatcher().record() as batched:
            batch_evaluator.multiply(batch_a, batch_b)
        assert batched.kernel_count == single.kernel_count
        assert batched.bytes_moved == pytest.approx(
            BATCH * single.bytes_moved, rel=1e-9
        )
        # Leaf segmentation stays comparable with the sequential scopes.
        single_scopes = {k: len(v) for k, v in single.leaf_segments().items()}
        batch_scopes = {k: len(v) for k, v in batched.leaf_segments().items()}
        assert single_scopes == batch_scopes

    def test_batch_scope_prefix_tags_provenance(self, batch_evaluator, cts_a, cts_b):
        batch_a = CiphertextBatch.from_ciphertexts(cts_a)
        batch_b = CiphertextBatch.from_ciphertexts(cts_b)
        with get_dispatcher().record() as trace:
            batch_evaluator.multiply(batch_a, batch_b)
        assert any(s.startswith(f"batch{BATCH}/hmult") for s in trace.scopes())


class TestApiSurface:
    """CipherBatch handles across the three backends."""

    @pytest.fixture(scope="class")
    def session(self, context, evaluator, keys, encryptor, decryptor):
        return CKKSSession(
            context=context, evaluator=evaluator, keys=keys,
            encryptor=encryptor, decryptor=decryptor, register_default=False,
        )

    def test_operator_circuit_matches_sequential(self, session):
        rng = np.random.default_rng(7)
        rows = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        vectors = [session.encrypt(row) for row in rows]
        batch = session.batch(vectors)
        batched = 2.0 * (batch * batch) + 1.0
        sequential = [2.0 * (v * v) + 1.0 for v in vectors]
        for member, reference in zip(batched.split(), sequential):
            assert np.array_equal(
                member.handle.c0.stack.data, reference.handle.c0.stack.data
            )
        for member, row in zip(batched.split(), rows):
            assert np.allclose(
                session.decrypt(member, 8), 2.0 * row * row + 1.0, atol=1e-2
            )

    def test_rsub_and_conj_match_vector_surface(self, session):
        rng = np.random.default_rng(21)
        rows = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        vectors = [session.encrypt(row) for row in rows]
        batch = session.batch(vectors)
        flipped = 1.0 - batch
        for member, reference in zip(flipped.split(), [1.0 - v for v in vectors]):
            assert np.array_equal(
                member.handle.c0.stack.data, reference.handle.c0.stack.data
            )
        conjugated = batch.conj()
        for member, reference in zip(conjugated.split(),
                                     [v.conj() for v in vectors]):
            assert np.array_equal(
                member.handle.c0.stack.data, reference.handle.c0.stack.data
            )
        cost = session.cost_backend()
        sym = cost.batch_conjugate(cost.encrypt_batch(rows))
        assert sym.level == batch.level

    def test_batch_of_existing_vectors_and_rotation(self, session):
        rng = np.random.default_rng(9)
        rows = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        batch = session.batch([session.encrypt(row) for row in rows])
        rotated = batch << 1
        for member, row in zip(rotated.split(), rows):
            assert np.allclose(
                session.decrypt(member, 8), np.roll(row, -1), atol=1e-2
            )
        many = batch.rotate_many([1, 2])
        assert set(many) == {1, 2}

    def test_cost_backend_batch_records_fused_launches(self, session):
        backend = session.cost_backend()
        rows = [[1.0]] * BATCH
        batch = backend.encrypt_batch(rows)
        single = backend.encrypt([1.0])
        backend.batch_multiply(batch, batch)
        batch_entries = list(backend.ledger.entries)
        backend.ledger.clear()
        backend.multiply(single, single)
        single_entries = list(backend.ledger.entries)
        batch_cost = sum((c.kernel_count for _, c in batch_entries))
        single_cost = sum((c.kernel_count for _, c in single_entries))
        assert batch_cost == single_cost  # launches do not scale with B
        batch_bytes = sum(c.bytes_moved for _, c in batch_entries)
        single_bytes = sum(c.bytes_moved for _, c in single_entries)
        assert batch_bytes == pytest.approx(BATCH * single_bytes, rel=1e-9)
        assert isinstance(batch, SymbolicCipherBatch)

    def test_tracing_backend_batch_handles_match_inner(self, session):
        rng = np.random.default_rng(5)
        rows = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        cts = [session.encrypt(row).handle for row in rows]
        tracing = session.tracing_backend()
        batch = tracing.batch_from(cts)
        result = tracing.batch_multiply(batch, batch)
        assert tracing.trace.kernel_count > 0
        plain = session.backend.batch_multiply(
            session.backend.batch_from(cts),
            session.backend.batch_from(cts),
        )
        for traced, untraced in zip(result.split(), plain.split()):
            assert np.array_equal(
                traced.c0.stack.data, untraced.c0.stack.data
            )


class TestBatchAdjust:
    """Batched level adjustment: the serving plane's alignment primitive."""

    def test_adjust_matches_sequential_member_by_member(
            self, evaluator, batch_evaluator, cts_a):
        batch = CiphertextBatch.from_ciphertexts(cts_a)
        target = batch.level - 2
        adjusted = batch_evaluator.adjust(batch, target)
        sequential = [evaluator.adjust(ct, target) for ct in cts_a]
        assert_members_identical(adjusted, sequential, label="adjust")
        assert adjusted.level == target

    def test_mod_reduce_matches_sequential(self, evaluator, batch_evaluator,
                                           cts_a):
        batch = CiphertextBatch.from_ciphertexts(cts_a)
        keep = batch.limb_count - 2
        reduced = batch_evaluator.mod_reduce(batch, keep)
        sequential = [evaluator.mod_reduce(ct, keep) for ct in cts_a]
        assert_members_identical(reduced, sequential, label="mod_reduce")

    def test_adjust_rejects_higher_level(self, batch_evaluator, cts_a):
        batch = CiphertextBatch.from_ciphertexts(cts_a)
        lowered = batch_evaluator.adjust(batch, batch.level - 1)
        with pytest.raises(ValueError, match="higher level"):
            batch_evaluator.adjust(lowered, lowered.level + 1)

    def test_api_at_level_on_all_three_backends(self, session):
        rng = np.random.default_rng(23)
        rows = [rng.uniform(-1, 1, 8) for _ in range(BATCH)]
        vectors = [session.encrypt(row) for row in rows]
        target = vectors[0].level - 2

        fused = session.batch(vectors).at_level(target)
        sequential = [v.at_level(target) for v in vectors]
        for member, reference in zip(fused.split(), sequential):
            assert np.array_equal(
                member.handle.c0.stack.data, reference.handle.c0.stack.data
            )
        assert fused.level == target

        cost = session.cost_backend()
        symbolic = cost.batch_at_level(cost.encrypt_batch(rows), target)
        assert symbolic.level == target
        assert symbolic.scale == pytest.approx(fused.scale, rel=1e-9)
        assert any("Adjust[B=" in name for name, _ in cost.ledger.entries)

        tracing = session.tracing_backend()
        traced = tracing.batch_at_level(
            tracing.batch_from([v.handle for v in vectors]), target
        )
        for member, reference in zip(traced.split(), sequential):
            assert np.array_equal(
                member.c0.stack.data, reference.handle.c0.stack.data
            )


class TestFusedFootprintBudget:
    """from_ciphertexts refuses over-budget batches before copying."""

    def test_descriptive_error_names_shape_and_budget(self, context):
        from repro.core.limb import LimbFormat
        from repro.core.memory import FusedFootprintError, OutOfDeviceMemory
        from repro.core.rns_poly import RNSPoly

        n = context.ring_degree
        moduli = context.moduli[:2]
        # Budget holds the members plus one fused component, not both.
        pool = MemoryPool(capacity_bytes=11 * n * 8, granularity=1)

        def make_ct():
            return_polys = [
                RNSPoly.from_stack(
                    LimbStack.zeros(n, moduli, pool=pool), LimbFormat.EVALUATION
                )
                for _ in range(2)
            ]
            from repro.ckks.ciphertext import Ciphertext
            return Ciphertext(return_polys[0], return_polys[1], 2.0**28, n // 2)

        cts = [make_ct(), make_ct()]  # 8 rows resident, 3 rows free
        bytes_before = pool.bytes_in_use
        with pytest.raises(FusedFootprintError) as info:
            CiphertextBatch.from_ciphertexts(cts)
        message = str(info.value)
        assert "B=2" in message and "L=2" in message and f"N={n}" in message
        assert str(pool.capacity_bytes) in message
        assert pool.bytes_in_use == bytes_before  # nothing was copied
        assert isinstance(info.value, OutOfDeviceMemory)
