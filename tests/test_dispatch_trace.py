"""Tests of the execution plane: dispatcher, kernel traces, trace pricing.

Covers the tentpole acceptance criteria:

* a recorded N=2^13 HMult+rescale trace reconciles with
  ``CKKSOperationCosts.hmult(include_rescale=True)`` kernel counts and
  bytes within 5%;
* the dependency-aware scheduler reproduces the §III-F.1 trend on the
  recorded trace: multi-stream makespan <= single-stream makespan, with
  the gap growing as ``launch_overhead_us`` grows;

plus the satellite edge cases: empty traces, trace determinism, and
tracing leaving ciphertext outputs bit-identical.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import CKKSSession, TracingBackend
from repro.ckks.params import CKKSParameters
from repro.core.dispatch import KernelTrace, get_dispatcher
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.calibration import kernel_kind, reconcile_trace
from repro.perf.costmodel import CKKSOperationCosts
from repro.perf.trace_model import TraceCostModel


@pytest.fixture(scope="module")
def traced_session():
    """A small session dedicated to tracing tests (own context, toy-sized)."""
    params = CKKSParameters(
        ring_degree=1 << 12, mult_depth=6, scale_bits=28, dnum=3,
        first_mod_bits=30, label="trace-12-6",
    )
    return CKKSSession.create(
        params, rotations=[1], seed=7, register_default=False
    )


@pytest.fixture(scope="module")
def hmult_trace(traced_session):
    """One recorded HMult+rescale trace at the module session."""
    rng = np.random.default_rng(1)
    ct_a = traced_session.encrypt(rng.uniform(-1, 1, 16))
    ct_b = traced_session.encrypt(rng.uniform(-1, 1, 16))
    with traced_session.trace() as trace:
        ct_a * ct_b
    return trace


class TestRecording:
    def test_nothing_recorded_without_trace(self, traced_session):
        dispatcher = get_dispatcher()
        assert not dispatcher.recording
        ct = traced_session.encrypt([0.5])
        ct + ct  # executes without an active trace
        assert not dispatcher.recording

    def test_trace_has_real_shapes_and_scopes(self, hmult_trace):
        assert len(hmult_trace) > 0
        scopes = set(hmult_trace.scopes())
        assert "hmult" in scopes
        assert "hmult/modup" in scopes
        assert "hmult/keyswitch/moddown" in scopes
        assert "hmult/rescale" in scopes
        names = [event.kernel.name for event in hmult_trace]
        assert "tensor[7]" in names         # 7 limbs at the top level
        assert any(name.startswith("baseconv[") for name in names)

    def test_dependencies_reference_earlier_events(self, hmult_trace):
        for event in hmult_trace:
            assert all(0 <= dep < event.index for dep in event.deps)
        # The relinearisation add depends (transitively) on earlier work.
        relin = next(e for e in hmult_trace if e.kernel.name.startswith("relin-add"))
        assert relin.deps

    def test_trace_determinism(self, traced_session):
        rng = np.random.default_rng(5)
        values_a = rng.uniform(-1, 1, 16)
        values_b = rng.uniform(-1, 1, 16)

        def record():
            ct_a = traced_session.encrypt(values_a)
            ct_b = traced_session.encrypt(values_b)
            with traced_session.trace() as trace:
                (ct_a * ct_b) + ct_a.at_level(5)
            return trace

        first, second = record(), record()
        assert [e.kernel.name for e in first] == [e.kernel.name for e in second]
        assert [e.scope for e in first] == [e.scope for e in second]
        assert first.dependencies() == second.dependencies()
        assert first.kernel_count == second.kernel_count
        assert first.bytes_moved == second.bytes_moved

    def test_tracing_leaves_outputs_bit_identical(self, traced_session):
        rng = np.random.default_rng(9)
        ct_a = traced_session.encrypt(rng.uniform(-1, 1, 16))
        ct_b = traced_session.encrypt(rng.uniform(-1, 1, 16))
        plain = (ct_a * ct_b).handle
        with traced_session.trace():
            traced = (ct_a * ct_b).handle
        np.testing.assert_array_equal(
            np.asarray(plain.c0.stack.data), np.asarray(traced.c0.stack.data)
        )
        np.testing.assert_array_equal(
            np.asarray(plain.c1.stack.data), np.asarray(traced.c1.stack.data)
        )
        assert plain.scale == traced.scale

    def test_nested_scopes_and_suppression(self):
        dispatcher = get_dispatcher()
        with dispatcher.record() as trace:
            with dispatcher.scope("outer"), dispatcher.scope("inner"):
                dispatcher.elementwise(
                    "probe",
                    reads=(np.zeros((2, 4), dtype=np.uint64),),
                    writes=(np.zeros((2, 4), dtype=np.uint64),),
                    ops_per_element=1.0,
                )
            with dispatcher.suppressed():
                dispatcher.elementwise(
                    "hidden",
                    reads=(np.zeros((2, 4), dtype=np.uint64),),
                    writes=(np.zeros((2, 4), dtype=np.uint64),),
                    ops_per_element=1.0,
                )
        assert [e.kernel.name for e in trace.events] == ["probe[2]"]
        assert trace.events[0].scope == "outer/inner"

    def test_tracing_backend_accumulates_across_operations(self, traced_session):
        backend = TracingBackend(traced_session.backend)
        ct = backend.encrypt([0.25, -0.5])
        result = backend.multiply(ct, ct)
        backend.rescale_count = None  # attribute access does not break tracing
        assert backend.trace.kernel_count > 0
        leafs = backend.trace.leaf_segments()
        assert "rescale" in leafs
        assert backend.describe()["backend"] == "tracing"
        assert result.limb_count == ct.limb_count - 1


class TestReconciliation:
    def test_hmult_trace_matches_cost_model(self, traced_session, hmult_trace):
        limbs = traced_session.max_level + 1
        costs = CKKSOperationCosts(traced_session.params, limb_batch=None, fusion=True)
        report = reconcile_trace(
            hmult_trace, costs.hmult(limbs, include_rescale=True)
        )
        assert report.within(kernel_tolerance=0.05, bytes_tolerance=0.05)

    def test_acceptance_n13_hmult_rescale_within_5_percent(self):
        # Acceptance criterion: N=2^13 HMult+rescale kernel counts within 5%.
        params = CKKSParameters(
            ring_degree=1 << 13, mult_depth=5, scale_bits=28, dnum=3,
            first_mod_bits=30, label="trace-13-5",
        )
        session = CKKSSession.create(params, seed=11, register_default=False)
        rng = np.random.default_rng(2)
        ct_a = session.encrypt(rng.uniform(-1, 1, 32))
        ct_b = session.encrypt(rng.uniform(-1, 1, 32))
        with session.trace() as trace:
            ct_a * ct_b
        costs = CKKSOperationCosts(params, limb_batch=None, fusion=True)
        cost = costs.hmult(ct_a.limb_count, include_rescale=True)
        report = reconcile_trace(trace, cost, name="HMult+rescale @ N=2^13")
        assert report.kernel_count_delta <= 0.05, report.describe()
        assert report.bytes_delta <= 0.05, report.describe()
        # The rescale segment alone matches the standalone Rescale cost.
        rescale_events = [
            e.kernel for e in trace if e.scope.endswith("rescale")
        ]
        rescale_report = reconcile_trace(
            rescale_events, costs.rescale(ct_a.limb_count)
        )
        assert rescale_report.within()

    def test_keyswitch_segments_reconcile(self, traced_session, hmult_trace):
        # ModUp + inner product + ModDown of the trace against the
        # hand-built key-switch decomposition (minus its fused input iNTT,
        # which the trace records under modup).
        limbs = traced_session.max_level + 1
        costs = CKKSOperationCosts(traced_session.params, limb_batch=None, fusion=True)
        ks_events = [
            event.kernel
            for event in hmult_trace
            if "modup" in event.scope or "keyswitch" in event.scope
        ]
        report = reconcile_trace(ks_events, costs.key_switch(limbs))
        assert report.within()

    def test_kernel_kind_classification(self):
        assert kernel_kind("rescale-intt[1]") == "intt"
        assert kernel_kind("modup-ntt[9]") == "ntt"
        assert kernel_kind("modup[2->9]") == "baseconv"
        assert kernel_kind("baseconv[3->7]") == "baseconv"
        assert kernel_kind("hoist-automorph[20]") == "automorphism"
        assert kernel_kind("limb-copy[7]") == "copy"
        assert kernel_kind("ks-inner-product[10]") == "elementwise"

    def test_reconciliation_detects_divergence(self, traced_session, hmult_trace):
        limbs = traced_session.max_level + 1
        costs = CKKSOperationCosts(traced_session.params, limb_batch=None, fusion=True)
        wrong = costs.hmult(limbs, include_rescale=False)  # missing rescale
        report = reconcile_trace(hmult_trace, wrong)
        assert not report.within()
        assert "delta" in report.describe()


class TestTracePricing:
    def test_empty_trace_prices_to_zero(self):
        report = TraceCostModel(GPU_RTX_4090).price(KernelTrace())
        assert report.makespan == 0.0
        assert report.kernel_count == 0
        assert report.segments == {}

    def test_segments_cover_all_kernels(self, hmult_trace):
        report = TraceCostModel(GPU_RTX_4090).price(hmult_trace)
        assert sum(s.kernel_count for s in report.segments.values()) == \
            hmult_trace.kernel_count
        for name in ("modup", "moddown", "rescale"):
            assert name in report.segments
            assert report.segments[name].execution_time > 0
        summary = report.summary()
        assert summary["kernel_count"] == hmult_trace.kernel_count
        assert summary["makespan_s"] == pytest.approx(report.makespan)

    def test_multi_stream_not_slower_and_gap_grows_with_overhead(self, hmult_trace):
        # §III-F.1: multi-stream makespan <= single-stream makespan, with
        # the gap growing as launch_overhead_us grows.
        gaps = []
        for overhead in (0.5, 1.0, 3.0, 10.0, 30.0):
            platform = dataclasses.replace(
                GPU_RTX_4090, launch_overhead_us=overhead
            )
            pricer = TraceCostModel(platform)
            single = pricer.price(hmult_trace, streams=1).makespan
            multi = pricer.price(hmult_trace, streams=8).makespan
            assert multi <= single + 1e-15
            gaps.append(single - multi)
        assert all(b >= a - 1e-12 for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] > gaps[0]

    def test_dependencies_tighten_the_schedule(self, hmult_trace):
        # The recorded DAG binds: the chained HMult pipeline hides fewer
        # launches than the same kernels scheduled as independent work,
        # but its parallel branches (per-digit ModUp, the two ModDown /
        # rescale components) still beat a single stream.
        pricer = TraceCostModel(GPU_RTX_4090)
        timings = pricer.cost_model.time_kernels(hmult_trace.kernels())
        from repro.gpu.stream import StreamScheduler

        scheduler = StreamScheduler(GPU_RTX_4090, streams=8)
        with_deps = scheduler.schedule(timings, dependencies=hmult_trace.dependencies())
        without = scheduler.schedule(timings)
        single = StreamScheduler(GPU_RTX_4090, streams=1).schedule(
            timings, dependencies=hmult_trace.dependencies()
        )
        assert without.makespan < with_deps.makespan
        assert with_deps.makespan < single.makespan
        assert with_deps.kernel_count == without.kernel_count

    def test_independent_operations_are_parallel_in_the_dag(self, traced_session):
        # Two HMults on unrelated ciphertexts must share no dependency
        # edges (the trace's byte-interval tracking keeps them disjoint).
        rng = np.random.default_rng(21)
        pairs = [
            (traced_session.encrypt(rng.uniform(-1, 1, 8)),
             traced_session.encrypt(rng.uniform(-1, 1, 8)))
            for _ in range(2)
        ]
        with traced_session.trace() as trace:
            pairs[0][0] * pairs[0][1]
            first_half = len(trace)
            pairs[1][0] * pairs[1][1]
        crossing = [
            event.index
            for event in trace
            if event.index >= first_half
            and any(dep < first_half for dep in event.deps)
        ]
        assert crossing == []

    def test_trace_does_not_pin_data_plane_arrays(self, traced_session):
        import gc

        rng = np.random.default_rng(23)
        with traced_session.trace() as trace:
            ct_a = traced_session.encrypt(rng.uniform(-1, 1, 8))
            ct_b = traced_session.encrypt(rng.uniform(-1, 1, 8))
            result = ct_a * ct_b
        populated = len(trace._buffers)
        assert populated > 0
        del ct_a, ct_b, result
        gc.collect()
        # Buffer-tracking state follows the arrays' lifetimes; the events
        # themselves (kernels, deps) survive unchanged.
        assert len(trace._buffers) < populated
        assert trace.kernel_count > 0
        assert trace.dependencies()
