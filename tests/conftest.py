"""Shared fixtures: contexts, keys and evaluators at test-sized parameters.

Key generation is comparatively expensive, so the fixtures are
session-scoped; tests must not mutate the shared objects (all evaluator
operations return new ciphertexts, so this is the natural usage anyway).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import CKKSSession
from repro.apps.linear_algebra import EncryptedLinearAlgebra
from repro.ckks.context import Context
from repro.ckks.encryption import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, KeySet
from repro.ckks.params import CKKSParameters, PARAMETER_SETS


#: Rotation steps made available in the shared key set.
TEST_ROTATIONS = (1, 2, 3, 4, 8, -1)


@pytest.fixture(scope="session")
def toy_params() -> CKKSParameters:
    """Small parameter set used by most functional tests."""
    return PARAMETER_SETS["toy"]


@pytest.fixture(scope="session")
def context(toy_params) -> Context:
    """Shared CKKS context at the toy parameter set."""
    return Context(toy_params)


@pytest.fixture(scope="session")
def keys(context) -> KeySet:
    """Shared key material (secret retained for decryption in tests)."""
    generator = KeyGenerator(context, seed=12345)
    rotations = list(TEST_ROTATIONS) + EncryptedLinearAlgebra.rotation_steps_for_sum(8)
    return generator.generate(sorted(set(rotations)), conjugation=True)


@pytest.fixture(scope="session")
def evaluator(context, keys) -> Evaluator:
    """Shared evaluator bound to the session keys."""
    return Evaluator(context, keys)


@pytest.fixture(scope="session")
def encryptor(context, keys) -> Encryptor:
    """Shared public-key encryptor."""
    return Encryptor(context, keys.public_key, seed=777)


@pytest.fixture(scope="session")
def decryptor(context, keys) -> Decryptor:
    """Shared decryptor (plays the client role of the integration tests)."""
    return Decryptor(context, keys.secret_key)


@pytest.fixture(scope="session")
def session(context, keys, evaluator, encryptor, decryptor) -> CKKSSession:
    """High-level session sharing the expensive session-scoped key material."""
    return CKKSSession(
        context=context,
        evaluator=evaluator,
        keys=keys,
        encryptor=encryptor,
        decryptor=decryptor,
        register_default=False,
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator for message sampling."""
    return np.random.default_rng(20250614)


def assert_close(actual, expected, tolerance=5e-4):
    """Assert CKKS approximate equality with a default tolerance."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    assert actual.shape == expected.shape
    error = float(np.max(np.abs(actual - expected))) if actual.size else 0.0
    assert error < tolerance, f"max error {error} exceeds tolerance {tolerance}"
