"""Tests for the radix-2 and hierarchical negacyclic NTT engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import modmath
from repro.core.ntt import HierarchicalNTT, NTTEngine, bit_reverse_indices, get_engine
from repro.core.primes import generate_ntt_primes


def schoolbook_negacyclic(a, b, q, n):
    """Reference O(N^2) negacyclic multiplication."""
    result = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            idx = i + j
            value = ai * int(b[j])
            if idx >= n:
                idx -= n
                value = -value
            result[idx] = (result[idx] + value) % q
    return result


@pytest.fixture(params=[(32, 25), (128, 28), (64, 59)], ids=["n32", "n128", "n64w59"])
def engine(request):
    n, bits = request.param
    q = generate_ntt_primes(1, bits, n)[0]
    return NTTEngine(n, q)


class TestRadix2:
    def test_roundtrip(self, engine):
        rng = np.random.default_rng(0)
        a = [int(rng.integers(0, engine.modulus)) for _ in range(engine.ring_degree)]
        forward = engine.forward(a)
        back = engine.inverse(forward)
        assert [int(x) for x in back] == [x % engine.modulus for x in a]

    def test_convolution_theorem(self, engine):
        n, q = engine.ring_degree, engine.modulus
        rng = np.random.default_rng(1)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        b = [int(rng.integers(0, q)) for _ in range(n)]
        product = engine.negacyclic_multiply(a, b)
        assert [int(x) for x in product] == schoolbook_negacyclic(a, b, q, n)

    def test_forward_is_linear(self, engine):
        n, q = engine.ring_degree, engine.modulus
        rng = np.random.default_rng(2)
        a = modmath.as_residue_array(rng.integers(0, q, n).astype(object), q)
        b = modmath.as_residue_array(rng.integers(0, q, n).astype(object), q)
        lhs = engine.forward(modmath.vec_add_mod(a, b, q))
        rhs = modmath.vec_add_mod(engine.forward(a), engine.forward(b), q)
        assert [int(x) for x in lhs] == [int(x) for x in rhs]

    def test_fused_premultiply(self, engine):
        n, q = engine.ring_degree, engine.modulus
        rng = np.random.default_rng(3)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        scalar = 12345 % q
        fused = engine.forward(a, premultiply=scalar)
        reference = engine.forward([(x * scalar) % q for x in a])
        assert [int(x) for x in fused] == [int(x) for x in reference]

    def test_fused_postmultiply_inverse(self, engine):
        n, q = engine.ring_degree, engine.modulus
        rng = np.random.default_rng(4)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        scalar = 987 % q
        forward = engine.forward(a)
        fused = engine.inverse(forward, postmultiply=scalar)
        assert [int(x) for x in fused] == [(x * scalar) % q for x in a]

    def test_constant_polynomial_transform(self, engine):
        n, q = engine.ring_degree, engine.modulus
        constant = [7] + [0] * (n - 1)
        evaluations = engine.forward(constant)
        assert all(int(x) == 7 for x in evaluations)

    def test_n_inverse(self, engine):
        assert (engine.n_inverse * engine.ring_degree) % engine.modulus == 1

    def test_shoup_twiddles_shape(self, engine):
        twiddles = engine.shoup_twiddles()
        assert len(twiddles) == engine.ring_degree

    def test_rejects_bad_degree(self):
        q = generate_ntt_primes(1, 25, 32)[0]
        with pytest.raises(ValueError):
            NTTEngine(31, q)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ValueError):
            NTTEngine(64, 97)

    def test_engine_cache_reuses_instances(self):
        q = generate_ntt_primes(1, 25, 64)[0]
        assert get_engine(64, q) is get_engine(64, q)


class TestHierarchical:
    @pytest.mark.parametrize("n,bits", [(64, 25), (256, 28)])
    def test_matches_schoolbook(self, n, bits):
        q = generate_ntt_primes(1, bits, n)[0]
        hier = HierarchicalNTT(n, q)
        rng = np.random.default_rng(5)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        b = [int(rng.integers(0, q)) for _ in range(n)]
        assert [int(x) for x in hier.negacyclic_multiply(a, b)] == schoolbook_negacyclic(a, b, q, n)

    def test_roundtrip(self):
        n = 64
        q = generate_ntt_primes(1, 25, n)[0]
        hier = HierarchicalNTT(n, q)
        rng = np.random.default_rng(6)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        back = hier.inverse(hier.forward(a))
        assert [int(x) for x in back] == a

    def test_agrees_with_radix2_in_evaluation_products(self):
        n = 64
        q = generate_ntt_primes(1, 25, n)[0]
        hier = HierarchicalNTT(n, q)
        radix2 = NTTEngine(n, q, psi=hier.psi)
        rng = np.random.default_rng(7)
        a = [int(rng.integers(0, q)) for _ in range(n)]
        b = [int(rng.integers(0, q)) for _ in range(n)]
        assert [int(x) for x in hier.negacyclic_multiply(a, b)] == \
            [int(x) for x in radix2.negacyclic_multiply(a, b)]

    def test_memory_passes_matches_figure3(self):
        n = 64
        q = generate_ntt_primes(1, 25, n)[0]
        assert HierarchicalNTT(n, q).memory_passes == 4


class TestBitReversal:
    def test_is_involution(self):
        indices = bit_reverse_indices(64)
        assert np.array_equal(indices[indices], np.arange(64))

    def test_small_case(self):
        assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]


@given(st.lists(st.integers(min_value=0, max_value=2**25 - 1), min_size=32, max_size=32))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(values):
    q = generate_ntt_primes(1, 26, 32)[0]
    engine = get_engine(32, q)
    back = engine.inverse(engine.forward(values))
    assert [int(x) for x in back] == [v % q for v in values]


class TestScratchCacheBudget:
    """The NTT scratch-buffer cache stays within its LRU byte budget."""

    def test_budget_bounds_cache_and_evicts_lru(self):
        from repro.core import ntt as nttmod
        from repro.core.ntt import scratch_cache_bytes, set_scratch_budget

        previous = set_scratch_budget(1 << 20)  # 1 MiB
        saved = dict(nttmod._scratch_cache)
        nttmod._scratch_cache.clear()
        try:
            # Wide batched shapes would pin ~4 MiB without the bound.
            for tag in ("a", "b", "c", "d"):
                nttmod._scratch(tag, (128, 1024))  # 1 MiB each
                assert scratch_cache_bytes() <= (1 << 20)
            # The most recent key survives; the oldest were evicted.
            assert "d" in nttmod._scratch_cache
            assert "a" not in nttmod._scratch_cache
            # A single buffer above the budget is still served (and kept).
            buf = nttmod._scratch("big", (512, 1024))  # 4 MiB
            assert buf.shape == (512, 1024)
            assert "big" in nttmod._scratch_cache
        finally:
            set_scratch_budget(previous)
            nttmod._scratch_cache.clear()
            nttmod._scratch_cache.update(saved)

    def test_transforms_unchanged_under_tiny_budget(self, toy_params=None):
        from repro.core import ntt as nttmod
        from repro.core.ntt import get_stacked_engine, set_scratch_budget

        q = generate_ntt_primes(2, 26, 64)
        engine = get_stacked_engine(64, tuple(q))
        rng = np.random.default_rng(3)
        stack = rng.integers(0, min(q), size=(2, 64)).astype(np.uint64)
        reference = engine.forward(stack)
        previous = set_scratch_budget(4096)
        try:
            assert np.array_equal(engine.forward(stack), reference)
        finally:
            set_scratch_budget(previous)
