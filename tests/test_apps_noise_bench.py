"""Tests for the application workloads, noise estimation and bench reporting."""

import numpy as np
import pytest

from repro.apps.dataset import make_loan_dataset
from repro.apps.linear_algebra import EncryptedLinearAlgebra
from repro.apps.logistic_regression import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
    sigmoid,
    sigmoid_poly,
)
from repro.apps.stats import EncryptedStatistics
from repro.bench.reporting import BenchmarkTable, format_seconds, speedup
from repro.ckks.noise import (
    estimate_noise_bits,
    fresh_encryption_noise_bits,
    key_switch_noise_bits,
    measured_precision_bits,
    precision_bits_from_error,
)
from repro.ckks.params import PARAMETER_SETS
from tests.conftest import assert_close


class TestDataset:
    def test_shapes_and_padding(self):
        data = make_loan_dataset(samples=200, features=25, seed=1)
        assert data.features.shape == (200, 32)
        assert data.padded_feature_count == 32 and data.feature_count == 25
        assert np.all(data.features[:, 25:] == 0)

    def test_labels_binary_and_balanced(self):
        data = make_loan_dataset(samples=2000, features=10, seed=2)
        assert set(np.unique(data.labels)) <= {0.0, 1.0}
        assert 0.2 < np.mean(data.labels) < 0.8

    def test_batches(self):
        data = make_loan_dataset(samples=64, features=4, seed=3)
        batches = list(data.batches(16))
        assert len(batches) == 4
        assert batches[0][0].shape == (16, 4)

    def test_reproducible(self):
        a = make_loan_dataset(samples=50, features=5, seed=7)
        b = make_loan_dataset(samples=50, features=5, seed=7)
        assert np.array_equal(a.features, b.features)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_loan_dataset(samples=0)


class TestPlaintextLogisticRegression:
    def test_training_improves_accuracy(self):
        data = make_loan_dataset(samples=4000, features=8, noise=0.1, seed=4)
        model = PlaintextLogisticRegression(learning_rate=2.0)
        for features, labels in data.batches(256):
            model.fit_batch(features, labels)
        assert model.accuracy(data.features, data.labels) > 0.8

    def test_sigmoid_approximation_close_near_zero(self):
        xs = np.linspace(-2, 2, 21)
        assert np.max(np.abs(sigmoid(xs) - sigmoid_poly(xs))) < 0.06

    def test_predict_requires_training(self):
        with pytest.raises(RuntimeError):
            PlaintextLogisticRegression().predict(np.zeros((1, 2)))


class TestEncryptedLinearAlgebra:
    def test_sum_slots(self, session, rng):
        values = rng.uniform(-1, 1, 8)
        linalg = EncryptedLinearAlgebra(session)
        result = linalg.sum_slots(session.encrypt(values), 8)
        assert_close(session.decrypt(result, 1).real, [values.sum()], 2e-3)

    def test_inner_product(self, session, rng):
        a, b = rng.uniform(-1, 1, 8), rng.uniform(-1, 1, 8)
        linalg = EncryptedLinearAlgebra(session)
        result = linalg.inner_product(session.encrypt(a), session.encrypt(b), 8)
        assert_close(session.decrypt(result, 1).real, [float(a @ b)], 5e-3)

    def test_weighted_sum(self, session, rng):
        vectors = [rng.uniform(-1, 1, 4) for _ in range(3)]
        weights = [0.5, -1.0, 0.25]
        linalg = EncryptedLinearAlgebra(session)
        result = linalg.weighted_sum([session.encrypt(v) for v in vectors], weights)
        expected = sum(w * v for w, v in zip(weights, vectors))
        assert_close(session.decrypt(result, 4).real, expected, 2e-3)

    def test_matrix_vector(self, session, rng):
        matrix = rng.uniform(-0.5, 0.5, (4, 4))
        vector = rng.uniform(-1, 1, 4)
        linalg = EncryptedLinearAlgebra(session)
        result = linalg.matrix_vector(matrix, session.encrypt(vector))
        assert_close(session.decrypt(result, 4).real, matrix @ vector, 5e-3)

    def test_accepts_raw_ciphertexts(self, session, encryptor, decryptor, rng):
        """The app layer still accepts bare Ciphertext handles."""
        values = rng.uniform(-1, 1, 8)
        linalg = EncryptedLinearAlgebra(session.backend)
        result = linalg.sum_slots(encryptor.encrypt_values(values), 8)
        assert_close(decryptor.decrypt_values(result.handle, 1).real, [values.sum()], 2e-3)

    def test_rotation_steps_requires_power_of_two(self):
        with pytest.raises(ValueError):
            EncryptedLinearAlgebra.rotation_steps_for_sum(6)


class TestEncryptedStatistics:
    def test_mean_variance(self, session, rng):
        values = rng.uniform(-1, 1, 8)
        stats = EncryptedStatistics(session)
        ct = session.encrypt(values)
        mean = session.decrypt(stats.mean(ct, 8), 1).real[0]
        variance = session.decrypt(stats.variance(ct, 8), 1).real[0]
        assert abs(mean - values.mean()) < 2e-3
        assert abs(variance - values.var()) < 5e-3

    def test_covariance(self, session, rng):
        a, b = rng.uniform(-1, 1, 8), rng.uniform(-1, 1, 8)
        stats = EncryptedStatistics(session)
        cov = session.decrypt(
            stats.covariance(session.encrypt(a), session.encrypt(b), 8), 1
        ).real[0]
        assert abs(cov - np.mean(a * b) + a.mean() * b.mean()) < 5e-3


class TestEncryptedLogisticRegression:
    def test_one_encrypted_step_matches_plaintext(self, session):
        data = make_loan_dataset(samples=8, features=4, noise=0.1, seed=9)
        features, labels = data.features[:, :4], data.labels
        plain = PlaintextLogisticRegression(learning_rate=1.0)
        plain.fit_batch(features, labels)

        encrypted = EncryptedLogisticRegression(
            backend=session, feature_count=4, learning_rate=1.0
        )
        columns, label_ct = encrypted.encrypt_batch(features, labels)
        encrypted.train_batch(columns, label_ct, batch_size=8)
        weights = encrypted.decrypt_weights(session)
        assert np.max(np.abs(weights - plain.weights)) < 5e-2

    def test_required_rotations(self):
        assert EncryptedLogisticRegression.required_rotations(8) == [1, 2, 4]

    def test_encrypt_batch_validates_dimensions(self, session):
        model = EncryptedLogisticRegression(backend=session, feature_count=4)
        with pytest.raises(ValueError):
            model.encrypt_batch(np.zeros((8, 5)), np.zeros(8))


class TestNoiseEstimation:
    params = PARAMETER_SETS["toy"]

    def test_fresh_noise_positive(self):
        assert fresh_encryption_noise_bits(self.params) > 0

    def test_key_switch_noise_finite(self):
        assert 0 < key_switch_noise_bits(self.params) < 60

    def test_estimate_accumulates(self):
        short = estimate_noise_bits(self.params, ["encrypt"])
        long = estimate_noise_bits(self.params, ["encrypt", "hmult", "rescale", "hmult"])
        assert long > short

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_bits(self.params, ["teleport"])

    def test_precision_bits(self):
        assert precision_bits_from_error(0.0) == 60.0
        assert precision_bits_from_error(0.25) == pytest.approx(2.0)
        assert measured_precision_bits([1.0, 2.0], [1.0, 2.25]) == pytest.approx(2.0)

    def test_measured_precision_validates_shapes(self):
        with pytest.raises(ValueError):
            measured_precision_bits([1.0], [1.0, 2.0])


class TestBenchReporting:
    def test_format_seconds_units(self):
        assert format_seconds(5e-6).endswith("µs")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(5.0).endswith("s")

    def test_speedup(self):
        assert speedup(1.0, 0.5) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_table_rendering(self):
        table = BenchmarkTable("Table V", note="toy data")
        table.add_row(Operation="HMult", FIDESlib="1.08 ms", Speedup=374.6)
        table.add_row(Operation="HAdd", FIDESlib="50.7 µs")
        text = table.to_text()
        markdown = table.to_markdown()
        csv = table.to_csv()
        assert "Table V" in text and "HMult" in text
        assert markdown.count("|") > 6
        assert csv.splitlines()[0] == "Operation,FIDESlib,Speedup"
        assert table.columns == ["Operation", "FIDESlib", "Speedup"]
        assert table.column_values("FIDESlib") == ["1.08 ms", "50.7 µs"]
