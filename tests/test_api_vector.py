"""Operator-overload dispatch of :class:`repro.api.vector.CipherVector`.

Covers the dispatch table (ct∘ct, ct∘pt, ct∘scalar, ct∘ndarray for
``+ - *``), the rotation operators against ``Evaluator.rotate``, powers,
and the scale-safety guarantees of the handle layer.
"""

import numpy as np
import pytest

from repro.api.vector import CipherVector, as_vector
from tests.conftest import assert_close


@pytest.fixture()
def vectors(session, rng):
    a = rng.uniform(-1, 1, 8)
    b = rng.uniform(-1, 1, 8)
    return a, b, session.encrypt(a), session.encrypt(b)


class TestAdditionDispatch:
    def test_ct_plus_ct(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        assert_close(session.decrypt(ct_a + ct_b, 8).real, a + b)

    def test_ct_plus_plaintext(self, session, vectors):
        a, b, ct_a, _ = vectors
        pt = session.encode(b, like=ct_a, for_multiplication=False)
        assert_close(session.decrypt(ct_a + pt, 8).real, a + b)

    def test_ct_plus_scalar(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a + 0.5, 8).real, a + 0.5)

    def test_scalar_plus_ct(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(0.5 + ct_a, 8).real, a + 0.5)

    def test_ct_plus_ndarray(self, session, vectors):
        a, b, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a + b, 8).real, a + b)

    def test_ndarray_plus_ct(self, session, vectors):
        a, b, ct_a, _ = vectors
        assert_close(session.decrypt(b + ct_a, 8).real, a + b)


class TestSubtractionDispatch:
    def test_ct_minus_ct(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        assert_close(session.decrypt(ct_a - ct_b, 8).real, a - b)

    def test_ct_minus_plaintext(self, session, vectors):
        a, b, ct_a, _ = vectors
        pt = session.encode(b, like=ct_a, for_multiplication=False)
        assert_close(session.decrypt(ct_a - pt, 8).real, a - b)

    def test_ct_minus_scalar(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a - 0.25, 8).real, a - 0.25)

    def test_scalar_minus_ct(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(1.0 - ct_a, 8).real, 1.0 - a)

    def test_ct_minus_ndarray(self, session, vectors):
        a, b, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a - b, 8).real, a - b)

    def test_ndarray_minus_ct(self, session, vectors):
        a, b, ct_a, _ = vectors
        assert_close(session.decrypt(b - ct_a, 8).real, b - a)

    def test_negation(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(-ct_a, 8).real, -a)


class TestMultiplicationDispatch:
    def test_ct_times_ct(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        product = ct_a * ct_b
        assert_close(session.decrypt(product, 8).real, a * b)
        assert product.level == ct_a.level - 1

    def test_ct_times_plaintext(self, session, vectors):
        a, b, ct_a, _ = vectors
        pt = session.encode(b, like=ct_a, for_multiplication=True)
        assert_close(session.decrypt(ct_a * pt, 8).real, a * b)

    def test_ct_times_scalar(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a * 3.0, 8).real, a * 3.0)

    def test_scalar_times_ct(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(3.0 * ct_a, 8).real, a * 3.0)

    def test_ct_times_ndarray(self, session, vectors):
        a, b, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a * b, 8).real, a * b)

    def test_square_via_pow(self, session, vectors):
        a, _, ct_a, _ = vectors
        squared = ct_a ** 2
        assert_close(session.decrypt(squared, 8).real, a ** 2)
        assert squared.level == ct_a.level - 1

    def test_higher_powers(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a ** 3, 8).real, a ** 3, 5e-3)
        assert_close(session.decrypt(ct_a ** 4, 8).real, a ** 4, 5e-3)

    def test_pow_rejects_bad_exponents(self, vectors):
        _, _, ct_a, _ = vectors
        with pytest.raises(ValueError):
            ct_a ** 0
        with pytest.raises(ValueError):
            ct_a ** 1.5

    def test_polynomial_expression(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        result = 2.0 * (ct_a * ct_b) + 1.0
        assert_close(session.decrypt(result, 8).real, 2 * a * b + 1, 2e-3)


class TestRotationOperators:
    def test_lshift_matches_evaluator_rotate(self, session, evaluator, vectors):
        _, _, ct_a, _ = vectors
        via_operator = session.decrypt(ct_a << 2, 8)
        via_evaluator = session.decrypt(
            session.wrap(evaluator.rotate(ct_a.handle, 2)), 8
        )
        assert_close(via_operator, via_evaluator, 1e-12)

    def test_lshift_rotates_left(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a << 1, 8).real, np.roll(a, -1), 2e-3)

    def test_rshift_rotates_right(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a >> 1, 8).real, np.roll(a, 1), 2e-3)

    def test_full_rotation_is_identity(self, session, vectors):
        a, _, ct_a, _ = vectors
        assert_close(session.decrypt(ct_a << ct_a.slots, 8).real, a)

    def test_rotate_many_matches_single_rotations(self, session, vectors):
        a, _, ct_a, _ = vectors
        rotated = ct_a.rotate_many([1, 2])
        assert set(rotated) == {1, 2}
        for step, vec in rotated.items():
            assert_close(session.decrypt(vec, 8).real, np.roll(a, -step), 2e-3)

    def test_missing_rotation_key_lists_available(self, vectors):
        _, _, ct_a, _ = vectors
        with pytest.raises(KeyError, match="available rotation steps"):
            ct_a << 7

    def test_conjugate(self, session, rng):
        values = rng.uniform(-1, 1, 8) + 1j * rng.uniform(-1, 1, 8)
        ct = session.encrypt(values)
        assert_close(session.decrypt(ct.conj(), 8), np.conj(values), 2e-3)


class TestLevelAndScaleManagement:
    def test_properties(self, session, vectors):
        _, _, ct_a, _ = vectors
        assert ct_a.level == session.max_level
        assert ct_a.slots == session.slots
        assert ct_a.limb_count == session.max_level + 1
        assert ct_a.scale == pytest.approx(session.params.scale)

    def test_at_level(self, session, vectors):
        a, _, ct_a, _ = vectors
        lowered = ct_a.at_level(2)
        assert lowered.level == 2
        assert_close(session.decrypt(lowered, 8).real, a, 2e-3)

    def test_rescale_after_raw_product(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        raw = session.wrap(
            session.evaluator.multiply(ct_a.handle, ct_b.handle, rescale=False)
        )
        rescaled = raw.rescale()
        assert rescaled.level == ct_a.level - 1
        assert_close(session.decrypt(rescaled, 8).real, a * b, 2e-3)

    def test_mismatched_levels_align_automatically(self, session, vectors):
        a, b, ct_a, ct_b = vectors
        deeper = ct_a * ct_a  # one level below ct_b
        assert_close(session.decrypt(deeper + ct_b, 8).real, a * a + b, 2e-3)
        assert_close(session.decrypt(deeper * ct_b, 8).real, a * a * b, 5e-3)

    def test_scale_mismatch_is_rejected(self, session, vectors):
        _, _, ct_a, ct_b = vectors
        raw = session.wrap(
            session.evaluator.multiply(ct_a.handle, ct_b.handle, rescale=False)
        )
        with pytest.raises(ValueError, match="scale mismatch"):
            raw + ct_a


class TestDispatchGuards:
    def test_unsupported_operand_types(self, vectors):
        _, _, ct_a, _ = vectors
        with pytest.raises(TypeError):
            ct_a + "nope"
        with pytest.raises(TypeError):
            ct_a * object()

    def test_complex_scalars_rejected(self, vectors):
        _, _, ct_a, _ = vectors
        with pytest.raises(TypeError, match="complex"):
            ct_a * (1 + 2j)

    def test_cross_backend_mixing_rejected(self, session, vectors):
        _, _, ct_a, _ = vectors
        cost = session.cost_backend()
        other = CipherVector(cost, cost.encrypt())
        with pytest.raises(ValueError, match="different backends"):
            ct_a + other

    def test_as_vector_validates_backend(self, session, vectors):
        _, _, ct_a, _ = vectors
        assert as_vector(session.backend, ct_a) is ct_a
        with pytest.raises(ValueError):
            as_vector(session.cost_backend(), ct_a)
