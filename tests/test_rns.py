"""Tests for RNS bases, CRT recomposition and fast base conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.primes import generate_ntt_primes
from repro.core.rns import BaseConverter, RNSBasis, digit_of_limb, partition_digits


@pytest.fixture(scope="module")
def bases():
    source_primes = generate_ntt_primes(4, 28, 256)
    target_primes = generate_ntt_primes(5, 30, 256, exclude=source_primes)
    return RNSBasis(source_primes), RNSBasis(target_primes)


class TestRNSBasis:
    def test_modulus_is_product(self, bases):
        source, _ = bases
        product = 1
        for q in source.moduli:
            product *= q
        assert source.modulus == product

    def test_to_rns_and_reconstruct(self, bases):
        source, _ = bases
        value = 123456789123456789 % source.modulus
        residues = source.to_rns(value)
        assert source.crt_reconstruct(residues) == value

    def test_negative_values_centred_compose(self, bases):
        source, _ = bases
        limbs = source.decompose([-5, 7, -1])
        composed = source.compose(limbs, centered=True)
        assert composed == [-5, 7, -1]

    def test_uncentred_compose(self, bases):
        source, _ = bases
        limbs = source.decompose([-1])
        assert source.compose(limbs, centered=False) == [source.modulus - 1]

    def test_subbasis(self, bases):
        source, _ = bases
        sub = source.subbasis(2)
        assert sub.moduli == source.moduli[:2]

    def test_rejects_duplicate_moduli(self):
        with pytest.raises(ValueError):
            RNSBasis([17, 17])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RNSBasis([])

    def test_digit_partition(self):
        digits = partition_digits(list(range(7)), 3)
        assert digits == [[0, 1, 2], [3, 4, 5], [6]]
        assert digit_of_limb(0, 7, 3) == 0
        assert digit_of_limb(5, 7, 3) == 1
        assert digit_of_limb(6, 7, 3) == 2

    def test_digit_partition_rejects_bad_dnum(self):
        with pytest.raises(ValueError):
            partition_digits([1, 2, 3], 0)


class TestBaseConversion:
    def test_exact_conversion_matches_value(self, bases):
        source, target = bases
        import random
        rng = random.Random(0)
        values = [rng.randrange(source.modulus // 7) for _ in range(32)]
        limbs = source.decompose(values)
        converted = BaseConverter(source, target).convert_exact(limbs)
        recomposed = RNSBasis(target.moduli).compose(converted, centered=False)
        assert recomposed == [v % target.modulus for v in values]

    def test_fast_conversion_error_is_multiple_of_source_modulus(self, bases):
        source, target = bases
        import random
        rng = random.Random(1)
        values = [rng.randrange(source.modulus) for _ in range(16)]
        limbs = source.decompose(values)
        converted = BaseConverter(source, target).convert(limbs)
        recomposed = RNSBasis(target.moduli).compose(converted, centered=False)
        for got, value in zip(recomposed, values):
            difference = (got - value) % target.modulus
            # The approximation error is alpha * Q_source with alpha < #limbs.
            assert difference % source.modulus == 0
            alpha = difference // source.modulus
            assert 0 <= alpha <= len(source)

    def test_converters_reject_overlapping_bases(self, bases):
        source, _ = bases
        with pytest.raises(ValueError):
            BaseConverter(source, source)

    def test_convert_validates_limb_count(self, bases):
        source, target = bases
        converter = BaseConverter(source, target)
        with pytest.raises(ValueError):
            converter.convert([np.zeros(4, dtype=np.uint64)])

    def test_shared_memory_estimate(self, bases):
        source, target = bases
        converter = BaseConverter(source, target)
        assert converter.shared_memory_bytes_per_thread() == 4 * len(source)

    def test_object_backend_conversion(self):
        source = RNSBasis(generate_ntt_primes(2, 59, 64))
        target = RNSBasis(generate_ntt_primes(2, 60, 64, exclude=source.moduli))
        values = [12345678901234567, 3]
        limbs = source.decompose(values)
        converted = BaseConverter(source, target).convert_exact(limbs)
        recomposed = target.compose(converted, centered=False)
        assert recomposed == values


@given(st.integers(min_value=0, max_value=2**80))
@settings(max_examples=100, deadline=None)
def test_crt_roundtrip_property(value):
    primes = generate_ntt_primes(4, 28, 64)
    basis = RNSBasis(primes)
    value %= basis.modulus
    assert basis.crt_reconstruct(basis.to_rns(value)) == value
