"""End-to-end bootstrapping tests (the paper's headline functionality)."""

import numpy as np
import pytest

from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.context import Context
from repro.ckks.encryption import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, KeySet
from repro.ckks.params import PARAMETER_SETS


@pytest.fixture(scope="module")
def bootstrap_setup():
    """Context, keys and bootstrapper at the toy-bootstrap parameter set."""
    params = PARAMETER_SETS["toy-bootstrap"]
    context = Context(params)
    generator = KeyGenerator(context, seed=2024)
    secret = generator.generate_secret()
    keys = KeySet(
        public_key=generator.generate_public(secret),
        relinearization_key=generator.generate_relinearization_key(secret),
        secret_key=secret,
    )
    evaluator = Evaluator(context, keys)
    bootstrapper = Bootstrapper(context, evaluator)
    for step in bootstrapper.required_rotations():
        keys.rotation_keys[step] = generator.generate_rotation_key(secret, step)
    keys.conjugation_key = generator.generate_conjugation_key(secret)
    return {
        "params": params,
        "context": context,
        "keys": keys,
        "evaluator": evaluator,
        "bootstrapper": bootstrapper,
        "encryptor": Encryptor(context, keys.public_key, seed=7),
        "decryptor": Decryptor(context, keys.secret_key),
    }


class TestBootstrapConfig:
    def test_range_bound(self):
        assert BootstrapConfig(double_angle_iterations=3).range_bound == 7

    def test_depth_estimate_positive(self, bootstrap_setup):
        boot = bootstrap_setup["bootstrapper"]
        assert 0 < boot.depth_required() <= bootstrap_setup["params"].mult_depth

    def test_dense_secret_rejected(self):
        params = PARAMETER_SETS["toy-bootstrap"].with_overrides(secret_hamming_weight=256)
        context = Context(params)
        keys = KeyGenerator(context, seed=1)
        secret = keys.generate_secret()
        key_set = KeySet(
            public_key=keys.generate_public(secret),
            relinearization_key=keys.generate_relinearization_key(secret),
            secret_key=secret,
        )
        with pytest.raises(ValueError):
            Bootstrapper(context, Evaluator(context, key_set))


class TestModRaise:
    def test_preserves_message(self, bootstrap_setup):
        encryptor, decryptor = bootstrap_setup["encryptor"], bootstrap_setup["decryptor"]
        evaluator, boot = bootstrap_setup["evaluator"], bootstrap_setup["bootstrapper"]
        message = np.array([0.25, -0.125, 0.0625, -0.03125])
        ct = evaluator.mod_reduce(encryptor.encrypt_values(message), 1)
        raised = boot.mod_raise(ct)
        assert raised.limb_count == len(bootstrap_setup["context"].moduli)
        # The raised ciphertext decrypts to m + q0*I; modulo-q0 reduction of
        # its coefficients recovers the message.
        plain = decryptor.decrypt(raised)
        q0 = bootstrap_setup["context"].moduli[0]
        coeffs = np.array(plain.poly.to_int_coefficients(), dtype=np.float64)
        centred = coeffs - q0 * np.round(coeffs / q0)
        decoded = bootstrap_setup["context"].encoder.decode(centred, ct.scale, 4)
        assert np.max(np.abs(decoded.real - message)) < 1e-3


class TestFullBootstrap:
    def test_refreshes_levels_and_preserves_message(self, bootstrap_setup):
        encryptor, decryptor = bootstrap_setup["encryptor"], bootstrap_setup["decryptor"]
        evaluator, boot = bootstrap_setup["evaluator"], bootstrap_setup["bootstrapper"]
        rng = np.random.default_rng(11)
        message = rng.uniform(-0.4, 0.4, 16)
        exhausted = evaluator.mod_reduce(encryptor.encrypt_values(message), 1)
        assert exhausted.level == 0
        refreshed = boot.bootstrap(exhausted)
        assert refreshed.level >= 3  # multiplicative budget restored
        decoded = decryptor.decrypt_values(refreshed, 16).real
        assert np.max(np.abs(decoded - message)) < 5e-2

    def test_computation_continues_after_bootstrap(self, bootstrap_setup):
        encryptor, decryptor = bootstrap_setup["encryptor"], bootstrap_setup["decryptor"]
        evaluator, boot = bootstrap_setup["evaluator"], bootstrap_setup["bootstrapper"]
        message = np.array([0.3, -0.2, 0.1, 0.25])
        exhausted = evaluator.mod_reduce(encryptor.encrypt_values(message), 1)
        refreshed = boot.bootstrap(exhausted)
        squared = evaluator.square(refreshed)
        assert squared.level == refreshed.level - 1
        decoded = decryptor.decrypt_values(squared, 4).real
        assert np.max(np.abs(decoded - message**2)) < 5e-2

    def test_precision_reported_in_bits(self, bootstrap_setup):
        from repro.ckks.noise import measured_precision_bits

        encryptor, decryptor = bootstrap_setup["encryptor"], bootstrap_setup["decryptor"]
        evaluator, boot = bootstrap_setup["evaluator"], bootstrap_setup["bootstrapper"]
        message = np.array([0.1, -0.3, 0.2, 0.05])
        refreshed = boot.bootstrap(
            evaluator.mod_reduce(encryptor.encrypt_values(message), 1)
        )
        decoded = decryptor.decrypt_values(refreshed, 4).real
        assert measured_precision_bits(message, decoded) > 4.0
