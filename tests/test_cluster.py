"""Cluster plane: topologies, shard plans, the planner and sharded serving.

The contracts under test are the multi-GPU tentpole's:

* topologies describe devices + links with descriptive errors;
* ``ShardPlan.apply`` is deterministic, member plans insert no transfers,
  limb plans all-gather exactly at base-conversion boundaries, and one
  device degenerates to the original trace;
* the planner prices both strategies from recorded traces and its
  crossover is monotone -- limb sharding never wins as the interconnect
  bandwidth tends to zero;
* serving across simulated devices stays **bit-identical** to the
  single-device sequential evaluator, whether drains are placed whole on
  home devices or member-sharded across the cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    NVLINK,
    PCIE_4_X16,
    ClusterTopology,
    InterconnectLink,
    LimbShardPlan,
    MemberShardPlan,
    ShardPlanner,
    member_partition,
    nvlink_box,
    pcie_box,
    single_device,
)
from repro.core.dispatch import get_dispatcher
from repro.gpu.kernel import TransferKernel
from repro.gpu.platforms import GPU_RTX_4090, GPU_V100
from repro.perf.trace_model import TraceCostModel
from repro.serve import BatchingPolicy, OpProgram

#: 1 + 2x^2: two levels deep, no rotation keys needed.
POLY_PROGRAM = OpProgram.polynomial([1.0, 0.0, 2.0])


def record_hmult_trace(session, rng, batch_size):
    """A real fused HMult+rescale trace at the given batch size."""
    rows = rng.uniform(-1, 1, (batch_size, 8))
    a = session.batch([session.encrypt(row) for row in rows])
    b = session.batch([session.encrypt(row) for row in rows])
    with session.trace() as trace:
        (a * b).rescale()
    return trace


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------


class TestInterconnectLink:
    def test_transfer_time_is_latency_plus_payload(self):
        link = InterconnectLink("test", bandwidth_gbps=100.0, latency_us=2.0)
        assert link.transfer_time(0.0) == 0.0
        assert link.transfer_time(1e9) == pytest.approx(2e-6 + 1e9 / 100e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectLink("bad", bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            InterconnectLink("bad", bandwidth_gbps=1.0, latency_us=-1.0)

    def test_scaled_bandwidth(self):
        half = NVLINK.scaled(0.5)
        assert half.bandwidth_gbps == pytest.approx(NVLINK.bandwidth_gbps / 2)
        assert half.latency_us == NVLINK.latency_us


class TestClusterTopology:
    def test_presets(self):
        box = nvlink_box(4)
        assert box.device_count == 4
        assert box.device(0) is GPU_V100
        assert box.link(0, 3) is NVLINK
        pcie = pcie_box(2)
        assert pcie.device(1) is GPU_RTX_4090
        assert pcie.link(1, 0) is PCIE_4_X16

    def test_single_device_needs_no_links(self):
        topo = single_device(GPU_RTX_4090)
        assert topo.device_count == 1
        assert topo.devices == (GPU_RTX_4090,)

    def test_device_index_out_of_range(self):
        with pytest.raises(IndexError, match="devices 0..1"):
            nvlink_box(2).device(2)

    def test_same_device_link_is_an_error(self):
        with pytest.raises(ValueError, match="no-op"):
            nvlink_box(2).link(1, 1)

    def test_missing_link_names_the_topology(self):
        topo = ClusterTopology([GPU_V100, GPU_V100], name="bare-pair")
        with pytest.raises(KeyError, match="bare-pair"):
            topo.link(0, 1)

    def test_explicit_links_are_order_insensitive(self):
        slow = InterconnectLink("slow", 1.0)
        topo = ClusterTopology(
            [GPU_V100, GPU_V100, GPU_V100],
            default_link=NVLINK,
            links={(2, 0): slow},
        )
        assert topo.link(0, 2) is slow
        assert topo.link(2, 0) is slow
        assert topo.link(0, 1) is NVLINK

    def test_with_link_rebinds_every_pair(self):
        slow = NVLINK.scaled(0.01)
        topo = nvlink_box(4).with_link(slow)
        assert topo.link(0, 1) is slow
        assert topo.link(2, 3) is slow

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology([])


# ----------------------------------------------------------------------
# shard plans
# ----------------------------------------------------------------------


class TestMemberPartition:
    def test_near_equal_and_exhaustive(self):
        assert member_partition(8, 4) == [2, 2, 2, 2]
        assert member_partition(8, 3) == [3, 3, 2]
        assert member_partition(1, 4) == [1, 0, 0, 0]
        assert sum(member_partition(17, 5)) == 17

    def test_errors(self):
        with pytest.raises(ValueError):
            member_partition(-1, 2)
        with pytest.raises(ValueError):
            member_partition(4, 0)


def _event_signature(trace):
    return [
        (e.kernel.name, e.kernel.device, e.kernel.bytes_read,
         e.kernel.bytes_written, e.kernel.int_ops, e.scope, e.deps)
        for e in trace
    ]


class TestShardPlans:
    def test_apply_is_deterministic(self, session, rng):
        trace = record_hmult_trace(session, rng, 4)
        for plan in (MemberShardPlan(nvlink_box(4), 4), LimbShardPlan(nvlink_box(4))):
            assert _event_signature(plan.apply(trace)) == \
                _event_signature(plan.apply(trace))

    def test_member_plan_has_no_transfers_and_conserves_volume(self, session, rng):
        trace = record_hmult_trace(session, rng, 4)
        sharded = MemberShardPlan(nvlink_box(4), 4).apply(trace)
        assert not any(isinstance(k, TransferKernel) for k in sharded.kernels())
        assert len(sharded) == 4 * len(trace)
        assert sharded.bytes_moved == pytest.approx(trace.bytes_moved)
        assert sharded.int_ops == pytest.approx(trace.int_ops)
        assert {k.device for k in sharded.kernels()} == {0, 1, 2, 3}

    def test_member_plan_skips_empty_devices(self, session, rng):
        trace = record_hmult_trace(session, rng, 2)
        sharded = MemberShardPlan(nvlink_box(4), 2).apply(trace)
        assert {k.device for k in sharded.kernels()} == {0, 1}

    def test_limb_plan_gathers_at_base_conversion_boundaries(self, session, rng):
        trace = record_hmult_trace(session, rng, 1)
        boundaries = sum(1 for k in trace.kernels() if "->" in k.name)
        assert boundaries > 0  # ModUp/ModDown are in the trace
        count = 4
        sharded = LimbShardPlan(nvlink_box(count)).apply(trace)
        transfers = [
            k for k in sharded.kernels() if isinstance(k, TransferKernel)
        ]
        assert len(transfers) == boundaries * count * (count - 1)
        assert all(not k.is_self_transfer for k in transfers)
        # Transfers carry the per-device input slice.
        compute = [k for k in sharded.kernels() if not isinstance(k, TransferKernel)]
        assert len(compute) == count * len(trace)

    def test_limb_plan_transfer_edges_gate_the_conversion(self, session, rng):
        trace = record_hmult_trace(session, rng, 1)
        sharded = LimbShardPlan(nvlink_box(2)).apply(trace)
        kernels = sharded.kernels()
        for event in sharded:
            if isinstance(event.kernel, TransferKernel):
                continue
            if "->" not in event.kernel.name:
                continue
            incoming = [
                d for d in event.deps if isinstance(kernels[d], TransferKernel)
            ]
            # each conversion copy waits on the D-1 transfers into its device
            assert len(incoming) == 1
            assert kernels[incoming[0]].dst_device == event.kernel.device

    def test_one_device_degenerates_to_the_original_trace(self, session, rng):
        trace = record_hmult_trace(session, rng, 2)
        topo = single_device(GPU_RTX_4090)
        for plan in (MemberShardPlan(topo, 2), LimbShardPlan(topo)):
            sharded = plan.apply(trace)
            assert len(sharded) == len(trace)
            assert sharded.bytes_moved == pytest.approx(trace.bytes_moved)
            assert sharded.int_ops == pytest.approx(trace.int_ops)
            assert sharded.dependencies() == trace.dependencies()

    def test_sharded_trace_prices_lower_than_single_device(self, session, rng):
        # The whole point: a member-sharded B=8 trace finishes earlier on
        # 4 modeled devices than the same trace on one.
        trace = record_hmult_trace(session, rng, 8)
        topo = pcie_box(4)
        single = TraceCostModel(GPU_RTX_4090, streams=1)
        clustered = TraceCostModel(GPU_RTX_4090, streams=1, topology=topo)
        sharded = MemberShardPlan(topo, 8).apply(trace)
        assert clustered.price(sharded).makespan < single.price(trace).makespan

    def test_pricing_transfers_without_topology_is_an_error(self, session, rng):
        trace = record_hmult_trace(session, rng, 1)
        sharded = LimbShardPlan(nvlink_box(2)).apply(trace)
        with pytest.raises(ValueError, match="topology"):
            TraceCostModel(GPU_V100, streams=1).price(sharded)


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------


class TestShardPlanner:
    def test_compare_prices_both_strategies(self, session, rng):
        trace = record_hmult_trace(session, rng, 4)
        comparison = ShardPlanner(nvlink_box(4)).compare(trace, 4)
        assert comparison.member_makespan > 0.0
        assert comparison.limb_makespan > 0.0
        assert comparison.winner in ("member", "limb")
        assert comparison.advantage >= 1.0

    def test_crossover_table_is_per_batch(self, session, rng):
        traces = {b: record_hmult_trace(session, rng, b) for b in (1, 2, 4)}
        result = ShardPlanner(nvlink_box(4)).crossover(traces)
        assert [c.batch_size for c in result["comparisons"]] == [1, 2, 4]
        crossover = result["crossover_batch"]
        assert crossover is None or crossover in (1, 2, 4)

    def test_limb_never_wins_as_bandwidth_vanishes(self, session, rng):
        # Monotonicity: starving the interconnect can only hurt limb
        # sharding, so member-shard wins everywhere in the limit.
        traces = {b: record_hmult_trace(session, rng, b) for b in (1, 2, 4)}
        starved = nvlink_box(4).with_link(NVLINK.scaled(1e-9))
        result = ShardPlanner(starved).crossover(traces)
        assert all(c.winner == "member" for c in result["comparisons"])
        assert result["crossover_batch"] == 1

    def test_limb_makespan_monotone_in_bandwidth(self, session, rng):
        trace = record_hmult_trace(session, rng, 2)
        makespans = [
            ShardPlanner(nvlink_box(4).with_link(NVLINK.scaled(f)))
            .compare(trace, 2).limb_makespan
            for f in (1.0, 1e-2, 1e-4)
        ]
        assert makespans[0] <= makespans[1] <= makespans[2]
        # Member sharding never touches the link, so it is unaffected.
        members = {
            ShardPlanner(nvlink_box(4).with_link(NVLINK.scaled(f)))
            .compare(trace, 2).member_makespan
            for f in (1.0, 1e-4)
        }
        assert len(members) == 1

    def test_place_buckets_round_robin(self):
        planner = ShardPlanner(nvlink_box(4))
        buckets = ["a", "b", "c", "d", "e"]
        assert planner.place_buckets(buckets) == {
            "a": 0, "b": 1, "c": 2, "d": 3, "e": 0,
        }


# ----------------------------------------------------------------------
# sharded serving (bit-identity and per-device metrics)
# ----------------------------------------------------------------------


class TestClusterServing:
    def _bitwise_equal(self, a, b):
        return (
            np.array_equal(a.handle.c0.stack.data, b.handle.c0.stack.data)
            and np.array_equal(a.handle.c1.stack.data, b.handle.c1.stack.data)
        )

    @pytest.mark.parametrize("device_count", [2, 4])
    def test_member_sharded_drain_is_bit_identical(self, session, rng,
                                                   device_count):
        # B=8 drain sharded across D devices == the sequential evaluator.
        vectors = [session.encrypt(rng.uniform(-1, 1, 8)) for _ in range(8)]
        expected = [POLY_PROGRAM(v) for v in vectors]
        server = session.server(
            BatchingPolicy(max_batch_size=8, max_wait=0.0),
            cluster=pcie_box(device_count),
            shard_drains=True,
        )
        requests = [server.submit(POLY_PROGRAM, v) for v in vectors]
        server.flush()
        for request, want in zip(requests, expected):
            assert self._bitwise_equal(request.result(), want)

    def test_placed_buckets_record_on_their_home_device(self, session, rng):
        cluster = pcie_box(2)
        server = session.server(
            BatchingPolicy(max_batch_size=4, max_wait=0.0),
            trace_costs=TraceCostModel(GPU_RTX_4090),
            cluster=cluster,
        )
        second = OpProgram.polynomial([0.5, 1.0])
        for _ in range(4):
            server.submit(POLY_PROGRAM, session.encrypt(rng.uniform(-1, 1, 8)))
            server.submit(second, session.encrypt(rng.uniform(-1, 1, 8)))
        server.flush()
        metrics = server.metrics
        assert set(metrics.device_seconds) == {0, 1}
        assert metrics.modeled_makespan == pytest.approx(
            max(metrics.device_seconds.values())
        )
        assert metrics.modeled_makespan < metrics.modeled_seconds
        utilization = metrics.device_utilization()
        assert max(utilization.values()) == pytest.approx(1.0)
        # Placement throughput beats serialising both buckets on one GPU.
        assert metrics.modeled_throughput() > \
            metrics.completed / metrics.modeled_seconds

    def test_sharded_drain_charges_every_participating_device(self, session, rng):
        server = session.server(
            BatchingPolicy(max_batch_size=8, max_wait=0.0),
            trace_costs=TraceCostModel(GPU_RTX_4090),
            cluster=pcie_box(4),
            shard_drains=True,
        )
        for _ in range(8):
            server.submit(POLY_PROGRAM, session.encrypt(rng.uniform(-1, 1, 8)))
        server.flush()
        metrics = server.metrics
        assert set(metrics.device_seconds) == {0, 1, 2, 3}
        utilization = metrics.device_utilization()
        assert all(u == pytest.approx(1.0) for u in utilization.values())

    def test_single_device_serving_metrics_unchanged(self, session, rng):
        # Without a cluster the metrics keep their PR 5 semantics exactly.
        server = session.server(
            BatchingPolicy(max_batch_size=4, max_wait=0.0),
            trace_costs=TraceCostModel(GPU_RTX_4090),
        )
        for _ in range(4):
            server.submit(POLY_PROGRAM, session.encrypt(rng.uniform(-1, 1, 8)))
        server.flush()
        metrics = server.metrics
        assert metrics.device_seconds == {0: pytest.approx(metrics.modeled_seconds)}
        assert metrics.modeled_throughput() == pytest.approx(
            metrics.completed / metrics.modeled_seconds
        )

    def test_dispatcher_device_tags_require_a_trace(self):
        dispatcher = get_dispatcher()
        # No active trace: on_device is the shared no-op context.
        with dispatcher.on_device(3):
            pass
        with pytest.raises(ValueError):
            with dispatcher.record():
                with dispatcher.on_device(-1):
                    pass
