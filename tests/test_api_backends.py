"""Backend-seam tests: functional vs cost-model parity.

The acceptance property of the backend seam: the same ``CipherVector``
program object runs unmodified on both
:class:`~repro.api.backend.FunctionalBackend` and
:class:`~repro.api.backend.CostModelBackend`, with identical level/scale
trajectories, and the cost backend additionally accumulates a kernel
ledger the GPU models can execute.
"""

import numpy as np
import pytest

from repro.api.backend import CostLedger, CostModelBackend, FunctionalBackend, as_backend
from repro.api.vector import CipherVector
from repro.apps.logistic_regression import EncryptedLogisticRegression
from repro.apps.stats import EncryptedStatistics
from repro.ckks.params import PARAMETER_SETS
from tests.conftest import assert_close


def polynomial_program(x, y, trace):
    """A small polynomial-evaluation program, backend-agnostic.

    ``trace`` collects every intermediate handle so the test can compare
    the full level/scale trajectory, not just the final state.
    """
    product = x * y
    trace.append(product)
    doubled = 2.0 * product
    trace.append(doubled)
    shifted = doubled + 1.0
    trace.append(shifted)
    squared = shifted ** 2
    trace.append(squared)
    rotated = squared << 1
    trace.append(rotated)
    mixed = rotated + x.at_level(rotated.level)
    trace.append(mixed)
    masked = mixed * np.linspace(0.0, 1.0, x.slots)
    trace.append(masked)
    return masked


class TestFunctionalCostParity:
    def test_identical_level_scale_trajectories(self, session):
        """The acceptance test: one program, two backends, same trajectory."""
        functional = session.backend
        costmodel = session.cost_backend()

        rng = np.random.default_rng(42)
        a = rng.uniform(-0.5, 0.5, 8)
        b = rng.uniform(-0.5, 0.5, 8)

        fn_trace, cm_trace = [], []
        fn_result = polynomial_program(session.encrypt(a), session.encrypt(b), fn_trace)
        cm_result = polynomial_program(
            CipherVector(costmodel, costmodel.encrypt(a)),
            CipherVector(costmodel, costmodel.encrypt(b)),
            cm_trace,
        )

        assert len(fn_trace) == len(cm_trace)
        for step, (fn, cm) in enumerate(zip(fn_trace, cm_trace)):
            assert fn.level == cm.level, f"level diverged at step {step}"
            assert fn.scale == pytest.approx(cm.scale, rel=1e-12), \
                f"scale diverged at step {step}"
        assert fn_result.level == cm_result.level
        assert fn_result.scale == pytest.approx(cm_result.scale, rel=1e-12)

        # The cost side really accumulated kernels while the functional
        # side computed; the functional ledger does not exist at all.
        assert costmodel.ledger.kernel_count > 0
        assert costmodel.ledger.bytes_moved > 0
        assert isinstance(functional, FunctionalBackend)

    def test_functional_result_is_correct(self, session, rng):
        a = rng.uniform(-0.5, 0.5, 8)
        b = rng.uniform(-0.5, 0.5, 8)
        result = polynomial_program(session.encrypt(a), session.encrypt(b), [])
        mask = np.linspace(0.0, 1.0, session.slots)
        expected = (np.roll((2 * a * b + 1) ** 2, -1) + a) * mask[:8]
        assert_close(session.decrypt(result, 8).real, expected, 2e-2)

    def test_error_paths_match(self, session):
        """Both backends reject the same invalid programs the same way."""
        functional = session.backend
        costmodel = session.cost_backend()
        fn_ct = session.encrypt([0.5]).at_level(0)
        cm_ct = CipherVector(costmodel, costmodel.encrypt([0.5], level=0))

        for vec in (fn_ct, cm_ct):
            with pytest.raises(ValueError, match="level-0"):
                vec * 2.0
            with pytest.raises(ValueError, match="rescale a level-0"):
                vec.rescale()
            with pytest.raises(ValueError, match="higher level"):
                vec.at_level(3)

    def test_missing_rotation_keys_match(self, session):
        costmodel = session.cost_backend()
        cm_ct = CipherVector(costmodel, costmodel.encrypt([0.5]))
        with pytest.raises(KeyError, match="available rotation steps"):
            cm_ct << 7
        # without key checking the same rotation is allowed
        permissive = session.cost_backend(check_keys=False)
        rotated = CipherVector(permissive, permissive.encrypt([0.5])) << 7
        assert rotated.level == session.max_level


class TestCostLedger:
    def test_operation_counts_and_totals(self, session):
        costmodel = session.cost_backend()
        ct = CipherVector(costmodel, costmodel.encrypt())
        other = CipherVector(costmodel, costmodel.encrypt())
        _ = 2.0 * (ct * other) + 1.0
        counts = costmodel.ledger.operation_counts()
        assert counts["HMult"] == 1
        assert counts["ScalarMult"] == 1
        assert counts["ScalarAdd"] == 1
        assert counts["Rescale"] == 2  # HMult rescale + ScalarMult rescale
        total = costmodel.ledger.as_cost("program")
        assert total.bytes_moved == pytest.approx(costmodel.ledger.bytes_moved)
        assert total.int_ops == pytest.approx(costmodel.ledger.int_ops)
        assert costmodel.ledger.kernel_count == total.kernel_count

    def test_clear(self, session):
        costmodel = session.cost_backend()
        ct = CipherVector(costmodel, costmodel.encrypt())
        _ = ct + 1.0
        assert len(costmodel.ledger) == 1
        costmodel.ledger.clear()
        assert len(costmodel.ledger) == 0
        assert costmodel.ledger.bytes_moved == 0

    def test_hoisted_rotations_recorded_once(self, session):
        costmodel = session.cost_backend()
        ct = CipherVector(costmodel, costmodel.encrypt())
        rotated = ct.rotate_many([1, 2, 4])
        assert set(rotated) == {1, 2, 4}
        counts = costmodel.ledger.operation_counts()
        assert counts == {"HoistedRotate x3": 1}


class TestPaperScaleCostModel:
    """At paper-scale parameters only the ideal-ladder mode is feasible."""

    def test_ideal_ladder_tracks_levels(self):
        params = PARAMETER_SETS["paper-default"]
        backend = CostModelBackend(params)
        ct = CipherVector(backend, backend.encrypt())
        result = (ct * ct) + 1.0
        assert result.level == params.mult_depth - 1
        assert result.scale == pytest.approx(params.scale)

    def test_gpu_model_executes_ledger(self):
        from repro.gpu.platforms import GPU_RTX_4090
        from repro.perf.fideslib_model import FIDESlibModel

        params = PARAMETER_SETS["paper-default"]
        model = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
        backend = CostModelBackend.for_model(model)
        ct = CipherVector(backend, backend.encrypt())
        _ = 2.0 * (ct * ct) + 1.0
        elapsed = model.execute(backend.ledger.as_cost()).total_time
        assert elapsed > 0
        # A single HMult at full level dominates; sanity-check magnitude.
        hmult_alone = model.time_operation("HMult")
        assert elapsed >= hmult_alone

    def test_apps_run_symbolically(self):
        """Whole applications run unmodified on the cost backend."""
        params = PARAMETER_SETS["paper-lr"]
        backend = CostModelBackend(params)

        stats = EncryptedStatistics(backend)
        sample = CipherVector(backend, backend.encrypt())
        variance = stats.variance(sample, 8)
        assert variance.level < params.mult_depth

        lr_backend = CostModelBackend(params)
        model = EncryptedLogisticRegression(backend=lr_backend, feature_count=4)
        rng = np.random.default_rng(0)
        columns, labels = model.encrypt_batch(
            rng.uniform(-1, 1, (8, 4)), rng.integers(0, 2, 8).astype(float)
        )
        model.train_batch(columns, labels, batch_size=8)
        counts = lr_backend.ledger.operation_counts()
        assert counts.get("HMult", 0) >= 5
        assert counts.get("HRotate", 0) >= 3


class TestBackendProtocol:
    def test_as_backend_accepts_sessions_and_backends(self, session):
        assert as_backend(session) is session.backend
        assert as_backend(session.backend) is session.backend

    def test_as_backend_rejects_other_objects(self):
        with pytest.raises(TypeError):
            as_backend(object())

    def test_functional_backend_without_encryptor(self, evaluator):
        backend = FunctionalBackend(evaluator)
        with pytest.raises(RuntimeError, match="no encryptor"):
            backend.encrypt([1.0])

    def test_describe(self, session):
        fn = session.backend.describe()
        cm = session.cost_backend().describe()
        assert fn["backend"] == "functional"
        assert cm["backend"] == "costmodel"
        assert cm["mode"] == "context-exact"
        assert CostModelBackend(session.params).describe()["mode"] == "ideal-ladder"
