"""Integration tests of every server-side primitive against the client.

This mirrors the paper's integration-test methodology: each operation is
executed by the (GPU-style) evaluator and the decrypted result is compared
with the plaintext-computed reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import assert_close


@pytest.fixture(scope="module")
def messages(rng):
    a = rng.uniform(-1, 1, 16)
    b = rng.uniform(-1, 1, 16)
    return a, b


@pytest.fixture(scope="module")
def ciphertexts(encryptor, messages):
    a, b = messages
    return encryptor.encrypt_values(a), encryptor.encrypt_values(b)


class TestAdditions:
    def test_hadd(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.add(*ciphertexts)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] + messages[1])

    def test_hsub(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.sub(*ciphertexts)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] - messages[1])

    def test_negate(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.negate(ciphertexts[0])
        assert_close(decryptor.decrypt_values(ct, 16).real, -messages[0])

    def test_ptadd(self, evaluator, decryptor, encryptor, ciphertexts, messages, context):
        from repro.ckks.encryption import encode
        pt = encode(context, messages[1], scale=ciphertexts[0].scale)
        ct = evaluator.add_plain(ciphertexts[0], pt)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] + messages[1])

    def test_ptsub(self, evaluator, decryptor, ciphertexts, messages, context):
        from repro.ckks.encryption import encode
        pt = encode(context, messages[1], scale=ciphertexts[0].scale)
        ct = evaluator.sub_plain(ciphertexts[0], pt)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] - messages[1])

    def test_scalar_add(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.add_scalar(ciphertexts[0], 0.375)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] + 0.375)

    def test_scalar_sub(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.sub_scalar(ciphertexts[0], 0.25)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] - 0.25)

    def test_addition_is_commutative(self, evaluator, decryptor, ciphertexts):
        lhs = decryptor.decrypt_values(evaluator.add(*ciphertexts), 16)
        rhs = decryptor.decrypt_values(evaluator.add(ciphertexts[1], ciphertexts[0]), 16)
        assert_close(lhs, rhs, 1e-9)

    def test_add_mismatched_levels_adjusts(self, evaluator, decryptor, ciphertexts, messages):
        deeper = evaluator.multiply(ciphertexts[0], ciphertexts[1])
        mixed = evaluator.add(deeper, ciphertexts[0])
        expected = messages[0] * messages[1] + messages[0]
        assert_close(decryptor.decrypt_values(mixed, 16).real, expected, 2e-3)


class TestMultiplications:
    def test_hmult(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.multiply(*ciphertexts)
        assert ct.level == ciphertexts[0].level - 1
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] * messages[1])

    def test_hsquare(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.square(ciphertexts[0])
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] ** 2)

    def test_hsquare_matches_hmult(self, evaluator, decryptor, ciphertexts):
        square = decryptor.decrypt_values(evaluator.square(ciphertexts[0]), 16)
        mult = decryptor.decrypt_values(
            evaluator.multiply(ciphertexts[0], ciphertexts[0]), 16
        )
        assert_close(square, mult, 1e-4)

    def test_ptmult(self, evaluator, decryptor, ciphertexts, messages):
        pt = evaluator.encode_for(ciphertexts[0], messages[1])
        ct = evaluator.multiply_plain(ciphertexts[0], pt)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0] * messages[1])

    def test_scalar_mult(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.multiply_scalar(ciphertexts[0], -0.75)
        assert_close(decryptor.decrypt_values(ct, 16).real, -0.75 * messages[0])

    def test_scalar_mult_integer(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.multiply_scalar_int(ciphertexts[0], 3)
        assert_close(decryptor.decrypt_values(ct, 16).real, 3 * messages[0])

    def test_multiply_by_i(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.multiply_by_i(ciphertexts[0])
        assert_close(decryptor.decrypt_values(ct, 16), 1j * messages[0])

    def test_multiply_by_monomial_power_n(self, evaluator, decryptor, ciphertexts, messages, context):
        # X^N = -1, so multiplying by the monomial of degree N negates.
        ct = evaluator.multiply_by_monomial(ciphertexts[0], context.ring_degree)
        assert_close(decryptor.decrypt_values(ct, 16), -messages[0].astype(complex))

    def test_product_scale_follows_ladder(self, evaluator, context, ciphertexts):
        product = evaluator.multiply(*ciphertexts)
        assert product.scale == pytest.approx(context.scale_at(product.level), rel=1e-9)

    def test_distributivity(self, evaluator, decryptor, ciphertexts, messages):
        a_ct, b_ct = ciphertexts
        a, b = messages
        lhs = evaluator.multiply(a_ct, evaluator.add(a_ct, b_ct))
        rhs = evaluator.add(evaluator.square(a_ct), evaluator.multiply(a_ct, b_ct))
        assert_close(
            decryptor.decrypt_values(lhs, 16), decryptor.decrypt_values(rhs, 16), 1e-3
        )

    def test_depth_chain_to_bottom(self, evaluator, decryptor, encryptor, context, rng):
        values = rng.uniform(-0.9, 0.9, 4)
        ct = encryptor.encrypt_values(values)
        other = encryptor.encrypt_values([0.9, 0.8, -0.7, 0.6])
        expected = np.array(values, dtype=float)
        for _ in range(context.max_level):
            ct = evaluator.multiply(ct, other)
            expected = expected * np.array([0.9, 0.8, -0.7, 0.6])
        assert ct.level == 0
        assert_close(decryptor.decrypt_values(ct, 4).real, expected, 5e-3)


class TestRescaleAndLevels:
    def test_rescale_reduces_level_and_scale(self, evaluator, ciphertexts):
        raw = evaluator.multiply(*ciphertexts, rescale=False)
        rescaled = evaluator.rescale(raw)
        assert rescaled.level == raw.level - 1
        assert rescaled.scale < raw.scale

    def test_rescale_level_zero_rejected(self, evaluator, ciphertexts):
        bottom = evaluator.mod_reduce(ciphertexts[0], 1)
        with pytest.raises(ValueError):
            evaluator.rescale(bottom)

    def test_mod_reduce_preserves_message(self, evaluator, decryptor, ciphertexts, messages):
        reduced = evaluator.mod_reduce(ciphertexts[0], 3)
        assert reduced.limb_count == 3
        assert_close(decryptor.decrypt_values(reduced, 16).real, messages[0])

    def test_adjust_to_lower_level(self, evaluator, decryptor, context, ciphertexts, messages):
        adjusted = evaluator.adjust(ciphertexts[0], 2)
        assert adjusted.level == 2
        assert adjusted.scale == pytest.approx(context.scale_at(2), rel=1e-9)
        assert_close(decryptor.decrypt_values(adjusted, 16).real, messages[0], 1e-3)

    def test_adjust_to_higher_level_rejected(self, evaluator, ciphertexts):
        low = evaluator.mod_reduce(ciphertexts[0], 2)
        with pytest.raises(ValueError):
            evaluator.adjust(low, 5)

    def test_dot_product_plain_fusion(self, evaluator, decryptor, encryptor, rng):
        vectors = [rng.uniform(-1, 1, 8) for _ in range(3)]
        weights = [rng.uniform(-1, 1, 8) for _ in range(3)]
        cts = [encryptor.encrypt_values(v) for v in vectors]
        pts = [evaluator.encode_for(cts[0], w) for w in weights]
        result = evaluator.dot_product_plain(cts, pts)
        expected = sum(v * w for v, w in zip(vectors, weights))
        assert_close(decryptor.decrypt_values(result, 8).real, expected)

    def test_dot_product_plain_empty_rejected(self, evaluator):
        with pytest.raises(ValueError, match="at least one ciphertext/plaintext pair"):
            evaluator.dot_product_plain([], [])

    def test_dot_product_plain_length_mismatch_reported(self, evaluator, encryptor, rng):
        ct = encryptor.encrypt_values(rng.uniform(-1, 1, 4))
        pts = [evaluator.encode_for(ct, rng.uniform(-1, 1, 4)) for _ in range(2)]
        with pytest.raises(ValueError, match="1 ciphertexts and 2 plaintexts"):
            evaluator.dot_product_plain([ct], pts)

    def test_multiply_scalar_level_zero_with_rescale_rejected(self, evaluator, ciphertexts):
        bottom = evaluator.mod_reduce(ciphertexts[0], 1)
        with pytest.raises(ValueError, match="level-0 ciphertext"):
            evaluator.multiply_scalar(bottom, 2.0)

    def test_multiply_scalar_level_zero_without_rescale_allowed(
            self, evaluator, context, ciphertexts):
        # rescale=False stays legal at level 0 and reports the true scale
        # product (message recovery would need q_0 >> Δ², so no decrypt
        # check at toy parameters -- the metadata is the contract here).
        bottom = evaluator.adjust(ciphertexts[0], 0)
        scaled = evaluator.multiply_scalar(bottom, 2.0, rescale=False)
        assert scaled.level == 0
        assert scaled.scale == pytest.approx(bottom.scale * context.scale, rel=1e-9)

    def test_multiply_scalar_int_level_zero_preserves_scale(
            self, evaluator, decryptor, context, ciphertexts, messages):
        bottom = evaluator.adjust(ciphertexts[0], 0)
        doubled = evaluator.multiply_scalar_int(bottom, 2)
        assert doubled.level == 0
        assert doubled.scale == bottom.scale
        decoded = decryptor.decrypt_values(doubled, 16).real
        assert np.max(np.abs(decoded - 2.0 * messages[0])) < 1e-2


class TestRotations:
    @pytest.mark.parametrize("steps", [1, 2, 3, 4, 8])
    def test_rotation_matches_numpy_roll(self, evaluator, decryptor, ciphertexts, messages, steps):
        ct = evaluator.rotate(ciphertexts[0], steps)
        assert_close(decryptor.decrypt_values(ct, 16).real, np.roll(messages[0], -steps))

    def test_negative_rotation(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.rotate(ciphertexts[0], -1)
        assert_close(decryptor.decrypt_values(ct, 16).real, np.roll(messages[0], 1))

    def test_rotation_by_zero_is_identity(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.rotate(ciphertexts[0], 0)
        assert_close(decryptor.decrypt_values(ct, 16).real, messages[0])

    def test_missing_rotation_key_raises(self, evaluator, ciphertexts):
        with pytest.raises(KeyError):
            evaluator.rotate(ciphertexts[0], 7)

    def test_conjugate(self, evaluator, decryptor, encryptor, rng):
        values = rng.uniform(-1, 1, 8) + 1j * rng.uniform(-1, 1, 8)
        ct = evaluator.conjugate(encryptor.encrypt_values(values))
        assert_close(decryptor.decrypt_values(ct, 8), np.conj(values))

    def test_rotation_composition(self, evaluator, decryptor, ciphertexts, messages):
        ct = evaluator.rotate(evaluator.rotate(ciphertexts[0], 1), 2)
        assert_close(decryptor.decrypt_values(ct, 16).real, np.roll(messages[0], -3))

    def test_hoisted_matches_individual(self, evaluator, decryptor, ciphertexts):
        hoisted = evaluator.hoisted_rotations(ciphertexts[0], [1, 2, 4])
        for steps, rotated in hoisted.items():
            individual = evaluator.rotate(ciphertexts[0], steps)
            assert_close(
                decryptor.decrypt_values(rotated, 16),
                decryptor.decrypt_values(individual, 16),
                1e-4,
            )

    def test_rotation_after_multiplication(self, evaluator, decryptor, ciphertexts, messages):
        product = evaluator.multiply(*ciphertexts)
        rotated = evaluator.rotate(product, 2)
        assert_close(
            decryptor.decrypt_values(rotated, 16).real,
            np.roll(messages[0] * messages[1], -2),
            1e-3,
        )


@given(
    values=st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=4, max_size=4),
    scalar=st.floats(min_value=-2, max_value=2, allow_nan=False),
)
@settings(max_examples=10, deadline=None)
def test_scalar_operations_property(evaluator, encryptor, decryptor, values, scalar):
    ct = encryptor.encrypt_values(values)
    combined = evaluator.add_scalar(evaluator.multiply_scalar(ct, scalar), scalar)
    expected = np.asarray(values) * scalar + scalar
    got = decryptor.decrypt_values(combined, 4).real
    assert np.max(np.abs(got - expected)) < 2e-3
