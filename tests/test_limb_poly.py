"""Tests for Limb / RNSPoly containers, automorphisms and the memory pool."""

import numpy as np
import pytest

from repro.core import modmath
from repro.core.automorphism import (
    apply_coeff_automorphism,
    conjugation_exponent,
    coeff_automorphism_map,
    rotation_to_exponent,
)
from repro.core.limb import Limb, LimbFormat, VectorGPU
from repro.core.memory import MemoryPool, OutOfDeviceMemory
from repro.core.primes import generate_ntt_primes
from repro.core.rns_poly import RNSPoly

N = 64
PRIMES = generate_ntt_primes(3, 28, N)


def random_poly(seed=0, fmt=LimbFormat.COEFFICIENT):
    rng = np.random.default_rng(seed)
    coeffs = [int(v) for v in rng.integers(-50, 50, N)]
    poly = RNSPoly.from_int_coefficients(N, PRIMES, coeffs, fmt=fmt)
    return poly, coeffs


class TestMemoryPool:
    def test_allocation_accounting(self):
        pool = MemoryPool()
        handle = pool.allocate(1000, tag="test")
        assert pool.bytes_in_use == 1024  # rounded to granularity
        pool.free(handle)
        assert pool.bytes_in_use == 0
        assert pool.allocation_count == 1 and pool.free_count == 1

    def test_peak_tracking(self):
        pool = MemoryPool()
        handles = [pool.allocate(4096) for _ in range(4)]
        assert pool.peak_bytes == 4 * 4096
        for handle in handles:
            pool.free(handle)
        assert pool.peak_bytes == 4 * 4096

    def test_capacity_enforced(self):
        pool = MemoryPool(capacity_bytes=2048)
        pool.allocate(1024)
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate(2048)

    def test_double_free_rejected(self):
        pool = MemoryPool()
        handle = pool.allocate(16)
        pool.free(handle)
        with pytest.raises(KeyError):
            pool.free(handle)

    def test_vector_gpu_raii(self):
        pool = MemoryPool()
        vector = VectorGPU(128, pool=pool)
        assert vector.is_live and pool.bytes_in_use == 1024
        vector.free()
        assert not vector.is_live and pool.bytes_in_use == 0

    def test_unmanaged_vector_does_not_allocate(self):
        pool = MemoryPool()
        vector = VectorGPU(128, pool=pool, managed=False)
        assert pool.bytes_in_use == 0
        vector.free()  # no-op


class TestLimb:
    def test_add_sub_roundtrip(self):
        q = PRIMES[0]
        rng = np.random.default_rng(0)
        a = Limb(q, rng.integers(0, q, N).astype(object))
        b = Limb(q, rng.integers(0, q, N).astype(object))
        assert [int(x) for x in a.add(b).sub(b).data] == [int(x) for x in a.data]

    def test_multiply_requires_eval_format(self):
        q = PRIMES[0]
        a = Limb(q, modmath.zeros(N, q))
        with pytest.raises(ValueError):
            a.multiply(a)

    def test_format_conversion_roundtrip(self):
        q = PRIMES[0]
        rng = np.random.default_rng(1)
        limb = Limb(q, rng.integers(0, q, N).astype(object))
        back = limb.to_evaluation().to_coefficient()
        assert [int(x) for x in back.data] == [int(x) for x in limb.data]

    def test_add_scalar_eval_vs_coeff_consistent(self):
        q = PRIMES[0]
        rng = np.random.default_rng(2)
        limb = Limb(q, rng.integers(0, q, N).astype(object))
        via_coeff = limb.add_scalar(17).to_evaluation()
        via_eval = limb.to_evaluation().add_scalar(17)
        assert [int(x) for x in via_coeff.data] == [int(x) for x in via_eval.data]

    def test_incompatible_moduli_rejected(self):
        a = Limb(PRIMES[0], modmath.zeros(N, PRIMES[0]))
        b = Limb(PRIMES[1], modmath.zeros(N, PRIMES[1]))
        with pytest.raises(ValueError):
            a.add(b)


class TestAutomorphism:
    def test_map_requires_odd_exponent(self):
        with pytest.raises(ValueError):
            coeff_automorphism_map(N, 2)

    def test_rotation_exponent_is_power_of_five(self):
        assert rotation_to_exponent(N, 1) == 5
        assert rotation_to_exponent(N, 2) == 25 % (2 * N)

    def test_conjugation_exponent(self):
        assert conjugation_exponent(N) == 2 * N - 1

    def test_apply_matches_polynomial_substitution(self):
        q = PRIMES[0]
        rng = np.random.default_rng(3)
        coeffs = [int(v) for v in rng.integers(0, q, N)]
        k = 5
        transformed = apply_coeff_automorphism(
            modmath.as_residue_array(np.array(coeffs, dtype=object), q), N, k, q
        )
        expected = [0] * N
        for j, c in enumerate(coeffs):
            idx = (j * k) % (2 * N)
            if idx >= N:
                expected[idx - N] = (expected[idx - N] - c) % q
            else:
                expected[idx] = (expected[idx] + c) % q
        assert [int(x) for x in transformed] == expected

    def test_inverse_automorphism_restores(self):
        poly, _ = random_poly(4)
        k = rotation_to_exponent(N, 3)
        k_inv = pow(k, -1, 2 * N)
        back = poly.automorphism(k).automorphism(k_inv)
        assert back.to_int_coefficients() == poly.to_int_coefficients()


class TestRNSPoly:
    def test_roundtrip_int_coefficients(self):
        poly, coeffs = random_poly(5)
        assert poly.to_int_coefficients() == coeffs

    def test_eval_roundtrip(self):
        poly, coeffs = random_poly(6)
        assert poly.to_evaluation().to_coefficient().to_int_coefficients() == coeffs

    def test_add_matches_integer_arithmetic(self):
        a, ca = random_poly(7)
        b, cb = random_poly(8)
        assert a.add(b).to_int_coefficients() == [x + y for x, y in zip(ca, cb)]

    def test_multiply_matches_negacyclic_reference(self):
        a, ca = random_poly(9, fmt=LimbFormat.EVALUATION)
        b, cb = random_poly(10, fmt=LimbFormat.EVALUATION)
        product = a.multiply(b).to_int_coefficients()
        expected = [0] * N
        for i, x in enumerate(ca):
            for j, y in enumerate(cb):
                idx, value = i + j, x * y
                if idx >= N:
                    idx, value = idx - N, -value
                expected[idx] += value
        assert product == expected

    def test_multiply_scalar_per_limb(self):
        poly, coeffs = random_poly(11)
        scaled = poly.multiply_scalar(3)
        assert scaled.to_int_coefficients() == [3 * c for c in coeffs]

    def test_drop_and_keep_limbs(self):
        poly, _ = random_poly(12)
        assert poly.drop_last_limbs(1).level_count == 2
        assert poly.keep_limbs(1).level_count == 1
        with pytest.raises(ValueError):
            poly.drop_last_limbs(3)

    def test_select_limbs(self):
        poly, _ = random_poly(13)
        selected = poly.select_limbs([0, 2])
        assert selected.moduli == [PRIMES[0], PRIMES[2]]

    def test_rescale_divides_by_last_prime(self):
        q_last = PRIMES[-1]
        values = [q_last * v for v in range(-10, 10)]
        poly = RNSPoly.from_int_coefficients(N, PRIMES, values)
        rescaled = poly.rescale_last()
        assert rescaled.level_count == 2
        assert rescaled.to_int_coefficients()[: len(values)] == [v // q_last for v in values]

    def test_rescale_requires_two_limbs(self):
        poly = RNSPoly.from_int_coefficients(N, PRIMES[:1], [1, 2, 3])
        with pytest.raises(ValueError):
            poly.rescale_last()

    def test_mixed_basis_rejected(self):
        a, _ = random_poly(14)
        b = RNSPoly.from_int_coefficients(N, PRIMES[:2], [1])
        with pytest.raises(ValueError):
            a.add(b)

    def test_footprint(self):
        poly, _ = random_poly(15)
        assert poly.footprint_bytes() == 3 * N * 8
