"""Fault tolerance: deterministic chaos, typed errors, graceful degradation.

The acceptance contract under test: with a seeded :class:`FaultPlan`
injecting OOM windows, transient drain failures and device losses, every
admitted request either completes **bit-identical** to fault-free
sequential execution or resolves to a typed
:class:`~repro.serve.errors.ServeError`, successful responses never
dispatch past their deadline, the degradation cascade halves fused drains
``B -> B/2 -> ... -> singleton`` in a pinned order, and a lost cluster
device's buckets re-place deterministically on the survivors.  Everything
runs on the simulated clock, so every scenario replays identically.
"""

from __future__ import annotations

import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api.vector import CipherVector
from repro.cluster.sharding import member_partition_over
from repro.cluster.topology import pcie_box
from repro.core.memory import MemoryPool, OutOfDeviceMemory
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel
from repro.serve import (
    AdmissionPolicy,
    BatchingPolicy,
    BatchExecutor,
    DeadlineExceeded,
    DeviceLost,
    DrainFailed,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    OpProgram,
    ReplayDriver,
    RequestRejected,
    RetryPolicy,
    Server,
    SimulatedClock,
    TransientFault,
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    validate_handle,
)

#: 1 + 2x^2: two levels deep, no rotation keys needed.
POLY_PROGRAM = OpProgram.polynomial([1.0, 0.0, 2.0])

SQUARE_PROGRAM = OpProgram("square-shift", lambda x: (x * x) + 0.5)


def bitwise_equal(a: CipherVector, b: CipherVector) -> bool:
    return np.array_equal(a.handle.c0.stack.data, b.handle.c0.stack.data) and \
        np.array_equal(a.handle.c1.stack.data, b.handle.c1.stack.data)


def fresh_vector(session, rng) -> CipherVector:
    return session.encrypt(rng.uniform(-1, 1, 8))


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(duration=1.0, oom_fraction=0.2, transients=3,
                      device_loss=[(0.4, 1), (0.7, 0)])
        assert FaultPlan.generate(7, **kwargs) == FaultPlan.generate(7, **kwargs)
        assert FaultPlan.generate(7, **kwargs) != FaultPlan.generate(8, **kwargs)

    def test_events_are_time_sorted(self):
        plan = FaultPlan.generate(3, duration=2.0, oom_fraction=0.3,
                                  transients=5, device_loss=(1.0, 2))
        times = [event.time for event in plan]
        assert times == sorted(times)
        assert len(plan) == plan.describe()["events"]

    def test_oom_fraction_scales_window_count(self):
        sparse = FaultPlan.generate(1, duration=10.0, oom_fraction=0.1,
                                    oom_window=1.0)
        dense = FaultPlan.generate(1, duration=10.0, oom_fraction=0.5,
                                   oom_window=1.0)
        assert dense.describe()["by_kind"]["oom"] > \
            sparse.describe()["by_kind"]["oom"]

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0.0, "meteor-strike")
        with pytest.raises(ValueError, match="device index"):
            FaultEvent(0.0, "device_down")
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(-1.0, "oom")
        with pytest.raises(ValueError, match="positive timeline"):
            FaultPlan.generate(0, duration=0.0)


class TestFaultInjector:
    def test_event_log_is_deterministic(self):
        plan = FaultPlan.generate(11, duration=1.0, oom_fraction=0.3,
                                  transients=2)
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for now in (0.25, 0.5, 1.0):
                injector.advance(now)
            logs.append(list(injector.log))
        assert logs[0] == logs[1]

    def test_pool_hook_denies_charges_inside_window(self):
        clock = SimulatedClock()
        pool = MemoryPool(capacity_bytes=1 << 20)
        plan = FaultPlan([FaultEvent(0.5, "oom", duration=0.5, min_bytes=100)])
        injector = FaultInjector(plan, clock=clock, pool=pool)
        assert pool.allocate(512) is not None  # before the window
        clock.advance(0.6)
        injector.advance(clock.now())
        with pytest.raises(OutOfDeviceMemory, match="injected device OOM"):
            pool.allocate(512)
        pool.allocate(64)  # below min_bytes: the window lets it through
        clock.advance(0.5)  # past the window
        pool.allocate(512)
        assert ("pool-oom", 0.6, 512) in injector.log
        injector.remove_pool_hook()
        assert pool.charge_hook is None


# ----------------------------------------------------------------------
# degradation cascade
# ----------------------------------------------------------------------


class TestDegradationCascade:
    def test_cascade_halves_to_singletons_in_order(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "oom", duration=10.0)])
        server = Server(session, BatchingPolicy(max_batch_size=8, max_wait=0.0),
                        fault_plan=plan)
        requests = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                    for _ in range(8)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            server.poll()
        denied = [entry[2] for entry in server.injector.log
                  if entry[0] == "fuse-denied"]
        # Depth-first halving: 8 denied, left half 4 -> 2 -> singletons,
        # then the right half the same way.
        assert denied == [8, 4, 2, 2, 4, 2, 2]
        assert server.metrics.degraded_drains == 1
        assert server.metrics.footprint_fallbacks == 1
        for request in requests:
            assert request.response().ok
            assert bitwise_equal(request.result(), POLY_PROGRAM(request.vector))

    def test_degradation_warns_once_then_counts_silently(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "oom", duration=10.0)])
        server = Server(session, BatchingPolicy(max_batch_size=2, max_wait=0.0),
                        fault_plan=plan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):  # two degraded drains
                for _ in range(2):
                    server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                server.poll()
        degradation_warnings = [w for w in caught
                                if issubclass(w.category, RuntimeWarning)]
        assert len(degradation_warnings) == 1
        assert "ShapeKey" in str(degradation_warnings[0].message)
        assert server.metrics.degraded_drains == 2


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_deadline_tightens_dispatch(self, session, rng):
        server = Server(session, BatchingPolicy(max_batch_size=8, max_wait=1.0))
        request = server.submit(POLY_PROGRAM, fresh_vector(session, rng),
                                deadline=0.25)
        server.drain()
        response = request.response()
        assert response.ok
        assert response.dispatch_time == pytest.approx(0.25)

    def test_deadline_in_the_past_resolves_immediately(self, session, rng):
        clock = SimulatedClock(start=1.0)
        server = Server(session, BatchingPolicy(), clock=clock)
        request = server.submit(POLY_PROGRAM, fresh_vector(session, rng),
                                deadline=0.5)
        assert request.done()
        assert request.response().error_kind == "DeadlineExceeded"
        assert server.metrics.deadline_misses == 1

    def test_backoff_expires_overdue_members_but_serves_the_rest(
            self, session, rng):
        # A transient forces one retry whose 1 s backoff blows the first
        # request's deadline; the second request survives the retry.
        plan = FaultPlan([FaultEvent(0.0, "transient")])
        server = Server(
            session, BatchingPolicy(max_batch_size=2, max_wait=0.0),
            retry=RetryPolicy(max_retries=3, backoff=1.0),
            fault_plan=plan,
        )
        tight = server.submit(POLY_PROGRAM, fresh_vector(session, rng),
                              deadline=0.5)
        loose = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.poll()
        assert tight.response().error_kind == "DeadlineExceeded"
        assert loose.response().ok
        assert bitwise_equal(loose.result(), POLY_PROGRAM(loose.vector))
        assert server.metrics.deadline_misses == 1
        assert server.metrics.retries == 1


# ----------------------------------------------------------------------
# retry semantics
# ----------------------------------------------------------------------


class TestRetries:
    def test_transient_fault_retries_to_success(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "transient")])
        server = Server(session, BatchingPolicy(max_batch_size=2, max_wait=0.0),
                        retry=RetryPolicy(max_retries=3, backoff=1e-4),
                        fault_plan=plan)
        requests = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                    for _ in range(2)]
        server.poll()
        assert server.metrics.retries == 1
        assert server.clock.now() == pytest.approx(1e-4)  # one backoff
        for request in requests:
            assert request.response().ok
            assert bitwise_equal(request.result(), POLY_PROGRAM(request.vector))

    def test_retry_exhaustion_resolves_drain_failed(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "transient") for _ in range(5)])
        server = Server(session, BatchingPolicy(max_batch_size=1, max_wait=0.0),
                        retry=RetryPolicy(max_retries=2, backoff=1e-4),
                        fault_plan=plan)
        request = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.poll()
        response = request.response()
        assert response.error_kind == "DrainFailed"
        assert isinstance(response.error.__cause__, TransientFault)
        assert server.metrics.retries == 2  # budget fully spent
        assert server.metrics.availability == 0.0

    def test_backoff_delays_grow_exponentially(self):
        policy = RetryPolicy(backoff=1e-4, backoff_factor=2.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == \
            pytest.approx([1e-4, 2e-4, 4e-4])


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_queue_bound_sheds_with_typed_response(self, session, rng):
        server = Server(
            session, BatchingPolicy(max_batch_size=8, max_wait=1.0),
            admission=AdmissionPolicy(max_queue_depth=2),
        )
        admitted = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                    for _ in range(2)]
        shed = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                for _ in range(3)]
        for request in shed:
            response = request.response()
            assert response.error_kind == "RequestRejected"
            assert response.error.reason == "queue-full"
        assert server.metrics.shed_requests == 3
        assert server.metrics.admitted == 2
        server.drain()
        assert all(r.response().ok for r in admitted)
        assert server.metrics.availability == 1.0  # shed excluded

    def test_memory_watermark_sheds(self, session, rng):
        pool = MemoryPool(capacity_bytes=2048)
        pool.allocate(1536)
        server = Server(
            session, BatchingPolicy(),
            admission=AdmissionPolicy(memory_high_watermark=0.5, pool=pool),
        )
        request = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        assert request.response().error.reason == "memory-pressure"

    def test_admission_policy_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError, match="fraction"):
            AdmissionPolicy(memory_high_watermark=1.5)


# ----------------------------------------------------------------------
# submit-time validation
# ----------------------------------------------------------------------


class TestSubmitValidation:
    def test_wrong_ring_degree_raises_at_submit(self, session, rng):
        params = session.params
        alien = SimpleNamespace(ring_degree=params.ring_degree * 2,
                                level=1, slots=params.slots, scale=2.0 ** 28)
        server = Server(session)
        with pytest.raises(RequestRejected, match="re-encrypt") as info:
            server.submit(POLY_PROGRAM, alien)
        assert info.value.reason == "invalid-shape"
        assert server.metrics.submitted == 0  # never entered the queue

    def test_validate_handle_reasons(self, session):
        params = session.params
        good = dict(ring_degree=params.ring_degree, level=1,
                    slots=params.slots, scale=2.0 ** 28)
        validate_handle(SimpleNamespace(**good), params)  # no raise
        with pytest.raises(RequestRejected) as info:
            validate_handle(
                SimpleNamespace(**{**good, "level": params.mult_depth + 5}),
                params)
        assert info.value.reason == "invalid-level"
        with pytest.raises(RequestRejected) as info:
            validate_handle(SimpleNamespace(**{**good, "scale": 0.0}), params)
        assert info.value.reason == "invalid-scale"
        with pytest.raises(RequestRejected) as info:
            validate_handle(
                SimpleNamespace(**{**good, "slots": params.slots * 2}), params)
        assert info.value.reason == "invalid-shape"


# ----------------------------------------------------------------------
# cluster recovery
# ----------------------------------------------------------------------


class TestClusterRecovery:
    def test_topology_tracks_down_devices(self):
        topology = pcie_box(4)
        assert topology.alive_devices() == [0, 1, 2, 3]
        topology.mark_down(2)
        assert topology.is_down(2) and not topology.is_down(1)
        assert topology.alive_devices() == [0, 1, 3]
        assert topology.describe()["down_devices"] == [2]
        topology.restore(2)
        assert topology.alive_devices() == [0, 1, 2, 3]
        with pytest.raises(IndexError):
            topology.mark_down(9)

    def test_member_partition_over_survivors(self):
        assert member_partition_over(8, [0, 2, 3]) == {0: 3, 2: 3, 3: 2}
        assert member_partition_over(2, [1, 3]) == {1: 1, 3: 1}
        with pytest.raises(ValueError):
            member_partition_over(4, [])

    @pytest.mark.parametrize("device_count", [2, 4])
    def test_device_loss_replaces_buckets_on_survivors(
            self, session, rng, device_count):
        plan = FaultPlan([FaultEvent(0.5, "device_down", device=0)])
        server = Server(
            session, BatchingPolicy(max_batch_size=2, max_wait=0.0),
            cluster=pcie_box(device_count), fault_plan=plan,
        )
        # Two buckets (two programs) homed round-robin: 0 and 1 % D.
        before = [server.submit(POLY_PROGRAM, fresh_vector(session, rng)),
                  server.submit(SQUARE_PROGRAM, fresh_vector(session, rng))]
        server.flush()
        assert 0 in server.placements.values()
        server.clock.advance(1.0)  # past the loss
        after = [server.submit(POLY_PROGRAM, fresh_vector(session, rng)),
                 server.submit(SQUARE_PROGRAM, fresh_vector(session, rng))]
        server.flush()
        assert server.metrics.device_losses == 1
        assert 0 not in server.placements.values()  # re-placed on survivors
        for request in before + after:
            assert request.response().ok
            program = request.program
            assert bitwise_equal(request.result(), program(request.vector))

    def test_sharded_drains_replan_over_survivors(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "device_down", device=0)])
        server = Server(
            session, BatchingPolicy(max_batch_size=4, max_wait=0.0),
            cluster=pcie_box(4), shard_drains=True,
            trace_costs=TraceCostModel(GPU_RTX_4090),
            fault_plan=plan,
        )
        requests = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                    for _ in range(4)]
        server.poll()
        assert set(server.metrics.device_seconds) == {1, 2, 3}  # not 0
        for request in requests:
            assert bitwise_equal(request.result(), POLY_PROGRAM(request.vector))

    def test_execute_sharded_over_explicit_devices(self, session, rng):
        executor = BatchExecutor(session.backend)
        vectors = [fresh_vector(session, rng) for _ in range(5)]
        results, degradations, devices = executor.execute_sharded(
            POLY_PROGRAM, vectors, [0, 2, 3]
        )
        assert devices == (0, 2, 3)
        assert degradations == 0
        for vector, result in zip(vectors, results):
            assert bitwise_equal(result, POLY_PROGRAM(vector))

    def test_all_devices_down_resolves_device_lost(self, session, rng):
        plan = FaultPlan([FaultEvent(0.0, "device_down", device=0),
                          FaultEvent(0.0, "device_down", device=1)])
        server = Server(session, BatchingPolicy(max_batch_size=2, max_wait=0.0),
                        cluster=pcie_box(2), fault_plan=plan)
        requests = [server.submit(POLY_PROGRAM, fresh_vector(session, rng))
                    for _ in range(2)]
        server.poll()
        for request in requests:
            assert request.response().error_kind == "DeviceLost"
            with pytest.raises(DeviceLost):
                request.result()
        assert server.metrics.device_losses == 2
        assert server.metrics.availability == 0.0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


class TestArrivalTraces:
    def test_generators_are_seeded_and_sorted(self):
        for make in (
            lambda s: poisson_arrivals(100, rate=1000.0, seed=s),
            lambda s: burst_arrivals(100, bursts=5, burst_gap=0.01, seed=s),
            lambda s: diurnal_arrivals(100, period=1.0, seed=s),
        ):
            a, b = make(3), make(3)
            assert np.array_equal(a, b)
            assert len(a) == 100
            assert np.all(np.diff(a) >= 0)
            assert not np.array_equal(a, make(4))

    def test_diurnal_stays_inside_one_period(self):
        arrivals = diurnal_arrivals(500, period=2.0, seed=9, start=1.0)
        assert arrivals.min() >= 1.0 and arrivals.max() <= 3.0


class TestReplay:
    def test_replay_is_deterministic_on_cost_backend(self, session):
        def run_once():
            backend = session.cost_backend()
            plan = FaultPlan.generate(21, duration=0.2, oom_fraction=0.2,
                                      transients=2)
            server = Server(backend,
                            BatchingPolicy(max_batch_size=8, max_wait=1e-3),
                            fault_plan=plan)
            driver = ReplayDriver(
                server, POLY_PROGRAM,
                lambda i: backend.encrypt(np.full(8, 0.5)),
                deadline_offset=0.05,
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                report = driver.run(
                    poisson_arrivals(300, rate=3000.0, seed=5))
            return report.summary(), list(server.injector.log)
        first, second = run_once(), run_once()
        assert first == second

    def test_burst_replay_sheds_and_stays_available(self, session):
        backend = session.cost_backend()
        server = Server(backend, BatchingPolicy(max_batch_size=8, max_wait=1e-3),
                        admission=AdmissionPolicy(max_queue_depth=8))
        driver = ReplayDriver(server, POLY_PROGRAM,
                              lambda i: backend.encrypt(np.full(8, 0.5)))
        report = driver.run(burst_arrivals(32, bursts=1, burst_gap=1.0, seed=2))
        assert report.shed == 24  # depth bound 8 against a 32-burst
        assert report.admitted == 8
        assert report.availability == 1.0
        assert report.error_kinds == {"RequestRejected": 24}

    def test_faulted_replay_meets_the_acceptance_contract(self, session, rng):
        # Functional backend: every OK response must be bit-identical to
        # fault-free sequential execution, every failure typed, and no OK
        # response dispatched past its deadline.
        plan = FaultPlan.generate(13, duration=0.06, oom_fraction=0.5,
                                  oom_window=0.01, transients=1)
        server = Server(session, BatchingPolicy(max_batch_size=4, max_wait=1e-3),
                        retry=RetryPolicy(max_retries=3, backoff=1e-5),
                        fault_plan=plan)
        vectors = [fresh_vector(session, rng) for _ in range(24)]
        driver = ReplayDriver(server, POLY_PROGRAM, lambda i: vectors[i],
                              deadline_offset=0.02)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = driver.run(
                burst_arrivals(24, bursts=6, burst_gap=0.01, seed=17))
        assert report.deadline_violations == 0
        assert report.submitted == 24
        expected = [POLY_PROGRAM(vector) for vector in vectors]
        for request, want in zip(driver.requests, expected):
            response = request.response()
            if response.ok:
                assert bitwise_equal(request.result(), want)
            else:
                assert response.error_kind in {
                    "RequestRejected", "DeadlineExceeded",
                    "DrainFailed", "DeviceLost",
                }
        assert report.availability >= 0.99
