"""Tests of the OpenFHE-style client, the adapter layer and serialization.

These are the reproduction of the paper's client/server integration tests:
the client encrypts, the server (evaluator) computes, the client decrypts
and checks against plaintext results, with all data crossing through the
adapter exchange structures.
"""

import numpy as np
import pytest

from repro.ckks.encryption import encode
from repro.ckks.evaluator import Evaluator
from repro.ckks.params import CKKSParameters
from repro.openfhe.adapter import (
    export_ciphertext,
    export_plaintext,
    import_ciphertext,
    import_plaintext,
)
from repro.openfhe.client import OpenFHEClient
from repro.openfhe.serialization import (
    deserialize_ciphertext,
    deserialize_plaintext,
    serialize_ciphertext,
    serialize_plaintext,
)
from tests.conftest import assert_close


@pytest.fixture(scope="module")
def client():
    params = CKKSParameters(ring_degree=512, mult_depth=4, scale_bits=28,
                            dnum=2, first_mod_bits=30, label="interop")
    client = OpenFHEClient(params, seed=42)
    client.key_gen(rotations=[1, 2], conjugation=True)
    return client


@pytest.fixture(scope="module")
def server(client):
    return Evaluator(client.context, client.keys.without_secret())


class TestClient:
    def test_requires_keygen_before_encrypt(self):
        fresh = OpenFHEClient(
            CKKSParameters(ring_degree=256, mult_depth=2, scale_bits=28, dnum=2,
                           first_mod_bits=30)
        )
        with pytest.raises(RuntimeError):
            fresh.encrypt([1.0])

    def test_server_keyset_has_no_secret(self):
        fresh = OpenFHEClient(
            CKKSParameters(ring_degree=256, mult_depth=2, scale_bits=28, dnum=2,
                           first_mod_bits=30), seed=8,
        )
        assert fresh.key_gen(rotations=[1]).secret_key is None

    def test_encrypt_decrypt_roundtrip(self, client):
        values = np.array([0.5, -0.25, 0.75])
        raw = client.encrypt(values)
        assert raw.parameter_tag == client.params.describe()
        assert_close(client.decrypt(raw, 3).real, values)

    def test_add_rotation_keys(self, client):
        keys = client.add_rotation_keys([4])
        assert 4 in keys.rotation_keys

    def test_precision_bits(self, client):
        values = np.array([0.5, -0.5])
        raw = client.encrypt(values)
        assert client.precision_bits(raw, values) > 10


class TestAdapter:
    def test_ciphertext_roundtrip(self, client):
        values = np.array([0.1, 0.2, -0.3])
        raw = client.encrypt(values)
        server_ct = import_ciphertext(client.context, raw)
        raw_again = export_ciphertext(server_ct)
        assert_close(client.decrypt(raw_again, 3).real, values)

    def test_plaintext_roundtrip(self, client):
        pt = encode(client.context, [0.5, 1.0])
        raw = export_plaintext(pt, parameter_tag="tag")
        restored = import_plaintext(client.context, raw)
        assert restored.scale == pt.scale
        assert_close(client.decode(restored, 2).real, [0.5, 1.0], 1e-6)

    def test_moduli_validation(self, client):
        values = np.array([1.0])
        raw = client.encrypt(values)
        raw.c0.moduli[0] += 2  # corrupt
        with pytest.raises(ValueError):
            import_ciphertext(client.context, raw)

    def test_noise_metadata_travels(self, client):
        raw = client.encrypt([1.0])
        ct = import_ciphertext(client.context, raw)
        assert ct.noise_bits == raw.noise_bits


class TestServerSideIntegration:
    """Every server operation validated against the client (paper §IV-A)."""

    def test_hadd(self, client, server):
        a, b = np.array([0.1, 0.2]), np.array([0.3, -0.1])
        ct = server.add(client.upload(client.encrypt(a)), client.upload(client.encrypt(b)))
        assert_close(client.decrypt(ct, 2).real, a + b)

    def test_hmult(self, client, server):
        a, b = np.array([0.5, -0.5]), np.array([0.25, 0.4])
        ct = server.multiply(client.upload(client.encrypt(a)), client.upload(client.encrypt(b)))
        assert_close(client.decrypt(ct, 2).real, a * b)

    def test_rotation(self, client, server):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        ct = server.rotate(client.upload(client.encrypt(a)), 1)
        assert_close(client.decrypt(ct, 4).real, np.roll(a, -1), 1e-3)

    def test_conjugation(self, client, server):
        a = np.array([0.5 + 0.25j, -0.25 - 0.1j])
        ct = server.conjugate(client.upload(client.encrypt(a)))
        assert_close(client.decrypt(ct, 2), np.conj(a), 1e-3)

    def test_scalar_ops(self, client, server):
        a = np.array([0.2, -0.4])
        ct = client.upload(client.encrypt(a))
        result = server.add_scalar(server.multiply_scalar(ct, 2.0), 0.5)
        assert_close(client.decrypt(result, 2).real, 2.0 * a + 0.5, 1e-3)

    def test_noise_estimate_returned_with_result(self, client, server):
        a = np.array([0.3])
        ct = server.square(client.upload(client.encrypt(a)))
        exported = export_ciphertext(ct, parameter_tag=client.params.describe())
        assert exported.parameter_tag == client.params.describe()
        assert_close(client.decrypt(exported, 1).real, a * a, 1e-3)


class TestSerialization:
    def test_ciphertext_bytes_roundtrip(self, client):
        values = np.array([0.9, -0.1])
        raw = client.encrypt(values)
        blob = serialize_ciphertext(raw)
        assert isinstance(blob, bytes)
        restored = deserialize_ciphertext(blob)
        assert restored.scale == raw.scale
        assert_close(client.decrypt(restored, 2).real, values)

    def test_ciphertext_serialization_is_deterministic(self, client):
        raw = client.encrypt([0.5])
        assert serialize_ciphertext(raw) == serialize_ciphertext(raw)

    def test_plaintext_bytes_roundtrip(self, client):
        pt = encode(client.context, [0.25, -0.75])
        blob = serialize_plaintext(export_plaintext(pt))
        restored = deserialize_plaintext(blob)
        assert_close(client.decode(import_plaintext(client.context, restored), 2).real,
                     [0.25, -0.75], 1e-6)

    def test_type_confusion_rejected(self, client):
        pt_blob = serialize_plaintext(export_plaintext(encode(client.context, [1.0])))
        with pytest.raises(ValueError):
            deserialize_ciphertext(pt_blob)
