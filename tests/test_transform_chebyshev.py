"""Tests for BSGS linear transforms and Chebyshev/Paterson-Stockmeyer evaluation."""

import math

import numpy as np
import pytest

from repro.ckks.chebyshev import (
    chebyshev_coefficients,
    chebyshev_divide,
    chebyshev_series_value,
    double_angle,
    evaluate_chebyshev,
    evaluate_chebyshev_direct,
)
from repro.ckks.linear_transform import (
    LinearTransform,
    coeff_to_slot_matrix,
    decoding_matrix,
    slot_to_coeff_matrix,
)
from tests.conftest import assert_close


class TestChebyshevMath:
    def test_coefficients_reconstruct_function(self):
        coeffs = chebyshev_coefficients(lambda x: math.cos(2 * math.pi * x), 30)
        xs = np.linspace(-1, 1, 41)
        values = np.array([chebyshev_series_value(coeffs, x) for x in xs])
        assert_close(values, np.cos(2 * np.pi * xs), 1e-6)

    def test_low_degree_polynomial_exact(self):
        coeffs = chebyshev_coefficients(lambda x: 2 * x * x - 1, 2)
        assert coeffs[2] == pytest.approx(1.0, abs=1e-9)
        assert coeffs[0] == pytest.approx(0.0, abs=1e-9)

    def test_divide_reconstructs(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=13)
        n = 4
        quotient, remainder = chebyshev_divide(coeffs, n)
        xs = np.linspace(-1, 1, 17)
        f = np.array([chebyshev_series_value(coeffs, x) for x in xs])
        q = np.array([chebyshev_series_value(quotient, x) for x in xs])
        r = np.array([chebyshev_series_value(remainder, x) for x in xs])
        t_n = np.cos(n * np.arccos(xs))
        assert_close(q * t_n + r, f, 1e-9)

    def test_divide_small_degree_is_remainder(self):
        quotient, remainder = chebyshev_divide([1.0, 2.0], 4)
        assert list(quotient) == [0.0]
        assert list(remainder) == [1.0, 2.0]

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_coefficients(math.cos, -1)


class TestHomomorphicChebyshev:
    @pytest.fixture(scope="class")
    def inputs(self, rng, encryptor):
        ys = rng.uniform(-0.9, 0.9, 8)
        return ys, encryptor.encrypt_values(ys)

    def test_direct_evaluation(self, evaluator, decryptor, inputs):
        ys, ct = inputs
        coeffs = chebyshev_coefficients(lambda x: 0.25 + x - 0.5 * x**3, 3)
        result = evaluate_chebyshev_direct(evaluator, ct, coeffs)
        assert_close(decryptor.decrypt_values(result, 8).real, 0.25 + ys - 0.5 * ys**3, 2e-3)

    def test_bsgs_ps_evaluation(self, evaluator, decryptor, inputs):
        ys, ct = inputs
        coeffs = chebyshev_coefficients(lambda x: np.cos(3 * x), 12)
        result = evaluate_chebyshev(evaluator, ct, coeffs)
        assert_close(decryptor.decrypt_values(result, 8).real, np.cos(3 * ys), 5e-3)

    def test_ps_matches_direct(self, evaluator, decryptor, inputs):
        ys, ct = inputs
        coeffs = chebyshev_coefficients(lambda x: 1.0 / (2.0 + x), 10)
        direct = decryptor.decrypt_values(evaluate_chebyshev_direct(evaluator, ct, coeffs), 8).real
        bsgs = decryptor.decrypt_values(evaluate_chebyshev(evaluator, ct, coeffs), 8).real
        assert_close(bsgs, direct, 5e-3)

    def test_double_angle(self, evaluator, decryptor, encryptor, rng):
        ys = rng.uniform(-0.2, 0.2, 8)
        ct = encryptor.encrypt_values(np.cos(ys))
        result = double_angle(evaluator, ct, 2)
        assert_close(decryptor.decrypt_values(result, 8).real, np.cos(4 * ys), 5e-3)


@pytest.fixture(scope="module")
def lt_setup():
    """A small dedicated context with the rotation keys BSGS transforms need."""
    from repro.ckks.context import Context
    from repro.ckks.encryption import Decryptor, Encryptor
    from repro.ckks.evaluator import Evaluator
    from repro.ckks.keys import KeyGenerator
    from repro.ckks.params import CKKSParameters

    params = CKKSParameters(ring_degree=256, mult_depth=3, scale_bits=28,
                            dnum=2, first_mod_bits=30, label="lt-test")
    context = Context(params)
    probe = LinearTransform(context, np.eye(context.slots, dtype=complex))
    rotations = sorted(
        set(range(1, probe.baby_steps))
        | {probe.baby_steps * j for j in range(1, probe.giant_steps)}
    )
    keys = KeyGenerator(context, seed=99).generate(rotations, conjugation=True)
    return {
        "context": context,
        "evaluator": Evaluator(context, keys),
        "encryptor": Encryptor(context, keys.public_key, seed=5),
        "decryptor": Decryptor(context, keys.secret_key),
    }


class TestLinearTransform:
    def test_decoding_matrix_identity(self, context):
        # sigma(m) = E0 (m_lo + i m_hi) for real coefficient vectors.
        n = 64
        e0 = decoding_matrix(n)
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=n)
        from repro.ckks.encoding import CKKSEncoder
        encoder = CKKSEncoder(n)
        sigma = encoder.project(coeffs)
        combined = coeffs[: n // 2] + 1j * coeffs[n // 2 :]
        assert_close(e0 @ combined, sigma, 1e-8)

    def test_scaled_matrices(self):
        assert_close(coeff_to_slot_matrix(64, 2.0), 2.0 * np.linalg.inv(decoding_matrix(64)), 1e-9)
        assert_close(slot_to_coeff_matrix(64, 0.5), 0.5 * decoding_matrix(64), 1e-9)

    def test_apply_matches_numpy(self, lt_setup, rng):
        context = lt_setup["context"]
        slots = context.slots
        matrix = (rng.normal(size=(slots, slots)) + 1j * rng.normal(size=(slots, slots))) / slots
        message = rng.uniform(-0.5, 0.5, slots)
        transform = LinearTransform(context, matrix)
        ct = lt_setup["encryptor"].encrypt_values(message)
        result = transform.apply(lt_setup["evaluator"], ct)
        assert result.level == ct.level - 1
        assert_close(
            lt_setup["decryptor"].decrypt_values(result, slots),
            matrix @ message.astype(complex),
            1e-3,
        )

    def test_coeff_to_slot_matrix_applied(self, lt_setup, rng):
        context = lt_setup["context"]
        slots = context.slots
        matrix = coeff_to_slot_matrix(context.ring_degree, 1.0)
        message = rng.uniform(-0.5, 0.5, slots)
        transform = LinearTransform(context, matrix)
        ct = lt_setup["encryptor"].encrypt_values(message)
        result = transform.apply(lt_setup["evaluator"], ct)
        assert_close(
            lt_setup["decryptor"].decrypt_values(result, slots),
            matrix @ message.astype(complex),
            1e-3,
        )

    def test_diagonal_matrix_uses_no_rotations(self, lt_setup):
        context = lt_setup["context"]
        transform = LinearTransform(context, np.eye(context.slots, dtype=complex))
        assert transform.required_rotations() == []

    def test_rejects_wrong_shape(self, lt_setup):
        with pytest.raises(ValueError):
            LinearTransform(lt_setup["context"], np.eye(4, dtype=complex))

    def test_rejects_zero_matrix(self, lt_setup):
        context = lt_setup["context"]
        transform = LinearTransform(context, np.zeros((context.slots, context.slots), dtype=complex))
        ct = lt_setup["encryptor"].encrypt_values(np.ones(4))
        with pytest.raises(ValueError):
            transform.apply(lt_setup["evaluator"], ct)

    def test_required_rotations_within_slot_range(self, lt_setup, rng):
        context = lt_setup["context"]
        matrix = rng.normal(size=(context.slots, context.slots)) / context.slots
        transform = LinearTransform(context, matrix)
        steps = transform.required_rotations()
        assert steps and all(0 < s < context.slots for s in steps)
