"""Tests of the GPU execution-model substrate (platforms, cache, kernels, streams)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.params import PARAMETER_SETS
from repro.gpu.cache import CacheModel
from repro.gpu.device import GPUDevice
from repro.cluster import (
    ClusterTopology,
    InterconnectLink,
    nvlink_box,
    single_device,
)
from repro.gpu.kernel import Kernel, KernelCostModel, KernelTiming, transfer_kernel
from repro.gpu.memory import (
    ciphertext_bytes,
    fits_in_shared_cache,
    hmult_working_set_bytes,
    key_switching_key_bytes,
)
from repro.gpu.platforms import (
    ALL_GPUS,
    ALL_PLATFORMS,
    CPU_RYZEN_9_7900,
    GPU_RTX_4060TI,
    GPU_RTX_4090,
    platform,
    platform_table,
)
from repro.gpu.stream import StreamScheduler
from repro.core.memory import OutOfDeviceMemory


class TestPlatforms:
    def test_table_iv_has_five_rows(self):
        assert len(platform_table()) == 5

    def test_gpu_bandwidth_exceeds_cpu(self):
        assert all(gpu.bandwidth_gbps > CPU_RYZEN_9_7900.bandwidth_gbps for gpu in ALL_GPUS)

    def test_4090_is_fastest(self):
        assert GPU_RTX_4090.bandwidth_gbps == max(p.bandwidth_gbps for p in ALL_GPUS)
        assert GPU_RTX_4090.int32_tops == max(p.int32_tops for p in ALL_GPUS)

    def test_table_iv_values(self):
        assert GPU_RTX_4090.shared_cache_mb == 72
        assert GPU_RTX_4060TI.shared_cache_mb == 32
        assert CPU_RYZEN_9_7900.compute_units == 12

    def test_derived_quantities(self):
        assert GPU_RTX_4090.shared_cache_bytes == 72 * (1 << 20)
        assert GPU_RTX_4090.is_gpu and not CPU_RYZEN_9_7900.is_gpu

    def test_platform_lookup_by_name(self):
        assert platform("RTX 4090") is GPU_RTX_4090
        assert platform("Ryzen 9 7900") is CPU_RYZEN_9_7900

    def test_platform_lookup_error_lists_available_names(self):
        with pytest.raises(KeyError) as excinfo:
            platform("H100")
        message = str(excinfo.value)
        assert "H100" in message
        for p in ALL_PLATFORMS:
            assert p.name in message


class TestCacheModel:
    def test_no_reuse_means_no_hits(self):
        cache = CacheModel(GPU_RTX_4090)
        assert cache.hit_fraction(1 << 20, reuse=1.0) == 0.0

    def test_fitting_working_set_hits(self):
        cache = CacheModel(GPU_RTX_4090)
        assert cache.hit_fraction(1 << 20, reuse=2.0) == pytest.approx(0.5)

    def test_oversized_working_set_misses(self):
        cache = CacheModel(GPU_RTX_4090)
        huge = GPU_RTX_4090.shared_cache_bytes * 10
        assert cache.hit_fraction(huge, reuse=4.0) == 0.0

    def test_effective_bandwidth_bounded(self):
        cache = CacheModel(GPU_RTX_4090)
        dram = GPU_RTX_4090.bandwidth_bytes_per_s
        bw = cache.effective_bandwidth(1 << 20, reuse=2.0)
        assert dram <= bw <= dram * GPU_RTX_4090.cache_bandwidth_multiplier

    def test_monotone_in_working_set(self):
        cache = CacheModel(GPU_RTX_4060TI)
        sizes = [1 << 20, 16 << 20, 40 << 20, 200 << 20]
        bandwidths = [cache.effective_bandwidth(s, 2.0) for s in sizes]
        assert all(a >= b for a, b in zip(bandwidths, bandwidths[1:]))


class TestKernelCostModel:
    def test_memory_bound_kernel(self):
        model = KernelCostModel(GPU_RTX_4090, compute_efficiency=1.0, bandwidth_efficiency=1.0)
        kernel = Kernel("stream", bytes_read=1e9, bytes_written=0, int_ops=1e6)
        timing = model.time_kernel(kernel)
        assert timing.bound == "memory"
        assert timing.execution_time == pytest.approx(1e9 / GPU_RTX_4090.bandwidth_bytes_per_s, rel=0.2)

    def test_compute_bound_kernel(self):
        model = KernelCostModel(GPU_RTX_4090, compute_efficiency=1.0, bandwidth_efficiency=1.0)
        kernel = Kernel("crunch", bytes_read=1e3, bytes_written=0, int_ops=1e12)
        assert model.time_kernel(kernel).bound == "compute"

    def test_kernel_scaling(self):
        kernel = Kernel("k", bytes_read=100, bytes_written=50, int_ops=10, launches=1)
        scaled = kernel.scaled(3)
        assert scaled.bytes_read == 300 and scaled.launches == 3
        assert scaled.working_set_bytes == kernel.working_set_bytes

    def test_time_scales_linearly_with_volume(self):
        model = KernelCostModel(GPU_RTX_4090)
        small = Kernel("k", 1e6, 1e6, 1e6)
        large = small.scaled(10)
        assert model.time_kernel(large).execution_time == pytest.approx(
            10 * model.time_kernel(small).execution_time, rel=1e-6
        )


class TestStreamScheduler:
    def _timings(self, count, execution=1e-5):
        model = KernelCostModel(GPU_RTX_4090, bandwidth_efficiency=1.0)
        kernels = [
            Kernel(f"k{i}", bytes_read=execution * GPU_RTX_4090.bandwidth_bytes_per_s,
                   bytes_written=0, int_ops=0)
            for i in range(count)
        ]
        return model.time_kernels(kernels)

    def test_empty_schedule(self):
        result = StreamScheduler(GPU_RTX_4090, streams=4).schedule([])
        assert result.makespan == 0.0

    def test_multi_stream_hides_launch_overhead(self):
        timings = self._timings(64)
        single = StreamScheduler(GPU_RTX_4090, streams=1).schedule(timings)
        multi = StreamScheduler(GPU_RTX_4090, streams=8).schedule(timings)
        assert multi.makespan < single.makespan
        assert multi.launch_hidden >= 0.0

    def test_launch_bound_detection(self):
        timings = self._timings(1000, execution=1e-8)
        result = StreamScheduler(GPU_RTX_4090, streams=8).schedule(timings)
        assert result.launch_bound

    def test_requires_positive_streams(self):
        with pytest.raises(ValueError):
            StreamScheduler(GPU_RTX_4090, streams=0)

    def test_single_stream_hides_nothing(self):
        # Regression: nothing overlaps on one stream, so no launch overhead
        # is hidden and the makespan is exactly launches + execution.
        timings = self._timings(32)
        result = StreamScheduler(GPU_RTX_4090, streams=1).schedule(timings)
        assert result.launch_hidden == 0.0
        assert result.makespan == pytest.approx(
            result.launch_time + result.execution_time
        )

    def test_zero_launch_overhead_makes_makespan_execution(self):
        import dataclasses

        platform = dataclasses.replace(GPU_RTX_4090, launch_overhead_us=0.0)
        timings = self._timings(16)
        for streams in (1, 4):
            result = StreamScheduler(platform, streams=streams).schedule(timings)
            assert result.makespan == pytest.approx(result.execution_time)
            assert result.launch_time == 0.0

    def test_makespan_monotone_in_streams(self):
        timings = self._timings(48, execution=2e-6)
        makespans = [
            StreamScheduler(GPU_RTX_4090, streams=s).schedule(timings).makespan
            for s in (1, 2, 4, 8, 16)
        ]
        assert all(a >= b - 1e-15 for a, b in zip(makespans, makespans[1:]))

    def test_timeline_streams_do_not_overlap(self):
        timings = self._timings(40, execution=3e-6)
        result = StreamScheduler(GPU_RTX_4090, streams=4).schedule(timings)
        assert len(result.timeline) == 40
        for slots in result.stream_timelines().values():
            for earlier, later in zip(slots, slots[1:]):
                assert later.start >= earlier.end - 1e-15
        assert result.makespan == max(slot.end for slot in result.timeline)

    def test_dependency_chain_forces_order(self):
        timings = self._timings(8)
        chain = [tuple(range(i)) for i in range(8)]  # k depends on all before
        result = StreamScheduler(GPU_RTX_4090, streams=4).schedule(
            timings, dependencies=chain
        )
        by_index = sorted(result.timeline, key=lambda slot: slot.index)
        for earlier, later in zip(by_index, by_index[1:]):
            assert later.start >= earlier.end - 1e-15

    def test_dependency_chain_cannot_hide_launch_overhead(self):
        # A fully dependent chain on many streams behaves like a single
        # stream (launch overhead on the critical path), while the same
        # kernels without dependencies overlap launches with execution:
        # only independent kernels benefit from multi-stream (§III-F.1).
        timings = self._timings(16, execution=2e-6)
        chain = [(i - 1,) if i else () for i in range(16)]
        multi = StreamScheduler(GPU_RTX_4090, streams=8)
        single = StreamScheduler(GPU_RTX_4090, streams=1)
        chained = multi.schedule(timings, dependencies=chain)
        independent = multi.schedule(timings)
        assert chained.makespan > independent.makespan
        assert chained.makespan == pytest.approx(
            single.schedule(timings, dependencies=chain).makespan
        )
        assert chained.launch_hidden == pytest.approx(0.0)

    def test_parallel_branches_still_overlap_under_dependencies(self):
        # Two independent chains interleaved: the scheduler can overlap one
        # chain's launches with the other's execution.
        timings = self._timings(16, execution=2e-6)
        deps = [(i - 2,) if i >= 2 else () for i in range(16)]  # two chains
        scheduler = StreamScheduler(GPU_RTX_4090, streams=8)
        two_chains = scheduler.schedule(timings, dependencies=deps)
        one_chain = scheduler.schedule(
            timings, dependencies=[(i - 1,) if i else () for i in range(16)]
        )
        assert two_chains.makespan < one_chain.makespan

    def test_dependencies_must_reference_earlier_kernels(self):
        timings = self._timings(2)
        with pytest.raises(ValueError):
            StreamScheduler(GPU_RTX_4090, streams=2).schedule(
                timings, dependencies=[(1,), ()]
            )
        with pytest.raises(ValueError):
            StreamScheduler(GPU_RTX_4090, streams=2).schedule(
                timings, dependencies=[()]
            )


class TestClusterScheduler:
    """Multi-device generalisation: per-device streams, links as resources."""

    def _timings(self, count, execution=1e-5, device=0):
        model = KernelCostModel(GPU_RTX_4090, bandwidth_efficiency=1.0)
        kernels = [
            Kernel(f"k{i}", bytes_read=execution * GPU_RTX_4090.bandwidth_bytes_per_s,
                   bytes_written=0, int_ops=0, device=device)
            for i in range(count)
        ]
        return model.time_kernels(kernels)

    def _transfer_timing(self, src, dst, duration=1e-6, payload=1e6):
        kernel = transfer_kernel("xfer", payload, src, dst)
        return KernelTiming(kernel=kernel, compute_time=0.0,
                            memory_time=duration if src != dst else 0.0)

    def test_single_device_topology_is_bit_identical_to_plain(self):
        # The degenerate one-device topology must not perturb any number.
        timings = self._timings(24, execution=2e-6)
        deps = [(i - 1,) if i else () for i in range(24)]
        topo = single_device(GPU_RTX_4090)
        for streams in (1, 4):
            plain = StreamScheduler(GPU_RTX_4090, streams=streams).schedule(
                timings, dependencies=deps
            )
            clustered = StreamScheduler(
                GPU_RTX_4090, streams=streams, topology=topo
            ).schedule(timings, dependencies=deps)
            assert clustered.makespan == plain.makespan
            assert clustered.launch_hidden == plain.launch_hidden
            assert clustered.timeline == plain.timeline

    def test_self_transfer_is_a_noop_kernel(self):
        kernel = transfer_kernel("xfer", 1e9, 2, 2)
        assert kernel.is_self_transfer
        assert kernel.payload_bytes == 0.0
        assert kernel.launches == 0.0
        # Scheduling it adds neither time nor launches to the makespan.
        topo = nvlink_box(4)
        base = self._timings(4, execution=2e-6)
        with_noop = base + [self._transfer_timing(2, 2)]
        scheduler = StreamScheduler(GPU_RTX_4090, streams=2, topology=topo)
        assert scheduler.schedule(with_noop).makespan == pytest.approx(
            scheduler.schedule(base).makespan
        )
        assert scheduler.schedule(with_noop).transfer_time == 0.0

    def test_independent_devices_run_in_parallel(self):
        topo = nvlink_box(2, platform=GPU_RTX_4090)
        split = self._timings(8, device=0) + self._timings(8, device=1)
        one = StreamScheduler(GPU_RTX_4090, streams=1).schedule(
            self._timings(16)
        )
        two = StreamScheduler(GPU_RTX_4090, streams=1, topology=topo).schedule(split)
        assert two.makespan < one.makespan
        assert two.execution_time == pytest.approx(one.execution_time)
        busy = two.device_busy()
        assert set(busy) == {0, 1}
        assert busy[0] == pytest.approx(busy[1])

    def test_timelines_do_not_overlap_per_device_and_per_link(self):
        topo = nvlink_box(3, platform=GPU_RTX_4090)
        timings = []
        for device in (0, 1, 2):
            timings.extend(self._timings(6, execution=2e-6, device=device))
        for src, dst in [(0, 1), (1, 2), (0, 2), (1, 0), (2, 0)]:
            timings.append(self._transfer_timing(src, dst, duration=3e-6))
        result = StreamScheduler(GPU_RTX_4090, streams=2, topology=topo).schedule(
            timings
        )
        for slots in result.device_timelines().values():
            for earlier, later in zip(slots, slots[1:]):
                assert later.start >= earlier.end - 1e-15
        link_slots = result.link_timelines()
        assert set(link_slots) == {(0, 1), (1, 2), (0, 2)}
        for slots in link_slots.values():
            for earlier, later in zip(slots, slots[1:]):
                assert later.start >= earlier.end - 1e-15
        assert result.transfer_time == pytest.approx(5 * 3e-6)

    def test_zero_latency_link_chain_reduces_to_single_device_closed_form(self):
        # A fully dependent chain alternating between two devices joined by
        # a zero-cost link behaves exactly like the chain on one device:
        # makespan == total_launch + total_execution (the streams=1 closed
        # form), because instantaneous transfers add nothing to the path.
        topo = ClusterTopology(
            [GPU_RTX_4090, GPU_RTX_4090],
            default_link=InterconnectLink("ideal", 1e12, latency_us=0.0),
        )
        timings = []
        deps = []
        for i in range(6):
            device = i % 2
            timings.append(self._timings(1, execution=2e-6, device=device)[0])
            index = len(timings) - 1
            deps.append((index - 1,) if index else ())
            if i < 5:
                timings.append(self._transfer_timing(device, 1 - device, 0.0))
                deps.append((index,))
        result = StreamScheduler(GPU_RTX_4090, streams=1, topology=topo).schedule(
            timings, dependencies=deps
        )
        assert result.makespan == pytest.approx(
            result.launch_time + result.execution_time
        )
        assert result.transfer_time == 0.0

    def test_transfers_serialise_on_their_link(self):
        # Two transfers over the same device pair queue on the link; two
        # transfers over disjoint pairs overlap freely.
        topo = nvlink_box(4, platform=GPU_RTX_4090)
        scheduler = StreamScheduler(GPU_RTX_4090, streams=1, topology=topo)
        same_pair = [
            self._transfer_timing(0, 1, duration=5e-6),
            self._transfer_timing(1, 0, duration=5e-6),
        ]
        disjoint = [
            self._transfer_timing(0, 1, duration=5e-6),
            self._transfer_timing(2, 3, duration=5e-6),
        ]
        assert scheduler.schedule(same_pair).makespan > \
            scheduler.schedule(disjoint).makespan

    def test_unknown_device_raises_descriptive_error(self):
        timings = self._timings(1, device=5)
        with pytest.raises(ValueError, match="devices 0..0"):
            StreamScheduler(GPU_RTX_4090, streams=1).schedule(timings)


class TestDevice:
    def test_execution_result_fields(self):
        device = GPUDevice(GPU_RTX_4090)
        kernels = [Kernel("k", 1e6, 1e6, 1e6), Kernel("c", 1e3, 1e3, 1e11)]
        result = device.execute(kernels)
        assert result.total_time > 0
        assert result.kernel_count == 2
        assert result.bytes_moved == pytest.approx(2e6 + 2e3)
        assert result.compute_bound_kernels + result.memory_bound_kernels == 2
        assert result.total_time_us == pytest.approx(result.total_time * 1e6)

    def test_device_memory_capacity(self):
        device = GPUDevice(GPU_RTX_4060TI)
        with pytest.raises(OutOfDeviceMemory):
            device.allocate(20 << 30)

    def test_memory_footprints_match_paper_magnitudes(self):
        params = PARAMETER_SETS["paper-default"]
        # §III-F.1: ciphertext + switching key is on the order of 120 MB.
        total = ciphertext_bytes(params) + key_switching_key_bytes(params)
        assert 80e6 < total < 260e6
        assert hmult_working_set_bytes(params) > total
        assert not fits_in_shared_cache(GPU_RTX_4090, total)


@given(bytes_moved=st.floats(min_value=1e3, max_value=1e10),
       ops=st.floats(min_value=1e3, max_value=1e12))
@settings(max_examples=50, deadline=None)
def test_kernel_time_is_positive_and_monotone(bytes_moved, ops):
    model = KernelCostModel(GPU_RTX_4060TI)
    base = model.time_kernel(Kernel("k", bytes_moved, 0, ops)).execution_time
    double = model.time_kernel(Kernel("k", 2 * bytes_moved, 0, 2 * ops)).execution_time
    assert base > 0 and double >= base
