"""Tests for NTT-friendly prime generation and roots of unity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import modmath
from repro.core.primes import (
    find_ntt_prime_near,
    find_primitive_root,
    find_root_of_unity,
    generate_ntt_primes,
    is_prime,
    prime_basis_product,
)


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 97, 65537, (1 << 61) - 1])
    def test_known_primes(self, prime):
        assert is_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 100, 561, 65539 * 3, (1 << 40) + 2])
    def test_known_composites(self, composite):
        assert not is_prime(composite)


class TestGeneration:
    @pytest.mark.parametrize("ring_degree", [64, 256, 1024])
    @pytest.mark.parametrize("bits", [25, 30, 45])
    def test_congruence_and_size(self, ring_degree, bits):
        primes = generate_ntt_primes(4, bits, ring_degree)
        assert len(set(primes)) == 4
        for p in primes:
            assert is_prime(p)
            assert p % (2 * ring_degree) == 1
            assert p.bit_length() in (bits, bits + 1)

    def test_exclusion_respected(self):
        first = generate_ntt_primes(2, 28, 256)
        second = generate_ntt_primes(2, 28, 256, exclude=first)
        assert not set(first) & set(second)

    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(1, 28, 100)

    def test_rejects_tiny_bit_size(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(1, 8, 1024)

    def test_find_near_target(self):
        target = 2**28
        prime = find_ntt_prime_near(target, 512)
        assert is_prime(prime) and prime % 1024 == 1
        assert abs(prime - target) < 2**20

    def test_find_near_excludes(self):
        target = 2**28
        first = find_ntt_prime_near(target, 512)
        second = find_ntt_prime_near(target, 512, exclude=[first])
        assert first != second

    def test_basis_product(self):
        primes = generate_ntt_primes(3, 25, 64)
        assert prime_basis_product(primes) == primes[0] * primes[1] * primes[2]


class TestRoots:
    @pytest.mark.parametrize("ring_degree", [64, 256])
    def test_root_of_unity_order(self, ring_degree):
        q = generate_ntt_primes(1, 28, ring_degree)[0]
        order = 2 * ring_degree
        psi = find_root_of_unity(order, q)
        assert modmath.pow_mod(psi, order, q) == 1
        assert modmath.pow_mod(psi, order // 2, q) == q - 1

    def test_primitive_root_generates_group(self):
        q = 257
        g = find_primitive_root(q)
        seen = set()
        value = 1
        for _ in range(q - 1):
            value = (value * g) % q
            seen.add(value)
        assert len(seen) == q - 1

    def test_root_of_unity_rejects_bad_order(self):
        q = generate_ntt_primes(1, 28, 64)[0]
        bad_order = 3
        while (q - 1) % bad_order == 0:
            bad_order += 2
        with pytest.raises(ValueError):
            find_root_of_unity(bad_order, q)


@given(st.integers(min_value=3, max_value=10))
@settings(max_examples=8, deadline=None)
def test_generated_primes_are_distinct_property(count):
    primes = generate_ntt_primes(count, 24, 64)
    assert len(set(primes)) == count
