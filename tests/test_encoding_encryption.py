"""Tests for canonical-embedding encoding and RLWE encryption/decryption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.encoding import CKKSEncoder, rotation_group
from repro.ckks.encryption import SymmetricEncryptor, decode, encode
from repro.ckks.params import CKKSParameters
from tests.conftest import assert_close


class TestEncoder:
    encoder = CKKSEncoder(ring_degree=256)

    def test_roundtrip_real(self):
        values = np.linspace(-1, 1, 32)
        decoded = self.encoder.decode(self.encoder.encode(values, 2**30), 2**30, 32)
        assert_close(decoded.real, values, 1e-6)

    def test_roundtrip_complex(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=16) + 1j * rng.normal(size=16)
        decoded = self.encoder.decode(self.encoder.encode(values, 2**30), 2**30, 16)
        assert_close(decoded, values, 1e-6)

    def test_sparse_replication(self):
        values = np.array([1.0, -2.0])
        expanded = self.encoder.expand_message(values)
        assert len(expanded) == 128
        assert_close(expanded[:2], values, 1e-12)
        assert_close(expanded[2:4], values, 1e-12)

    def test_padding_to_power_of_two(self):
        expanded = self.encoder.expand_message([1.0, 2.0, 3.0])
        assert expanded[3] == 0.0
        assert expanded[4] == 1.0

    def test_rejects_oversized_message(self):
        with pytest.raises(ValueError):
            self.encoder.encode(np.zeros(200), 2**30)

    def test_rejects_empty_message(self):
        with pytest.raises(ValueError):
            self.encoder.encode([], 2**30)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            self.encoder.encode([1.0], 0)

    def test_rotation_group_orbit(self):
        group = rotation_group(256)
        assert len(set(group.tolist())) == 128
        assert all(g % 2 == 1 for g in group)

    def test_encode_diagonal_not_replicated(self):
        rng = np.random.default_rng(1)
        diag = rng.normal(size=128) + 1j * rng.normal(size=128)
        coeffs = self.encoder.encode_diagonal(diag, 2**30)
        decoded = self.encoder.decode(coeffs, 2**30, 128)
        assert_close(decoded, diag, 1e-5)

    def test_higher_scale_improves_precision(self):
        values = np.array([0.1234567, -0.7654321])
        low = self.encoder.decode(self.encoder.encode(values, 2**12), 2**12, 2)
        high = self.encoder.decode(self.encoder.encode(values, 2**30), 2**30, 2)
        assert np.max(np.abs(high.real - values)) < np.max(np.abs(low.real - values))


class TestEncodePlaintext:
    def test_encode_defaults(self, context):
        pt = encode(context, [0.5, -0.5])
        assert pt.limb_count == len(context.moduli)
        assert pt.scale == context.scale
        assert pt.encoded_length == 2

    def test_encode_limits_limbs(self, context):
        pt = encode(context, [1.0], limb_count=2)
        assert pt.limb_count == 2

    def test_decode_matches_input(self, context):
        values = np.array([0.25, -0.125, 1.0, 0.0])
        assert_close(decode(context, encode(context, values)).real, values, 1e-6)


class TestEncryption:
    def test_public_key_roundtrip(self, context, encryptor, decryptor, rng):
        values = rng.uniform(-1, 1, 16)
        ct = encryptor.encrypt_values(values)
        assert_close(decryptor.decrypt_values(ct, 16).real, values)

    def test_fresh_ciphertext_metadata(self, context, encryptor):
        ct = encryptor.encrypt_values([1.0, 2.0])
        assert ct.limb_count == len(context.moduli)
        assert ct.level == context.max_level
        assert ct.slots == context.slots
        assert ct.encoded_length == 2

    def test_symmetric_encryption_roundtrip(self, context, keys, decryptor, rng):
        values = rng.uniform(-1, 1, 8)
        ct = SymmetricEncryptor(context, keys.secret_key, seed=3).encrypt(
            encode(context, values)
        )
        assert_close(decryptor.decrypt_values(ct, 8).real, values)

    def test_complex_messages(self, context, encryptor, decryptor, rng):
        values = rng.uniform(-0.5, 0.5, 8) + 1j * rng.uniform(-0.5, 0.5, 8)
        ct = encryptor.encrypt_values(values)
        assert_close(decryptor.decrypt_values(ct, 8), values)

    def test_symmetric_noise_smaller_than_public(self, context, keys, encryptor, decryptor, rng):
        values = rng.uniform(-1, 1, 8)
        sym = SymmetricEncryptor(context, keys.secret_key, seed=4).encrypt(
            encode(context, values)
        )
        pub = encryptor.encrypt_values(values)
        sym_err = np.max(np.abs(decryptor.decrypt_values(sym, 8).real - values))
        pub_err = np.max(np.abs(decryptor.decrypt_values(pub, 8).real - values))
        assert sym_err <= pub_err * 2  # symmetric encryption is at least as clean

    def test_lower_level_encryption(self, context, encryptor, decryptor):
        ct = encryptor.encrypt_values([0.5], limb_count=3)
        assert ct.limb_count == 3
        assert_close(decryptor.decrypt_values(ct, 1).real, [0.5])


@given(st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=1, max_size=32))
@settings(max_examples=25, deadline=None)
def test_encoder_roundtrip_property(values):
    encoder = CKKSEncoder(ring_degree=128)
    decoded = encoder.decode(encoder.encode(values, 2**32), 2**32, len(values))
    assert np.max(np.abs(decoded.real - np.asarray(values))) < 1e-6


def test_parameter_validation_errors():
    with pytest.raises(ValueError):
        CKKSParameters(ring_degree=100, mult_depth=3, scale_bits=28)
    with pytest.raises(ValueError):
        CKKSParameters(ring_degree=1024, mult_depth=0, scale_bits=28)
    with pytest.raises(ValueError):
        CKKSParameters(ring_degree=1024, mult_depth=3, scale_bits=70)
    with pytest.raises(ValueError):
        CKKSParameters(ring_degree=1024, mult_depth=3, scale_bits=28, dnum=9)


def test_parameter_derived_quantities():
    params = CKKSParameters(ring_degree=1 << 12, mult_depth=8, scale_bits=30, dnum=3)
    assert params.slots == 1 << 11
    assert params.limb_count == 9
    assert params.digit_size == 3
    assert params.special_limb_count == 3
    assert params.describe() == "[12, 8, 30, 3]"
    assert params.key_switching_key_bytes() == 2 * 3 * 12 * (1 << 12) * 8
    resized = params.with_overrides(mult_depth=5)
    assert resized.mult_depth == 5 and resized.ring_degree == params.ring_degree
