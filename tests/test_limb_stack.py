"""Tests for the flat limb-stack data plane and its pool accounting.

Covers the §III-D allocation-strategy comparison (array-per-limb versus
flattened), zero-copy limb views, exact internal fragmentation, the
batched modmath kernels against their per-limb references, and the
stacked NTT against the per-limb engines.
"""

import json

import numpy as np
import pytest

from repro.bench.reporting import BenchmarkTable
from repro.core import modmath
from repro.core.limb import Limb, LimbFormat, VectorGPU
from repro.core.limb_stack import LimbStack
from repro.core.memory import (
    STRATEGY_ARRAY_PER_LIMB,
    STRATEGY_FLATTENED,
    FusedFootprintError,
    MemoryPool,
    OutOfDeviceMemory,
)
from repro.core.ntt import get_engine, get_stacked_engine
from repro.core.primes import generate_ntt_primes
from repro.core.rns_poly import RNSPoly

N = 64
PRIMES = generate_ntt_primes(3, 28, N)
BIG_PRIMES = generate_ntt_primes(2, 40, N)  # double-word (hi/lo) backend
HUGE_PRIMES = generate_ntt_primes(2, 63, N)  # exact (object) backend


def random_stack(moduli, seed=0):
    rng = np.random.default_rng(seed)
    rows = [rng.integers(0, q, N) for q in moduli]
    return LimbStack.from_rows(moduli, rows)


def merged_rows(data):
    """Per-limb residue rows of a stack, merging dword digit planes."""
    return modmath.dword_merge(data) if modmath.is_dword_stack(data) else data


class TestBatchedKernels:
    """The stack_* kernels must agree with the per-limb vec_* routines."""

    @pytest.mark.parametrize(
        "moduli", [PRIMES, BIG_PRIMES, HUGE_PRIMES],
        ids=["fast", "dword", "exact"],
    )
    def test_elementwise_ops_match_per_limb(self, moduli):
        a = random_stack(moduli, 1)
        b = random_stack(moduli, 2)
        col = a.moduli_col
        a_rows, b_rows = merged_rows(a.data), merged_rows(b.data)
        checks = {
            "add": (modmath.stack_add_mod(a.data, b.data, col), modmath.vec_add_mod),
            "sub": (modmath.stack_sub_mod(a.data, b.data, col), modmath.vec_sub_mod),
            "mul": (modmath.stack_mul_mod(a.data, b.data, col), modmath.vec_mul_mod),
        }
        for name, (result, reference) in checks.items():
            rows = merged_rows(result)
            for i, q in enumerate(moduli):
                expected = reference(
                    modmath.as_residue_array(a_rows[i], q),
                    modmath.as_residue_array(b_rows[i], q),
                    q,
                )
                assert [int(x) for x in rows[i]] == [int(x) for x in expected], name

    def test_scalar_and_neg_ops(self):
        a = random_stack(PRIMES, 3)
        col = a.moduli_col
        scalars = [5, 7, 11]
        scaled = modmath.stack_scalar_mod(a.data, scalars, col)
        negated = modmath.stack_neg_mod(a.data, col)
        for i, q in enumerate(PRIMES):
            assert [int(x) for x in scaled[i]] == [
                (int(x) * scalars[i]) % q for x in a.data[i]
            ]
            assert [int(x) for x in negated[i]] == [(-int(x)) % q for x in a.data[i]]

    def test_dot_product_fusion_matches_sequential(self):
        pairs = [(random_stack(PRIMES, s).data, random_stack(PRIMES, s + 10).data)
                 for s in range(5)]  # > 4 terms exercises the overflow guard
        col = modmath.moduli_column(PRIMES)
        fused = modmath.stack_dot_mod(pairs, col)
        expected = None
        for x, y in pairs:
            term = modmath.stack_mul_mod(x, y, col)
            expected = term if expected is None else modmath.stack_add_mod(
                expected, term, col)
        assert np.array_equal(fused, expected)

    def test_switch_modulus_matches_per_limb(self):
        rng = np.random.default_rng(4)
        q_from = PRIMES[-1]
        row = modmath.as_residue_array(rng.integers(0, q_from, N), q_from)
        col = modmath.moduli_column(PRIMES[:-1])
        switched = modmath.stack_switch_modulus(row, q_from, col)
        for i, q in enumerate(PRIMES[:-1]):
            expected = modmath.vec_switch_modulus(row, q_from, q)
            assert [int(x) for x in switched[i]] == [int(x) for x in expected]


class TestStackedNTT:
    @pytest.mark.parametrize(
        "moduli", [PRIMES, BIG_PRIMES, HUGE_PRIMES],
        ids=["fast", "dword", "exact"],
    )
    def test_matches_per_limb_engines(self, moduli):
        stack = random_stack(moduli, 5)
        engine = get_stacked_engine(N, tuple(moduli))
        forward = merged_rows(engine.forward(stack.data))
        roundtrip = merged_rows(engine.inverse(engine.forward(stack.data)))
        source = merged_rows(stack.data)
        for i, q in enumerate(moduli):
            reference = get_engine(N, q).forward(source[i])
            assert [int(x) for x in forward[i]] == [int(x) for x in reference]
            assert [int(x) for x in roundtrip[i]] == [int(x) for x in source[i]]

    def test_poly_transform_is_loop_free_path(self):
        poly, _ = _random_poly(6)
        eval_poly = poly.to_evaluation()
        back = eval_poly.to_coefficient()
        assert back.to_int_coefficients() == poly.to_int_coefficients()
        assert eval_poly.fmt is LimbFormat.EVALUATION


def _random_poly(seed):
    rng = np.random.default_rng(seed)
    coeffs = [int(v) for v in rng.integers(-50, 50, N)]
    return RNSPoly.from_int_coefficients(N, PRIMES, coeffs), coeffs


class TestLimbStackStorage:
    def test_limb_views_are_zero_copy(self):
        poly, _ = _random_poly(7)
        limbs = poly.limbs
        for i, limb in enumerate(limbs):
            assert limb.modulus == PRIMES[i]
            assert np.shares_memory(limb.data, poly.stack.data)
            assert limb.buffer is not None and not limb.buffer.managed

    def test_fused_rescale_matches_single(self):
        a, _ = _random_poly(8)
        b, _ = _random_poly(9)
        fused = RNSPoly.rescale_last_many([a, b])
        assert fused[0].to_int_coefficients() == a.rescale_last().to_int_coefficients()
        assert fused[1].to_int_coefficients() == b.rescale_last().to_int_coefficients()

    def test_multiply_accumulate_matches_sequential(self):
        a = _random_poly(10)[0].to_evaluation()
        b = _random_poly(11)[0].to_evaluation()
        c = _random_poly(12)[0].to_evaluation()
        d = _random_poly(13)[0].to_evaluation()
        fused = RNSPoly.multiply_accumulate([(a, b), (c, d)])
        expected = a.multiply(b).add(c.multiply(d))
        assert fused.to_int_coefficients() == expected.to_int_coefficients()

    def test_mixed_format_limbs_rejected(self):
        coeff = Limb(PRIMES[0], modmath.zeros(N, PRIMES[0]), LimbFormat.COEFFICIENT)
        evald = Limb(PRIMES[1], modmath.zeros(N, PRIMES[1]), LimbFormat.EVALUATION)
        with pytest.raises(ValueError):
            RNSPoly(N, PRIMES[:2], [coeff, evald])


class TestPoolAccountingUnderLimbStack:
    """Satellite: pool accounting for the two §III-D allocation strategies."""

    def test_flattened_vs_array_per_limb_footprints(self):
        # A limb size that granularity rounding actually penalizes.
        ring_degree = 72  # 576 bytes/limb -> rounds to 1024 per limb
        pool_stack = MemoryPool(granularity=1024)
        limbs = [Limb.zero(ring_degree, q, pool=pool_stack) for q in PRIMES]
        pool_flat = MemoryPool(granularity=1024)
        flat = LimbStack.zeros(ring_degree, PRIMES, pool=pool_flat)
        # Three per-limb buffers round up three times (3 x 1024); the flat
        # 1728-byte buffer rounds once (2048).
        assert pool_stack.bytes_in_use == 3 * 1024
        assert pool_flat.bytes_in_use == 2048
        assert pool_flat.internal_fragmentation() < pool_stack.internal_fragmentation()
        assert pool_flat.internal_fragmentation() == pytest.approx(320 / 2048)
        assert pool_stack.internal_fragmentation() == pytest.approx(1344 / 3072)
        assert pool_flat.bytes_by_strategy() == {STRATEGY_FLATTENED: 2048}
        assert set(pool_stack.bytes_by_strategy()) == {STRATEGY_ARRAY_PER_LIMB}
        del limbs, flat  # keep the RAII buffers alive until the asserts ran

    def test_exact_internal_fragmentation(self):
        pool = MemoryPool(granularity=256)
        pool.allocate(1000)
        assert pool.bytes_in_use == 1024
        assert pool.internal_fragmentation() == pytest.approx(24 / 1024)
        by_strategy = pool.fragmentation_by_strategy()
        assert by_strategy[STRATEGY_ARRAY_PER_LIMB] == pytest.approx(24 / 1024)

    def test_view_backed_limbs_release_leak_free(self):
        pool = MemoryPool()
        stack = LimbStack.zeros(N, PRIMES, pool=pool)
        charged = pool.bytes_in_use
        assert charged == stack.footprint_bytes()  # one flat allocation
        views = [stack.limb_view(i, LimbFormat.COEFFICIENT) for i in range(3)]
        assert pool.bytes_in_use == charged  # views charge nothing
        for view in views:
            view.release()
        assert pool.bytes_in_use == charged  # releasing views frees nothing
        stack.release()
        assert pool.bytes_in_use == 0
        assert pool.allocation_count == pool.free_count == 1

    def test_out_of_device_memory_on_capacity_bound_pool(self):
        pool = MemoryPool(capacity_bytes=2 * N * 8)
        resident = LimbStack.zeros(N, PRIMES[:2], pool=pool)  # fills the device
        with pytest.raises(OutOfDeviceMemory):
            LimbStack.zeros(N, PRIMES[2:], pool=pool)
        resident.release()
        extra = LimbStack.zeros(N, PRIMES[2:], pool=pool)  # fits after release
        assert extra.footprint_bytes() == N * 8

    def test_fuse_over_budget_raises_descriptive_footprint_error(self):
        # Room for the two members but not for the fused (B*L, N) buffer.
        pool = MemoryPool(capacity_bytes=3 * N * 8, granularity=1)
        stacks = [
            LimbStack.zeros(N, PRIMES[:1], pool=pool),
            LimbStack.zeros(N, PRIMES[1:2], pool=pool),
        ]
        allocations_before = pool.allocation_count
        with pytest.raises(FusedFootprintError) as info:
            LimbStack.fuse(stacks, pool=pool)
        message = str(info.value)
        assert "B=2" in message and "L=1" in message and f"N={N}" in message
        assert str(pool.capacity_bytes) in message
        # The pre-check fired before any allocation or row copying.
        assert pool.allocation_count == allocations_before
        # FusedFootprintError still is an OutOfDeviceMemory for old callers.
        assert isinstance(info.value, OutOfDeviceMemory)

    def test_fuse_fits_exactly_at_the_budget(self):
        pool = MemoryPool(capacity_bytes=4 * N * 8, granularity=1)
        stacks = [
            LimbStack.zeros(N, PRIMES[:1], pool=pool),
            LimbStack.zeros(N, PRIMES[1:2], pool=pool),
        ]
        fused = LimbStack.fuse(stacks, pool=pool)  # 2 + 2 rows == capacity
        assert fused.num_limbs == 2

    def test_limb_copy_stays_pool_charged(self):
        # Satellite fix: copies of pool-charged limbs must not escape
        # footprint accounting.
        pool = MemoryPool()
        limb = Limb.zero(N, PRIMES[0], pool=pool)
        baseline = pool.bytes_in_use
        copy = limb.copy()
        assert copy.buffer is not None and copy.buffer.pool is pool
        assert pool.bytes_in_use == 2 * baseline
        copy.release()
        assert pool.bytes_in_use == baseline

    def test_limb_stack_copy_stays_pool_charged(self):
        pool = MemoryPool()
        stack = LimbStack.zeros(N, PRIMES, pool=pool)
        baseline = pool.bytes_in_use
        clone = stack.copy()
        assert pool.bytes_in_use == 2 * baseline
        clone.release()
        assert pool.bytes_in_use == baseline

    def test_unmanaged_vector_still_free(self):
        pool = MemoryPool()
        vector = VectorGPU(128, pool=pool, managed=False)
        assert pool.bytes_in_use == 0
        vector.free()  # no-op


class TestBenchmarkTableJson:
    def test_to_json_round_trips(self):
        table = BenchmarkTable("t", note="n")
        table.add_row(operation="HAdd", seconds=0.5)
        payload = json.loads(table.to_json(machine="test"))
        assert payload["title"] == "t"
        assert payload["rows"] == [{"operation": "HAdd", "seconds": 0.5}]
        assert payload["machine"] == "test"
        assert payload["columns"] == ["operation", "seconds"]


# ---------------------------------------------------------------------------
# double-word (59-bit) end-to-end path
# ---------------------------------------------------------------------------


def _clear_backend_caches():
    """Flush caches that bake in the backend decision (test-only)."""
    modmath._moduli_column_cached.cache_clear()
    get_stacked_engine.cache_clear()


class TestDwordEndToEnd:
    """Paper-class 59-bit chains: dword path vs the exact object oracle."""

    @staticmethod
    def _run_hmult_rescale():
        """One seeded HMult (+relinearize +rescale) at 59-bit moduli.

        A paper-default-class parameter set (Δ = 2**59, 60-bit q_0/P) at
        reduced depth and ring degree so the functional backend can run it.
        """
        from repro.ckks.params import CKKSParameters
        from repro.ckks.context import Context
        from repro.ckks.keys import KeyGenerator
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.encryption import Encryptor

        params = CKKSParameters(
            ring_degree=1 << 8, mult_depth=2, scale_bits=59, dnum=2,
            first_mod_bits=60, secret_hamming_weight=16,
            label="paper-59-reduced",
        )
        context = Context(params)
        keys = KeyGenerator(context, seed=101).generate([])
        evaluator = Evaluator(context, keys)
        encryptor = Encryptor(context, keys.public_key, seed=55)
        rng = np.random.default_rng(9)
        a = encryptor.encrypt_values(rng.uniform(-1, 1, 8))
        b = encryptor.encrypt_values(rng.uniform(-1, 1, 8))
        return context, evaluator.multiply(a, b)

    def test_dword_path_matches_object_oracle(self, monkeypatch):
        context, fast = self._run_hmult_rescale()
        assert context.numeric_backend == modmath.BACKEND_DWORD
        # The hot path ran on uint64 digit planes, not Python integers.
        for poly in (fast.c0, fast.c1):
            assert modmath.is_dword_stack(poly.stack.data)
            assert poly.stack.data.dtype == np.uint64
        # Re-run the identical computation on the exact object oracle by
        # forcing every modulus above 2**31 off the dword backend.
        monkeypatch.setattr(
            modmath, "DWORD_MODULUS_LIMIT", modmath.FAST_MODULUS_LIMIT
        )
        _clear_backend_caches()
        try:
            with pytest.warns(RuntimeWarning, match="object backend"):
                oracle_context, exact = self._run_hmult_rescale()
            assert oracle_context.numeric_backend == modmath.BACKEND_OBJECT
            assert exact.c0.stack.data.dtype == np.object_
            assert fast.scale == exact.scale
            for fast_poly, exact_poly in (
                (fast.c0, exact.c0), (fast.c1, exact.c1)
            ):
                merged = modmath.dword_merge(fast_poly.stack.data)
                assert merged.tolist() == [
                    [int(x) for x in row] for row in exact_poly.stack.data
                ]
        finally:
            monkeypatch.undo()
            _clear_backend_caches()

    def test_59_bit_context_reports_dword_backend(self):
        context, product = self._run_hmult_rescale()
        assert context.numeric_backend == modmath.BACKEND_DWORD
        assert product.c0.stack.buffer.element_bytes == 16
        assert product.c0.footprint_bytes() == (
            2 * product.c0.ring_degree * 16
        )
