"""Tests for the flat limb-stack data plane and its pool accounting.

Covers the §III-D allocation-strategy comparison (array-per-limb versus
flattened), zero-copy limb views, exact internal fragmentation, the
batched modmath kernels against their per-limb references, and the
stacked NTT against the per-limb engines.
"""

import json

import numpy as np
import pytest

from repro.bench.reporting import BenchmarkTable
from repro.core import modmath
from repro.core.limb import Limb, LimbFormat, VectorGPU
from repro.core.limb_stack import LimbStack
from repro.core.memory import (
    STRATEGY_ARRAY_PER_LIMB,
    STRATEGY_FLATTENED,
    FusedFootprintError,
    MemoryPool,
    OutOfDeviceMemory,
)
from repro.core.ntt import get_engine, get_stacked_engine
from repro.core.primes import generate_ntt_primes
from repro.core.rns_poly import RNSPoly

N = 64
PRIMES = generate_ntt_primes(3, 28, N)
BIG_PRIMES = generate_ntt_primes(2, 40, N)  # exact (object) backend


def random_stack(moduli, seed=0):
    rng = np.random.default_rng(seed)
    rows = [rng.integers(0, q, N) for q in moduli]
    return LimbStack.from_rows(moduli, rows)


class TestBatchedKernels:
    """The stack_* kernels must agree with the per-limb vec_* routines."""

    @pytest.mark.parametrize("moduli", [PRIMES, BIG_PRIMES], ids=["fast", "exact"])
    def test_elementwise_ops_match_per_limb(self, moduli):
        a = random_stack(moduli, 1)
        b = random_stack(moduli, 2)
        col = a.moduli_col
        checks = {
            "add": (modmath.stack_add_mod(a.data, b.data, col), modmath.vec_add_mod),
            "sub": (modmath.stack_sub_mod(a.data, b.data, col), modmath.vec_sub_mod),
            "mul": (modmath.stack_mul_mod(a.data, b.data, col), modmath.vec_mul_mod),
        }
        for name, (result, reference) in checks.items():
            for i, q in enumerate(moduli):
                expected = reference(
                    modmath.as_residue_array(a.data[i], q),
                    modmath.as_residue_array(b.data[i], q),
                    q,
                )
                assert [int(x) for x in result[i]] == [int(x) for x in expected], name

    def test_scalar_and_neg_ops(self):
        a = random_stack(PRIMES, 3)
        col = a.moduli_col
        scalars = [5, 7, 11]
        scaled = modmath.stack_scalar_mod(a.data, scalars, col)
        negated = modmath.stack_neg_mod(a.data, col)
        for i, q in enumerate(PRIMES):
            assert [int(x) for x in scaled[i]] == [
                (int(x) * scalars[i]) % q for x in a.data[i]
            ]
            assert [int(x) for x in negated[i]] == [(-int(x)) % q for x in a.data[i]]

    def test_dot_product_fusion_matches_sequential(self):
        pairs = [(random_stack(PRIMES, s).data, random_stack(PRIMES, s + 10).data)
                 for s in range(5)]  # > 4 terms exercises the overflow guard
        col = modmath.moduli_column(PRIMES)
        fused = modmath.stack_dot_mod(pairs, col)
        expected = None
        for x, y in pairs:
            term = modmath.stack_mul_mod(x, y, col)
            expected = term if expected is None else modmath.stack_add_mod(
                expected, term, col)
        assert np.array_equal(fused, expected)

    def test_switch_modulus_matches_per_limb(self):
        rng = np.random.default_rng(4)
        q_from = PRIMES[-1]
        row = modmath.as_residue_array(rng.integers(0, q_from, N), q_from)
        col = modmath.moduli_column(PRIMES[:-1])
        switched = modmath.stack_switch_modulus(row, q_from, col)
        for i, q in enumerate(PRIMES[:-1]):
            expected = modmath.vec_switch_modulus(row, q_from, q)
            assert [int(x) for x in switched[i]] == [int(x) for x in expected]


class TestStackedNTT:
    @pytest.mark.parametrize("moduli", [PRIMES, BIG_PRIMES], ids=["fast", "exact"])
    def test_matches_per_limb_engines(self, moduli):
        stack = random_stack(moduli, 5)
        engine = get_stacked_engine(N, tuple(moduli))
        forward = engine.forward(stack.data)
        roundtrip = engine.inverse(forward)
        for i, q in enumerate(moduli):
            reference = get_engine(N, q).forward(stack.data[i])
            assert [int(x) for x in forward[i]] == [int(x) for x in reference]
            assert [int(x) for x in roundtrip[i]] == [int(x) for x in stack.data[i]]

    def test_poly_transform_is_loop_free_path(self):
        poly, _ = _random_poly(6)
        eval_poly = poly.to_evaluation()
        back = eval_poly.to_coefficient()
        assert back.to_int_coefficients() == poly.to_int_coefficients()
        assert eval_poly.fmt is LimbFormat.EVALUATION


def _random_poly(seed):
    rng = np.random.default_rng(seed)
    coeffs = [int(v) for v in rng.integers(-50, 50, N)]
    return RNSPoly.from_int_coefficients(N, PRIMES, coeffs), coeffs


class TestLimbStackStorage:
    def test_limb_views_are_zero_copy(self):
        poly, _ = _random_poly(7)
        limbs = poly.limbs
        for i, limb in enumerate(limbs):
            assert limb.modulus == PRIMES[i]
            assert np.shares_memory(limb.data, poly.stack.data)
            assert limb.buffer is not None and not limb.buffer.managed

    def test_fused_rescale_matches_single(self):
        a, _ = _random_poly(8)
        b, _ = _random_poly(9)
        fused = RNSPoly.rescale_last_many([a, b])
        assert fused[0].to_int_coefficients() == a.rescale_last().to_int_coefficients()
        assert fused[1].to_int_coefficients() == b.rescale_last().to_int_coefficients()

    def test_multiply_accumulate_matches_sequential(self):
        a = _random_poly(10)[0].to_evaluation()
        b = _random_poly(11)[0].to_evaluation()
        c = _random_poly(12)[0].to_evaluation()
        d = _random_poly(13)[0].to_evaluation()
        fused = RNSPoly.multiply_accumulate([(a, b), (c, d)])
        expected = a.multiply(b).add(c.multiply(d))
        assert fused.to_int_coefficients() == expected.to_int_coefficients()

    def test_mixed_format_limbs_rejected(self):
        coeff = Limb(PRIMES[0], modmath.zeros(N, PRIMES[0]), LimbFormat.COEFFICIENT)
        evald = Limb(PRIMES[1], modmath.zeros(N, PRIMES[1]), LimbFormat.EVALUATION)
        with pytest.raises(ValueError):
            RNSPoly(N, PRIMES[:2], [coeff, evald])


class TestPoolAccountingUnderLimbStack:
    """Satellite: pool accounting for the two §III-D allocation strategies."""

    def test_flattened_vs_array_per_limb_footprints(self):
        # A limb size that granularity rounding actually penalizes.
        ring_degree = 72  # 576 bytes/limb -> rounds to 1024 per limb
        pool_stack = MemoryPool(granularity=1024)
        limbs = [Limb.zero(ring_degree, q, pool=pool_stack) for q in PRIMES]
        pool_flat = MemoryPool(granularity=1024)
        flat = LimbStack.zeros(ring_degree, PRIMES, pool=pool_flat)
        # Three per-limb buffers round up three times (3 x 1024); the flat
        # 1728-byte buffer rounds once (2048).
        assert pool_stack.bytes_in_use == 3 * 1024
        assert pool_flat.bytes_in_use == 2048
        assert pool_flat.internal_fragmentation() < pool_stack.internal_fragmentation()
        assert pool_flat.internal_fragmentation() == pytest.approx(320 / 2048)
        assert pool_stack.internal_fragmentation() == pytest.approx(1344 / 3072)
        assert pool_flat.bytes_by_strategy() == {STRATEGY_FLATTENED: 2048}
        assert set(pool_stack.bytes_by_strategy()) == {STRATEGY_ARRAY_PER_LIMB}
        del limbs, flat  # keep the RAII buffers alive until the asserts ran

    def test_exact_internal_fragmentation(self):
        pool = MemoryPool(granularity=256)
        pool.allocate(1000)
        assert pool.bytes_in_use == 1024
        assert pool.internal_fragmentation() == pytest.approx(24 / 1024)
        by_strategy = pool.fragmentation_by_strategy()
        assert by_strategy[STRATEGY_ARRAY_PER_LIMB] == pytest.approx(24 / 1024)

    def test_view_backed_limbs_release_leak_free(self):
        pool = MemoryPool()
        stack = LimbStack.zeros(N, PRIMES, pool=pool)
        charged = pool.bytes_in_use
        assert charged == stack.footprint_bytes()  # one flat allocation
        views = [stack.limb_view(i, LimbFormat.COEFFICIENT) for i in range(3)]
        assert pool.bytes_in_use == charged  # views charge nothing
        for view in views:
            view.release()
        assert pool.bytes_in_use == charged  # releasing views frees nothing
        stack.release()
        assert pool.bytes_in_use == 0
        assert pool.allocation_count == pool.free_count == 1

    def test_out_of_device_memory_on_capacity_bound_pool(self):
        pool = MemoryPool(capacity_bytes=2 * N * 8)
        resident = LimbStack.zeros(N, PRIMES[:2], pool=pool)  # fills the device
        with pytest.raises(OutOfDeviceMemory):
            LimbStack.zeros(N, PRIMES[2:], pool=pool)
        resident.release()
        extra = LimbStack.zeros(N, PRIMES[2:], pool=pool)  # fits after release
        assert extra.footprint_bytes() == N * 8

    def test_fuse_over_budget_raises_descriptive_footprint_error(self):
        # Room for the two members but not for the fused (B*L, N) buffer.
        pool = MemoryPool(capacity_bytes=3 * N * 8, granularity=1)
        stacks = [
            LimbStack.zeros(N, PRIMES[:1], pool=pool),
            LimbStack.zeros(N, PRIMES[1:2], pool=pool),
        ]
        allocations_before = pool.allocation_count
        with pytest.raises(FusedFootprintError) as info:
            LimbStack.fuse(stacks, pool=pool)
        message = str(info.value)
        assert "B=2" in message and "L=1" in message and f"N={N}" in message
        assert str(pool.capacity_bytes) in message
        # The pre-check fired before any allocation or row copying.
        assert pool.allocation_count == allocations_before
        # FusedFootprintError still is an OutOfDeviceMemory for old callers.
        assert isinstance(info.value, OutOfDeviceMemory)

    def test_fuse_fits_exactly_at_the_budget(self):
        pool = MemoryPool(capacity_bytes=4 * N * 8, granularity=1)
        stacks = [
            LimbStack.zeros(N, PRIMES[:1], pool=pool),
            LimbStack.zeros(N, PRIMES[1:2], pool=pool),
        ]
        fused = LimbStack.fuse(stacks, pool=pool)  # 2 + 2 rows == capacity
        assert fused.num_limbs == 2

    def test_limb_copy_stays_pool_charged(self):
        # Satellite fix: copies of pool-charged limbs must not escape
        # footprint accounting.
        pool = MemoryPool()
        limb = Limb.zero(N, PRIMES[0], pool=pool)
        baseline = pool.bytes_in_use
        copy = limb.copy()
        assert copy.buffer is not None and copy.buffer.pool is pool
        assert pool.bytes_in_use == 2 * baseline
        copy.release()
        assert pool.bytes_in_use == baseline

    def test_limb_stack_copy_stays_pool_charged(self):
        pool = MemoryPool()
        stack = LimbStack.zeros(N, PRIMES, pool=pool)
        baseline = pool.bytes_in_use
        clone = stack.copy()
        assert pool.bytes_in_use == 2 * baseline
        clone.release()
        assert pool.bytes_in_use == baseline

    def test_unmanaged_vector_still_free(self):
        pool = MemoryPool()
        vector = VectorGPU(128, pool=pool, managed=False)
        assert pool.bytes_in_use == 0
        vector.free()  # no-op


class TestBenchmarkTableJson:
    def test_to_json_round_trips(self):
        table = BenchmarkTable("t", note="n")
        table.add_row(operation="HAdd", seconds=0.5)
        payload = json.loads(table.to_json(machine="test"))
        assert payload["title"] == "t"
        assert payload["rows"] == [{"operation": "HAdd", "seconds": 0.5}]
        assert payload["machine"] == "test"
        assert payload["columns"] == ["operation", "seconds"]
