"""Unit and property tests for the modular-arithmetic primitives (Table III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import modmath
from repro.core.primes import generate_ntt_primes

PRIMES = {
    "small": generate_ntt_primes(1, 20, 64)[0],
    "fast": generate_ntt_primes(1, 30, 1024)[0],
    "word": generate_ntt_primes(1, 59, 1024)[0],
}


@pytest.fixture(params=sorted(PRIMES))
def modulus(request):
    return PRIMES[request.param]


class TestScalarHelpers:
    def test_add_mod_wraps(self, modulus):
        assert modmath.add_mod(modulus - 1, 1, modulus) == 0

    def test_add_mod_no_wrap(self, modulus):
        assert modmath.add_mod(2, 3, modulus) == 5

    def test_sub_mod_wraps(self, modulus):
        assert modmath.sub_mod(0, 1, modulus) == modulus - 1

    def test_neg_mod_zero(self, modulus):
        assert modmath.neg_mod(0, modulus) == 0

    def test_neg_mod_inverse(self, modulus):
        assert modmath.add_mod(5 % modulus, modmath.neg_mod(5 % modulus, modulus), modulus) == 0

    def test_mul_mod_matches_python(self, modulus):
        a, b = modulus - 3, modulus - 7
        assert modmath.mul_mod(a, b, modulus) == (a * b) % modulus

    def test_inv_mod(self, modulus):
        for value in (2, 3, 12345 % modulus):
            inv = modmath.inv_mod(value, modulus)
            assert (value * inv) % modulus == 1

    def test_pow_mod_fermat(self, modulus):
        assert modmath.pow_mod(7, modulus - 1, modulus) == 1


class TestBarrett:
    def test_reduce_matches_modulo(self, modulus):
        reducer = modmath.BarrettReducer.create(modulus)
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = int(rng.integers(0, modulus)) * int(rng.integers(0, modulus))
            assert reducer.reduce(x) == x % modulus

    def test_mul(self, modulus):
        reducer = modmath.BarrettReducer.create(modulus)
        assert reducer.mul(modulus - 1, modulus - 1) == ((modulus - 1) ** 2) % modulus

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            modmath.BarrettReducer.create(1)

    def test_multiplication_count_matches_table_iii(self):
        counts = modmath.BarrettReducer.create(97).multiplication_count()
        assert counts == {"wide": 2, "low": 1}


class TestMontgomery:
    def test_roundtrip(self, modulus):
        reducer = modmath.MontgomeryReducer.create(modulus)
        for value in (0, 1, 12345 % modulus, modulus - 1):
            assert reducer.from_montgomery(reducer.to_montgomery(value)) == value

    def test_mul_plain(self, modulus):
        reducer = modmath.MontgomeryReducer.create(modulus)
        a, b = 987654321 % modulus, 123456789 % modulus
        assert reducer.mul_plain(a, b) == (a * b) % modulus

    def test_requires_odd_modulus(self):
        with pytest.raises(ValueError):
            modmath.MontgomeryReducer.create(2**20)

    def test_multiplication_count_matches_table_iii(self):
        counts = modmath.MontgomeryReducer.create(97).multiplication_count()
        assert counts == {"wide": 2, "low": 1}


class TestShoup:
    def test_matches_modmul(self, modulus):
        rng = np.random.default_rng(1)
        for _ in range(50):
            operand = int(rng.integers(0, modulus))
            multiplier = modmath.ShoupMultiplier.create(operand, modulus)
            a = int(rng.integers(0, modulus))
            assert multiplier.mul(a) == (a * operand) % modulus

    def test_rejects_out_of_range_operand(self, modulus):
        with pytest.raises(ValueError):
            modmath.ShoupMultiplier.create(modulus, modulus)

    def test_multiplication_count_matches_table_iii(self):
        counts = modmath.ShoupMultiplier.create(5, 97).multiplication_count()
        assert counts == {"wide": 1, "low": 2}


class TestVectorised:
    @pytest.fixture(params=["fast", "word"])
    def vec_modulus(self, request):
        return PRIMES[request.param]

    def _random(self, q, n=257, seed=0):
        rng = np.random.default_rng(seed)
        values = [int(rng.integers(0, q)) for _ in range(n)]
        return modmath.as_residue_array(np.array(values, dtype=object), q), values

    def test_dtype_selection(self):
        assert modmath.dtype_for_modulus(PRIMES["fast"]) == np.uint64
        assert modmath.dtype_for_modulus(PRIMES["word"]) == np.object_

    def test_vec_add(self, vec_modulus):
        q = vec_modulus
        a, av = self._random(q, seed=1)
        b, bv = self._random(q, seed=2)
        out = modmath.vec_add_mod(a, b, q)
        assert [int(x) for x in out] == [(x + y) % q for x, y in zip(av, bv)]

    def test_vec_sub(self, vec_modulus):
        q = vec_modulus
        a, av = self._random(q, seed=3)
        b, bv = self._random(q, seed=4)
        out = modmath.vec_sub_mod(a, b, q)
        assert [int(x) for x in out] == [(x - y) % q for x, y in zip(av, bv)]

    def test_vec_mul(self, vec_modulus):
        q = vec_modulus
        a, av = self._random(q, seed=5)
        b, bv = self._random(q, seed=6)
        out = modmath.vec_mul_mod(a, b, q)
        assert [int(x) for x in out] == [(x * y) % q for x, y in zip(av, bv)]

    def test_vec_mul_scalar(self, vec_modulus):
        q = vec_modulus
        a, av = self._random(q, seed=7)
        out = modmath.vec_mul_scalar_mod(a, 12345, q)
        assert [int(x) for x in out] == [(x * 12345) % q for x in av]

    def test_vec_neg(self, vec_modulus):
        q = vec_modulus
        a, av = self._random(q, seed=8)
        out = modmath.vec_neg_mod(a, q)
        assert [int(x) for x in out] == [(-x) % q for x in av]

    def test_switch_modulus_centred(self):
        q_from, q_to = PRIMES["fast"], PRIMES["small"]
        values = [1, 2, q_from - 1, q_from - 2, q_from // 2]
        arr = modmath.as_residue_array(np.array(values, dtype=object), q_from)
        out = modmath.vec_switch_modulus(arr, q_from, q_to)
        half = q_from >> 1
        expected = [((v - q_from) if v > half else v) % q_to for v in values]
        assert [int(x) for x in out] == expected

    def test_as_residue_array_negative_values(self):
        q = PRIMES["fast"]
        arr = modmath.as_residue_array(np.array([-1, -q, q + 5], dtype=object), q)
        assert [int(x) for x in arr] == [q - 1, 0, 5]

    def test_zeros(self, vec_modulus):
        z = modmath.zeros(16, vec_modulus)
        assert len(z) == 16
        assert all(int(x) == 0 for x in z)


@given(a=st.integers(min_value=0, max_value=2**59), b=st.integers(min_value=0, max_value=2**59))
@settings(max_examples=200, deadline=None)
def test_barrett_reduce_property(a, b):
    q = PRIMES["word"]
    reducer = modmath.BarrettReducer.create(q)
    assert reducer.mul(a % q, b % q) == ((a % q) * (b % q)) % q


@given(a=st.integers(min_value=0, max_value=2**62), b=st.integers(min_value=0, max_value=2**62))
@settings(max_examples=200, deadline=None)
def test_montgomery_matches_barrett_property(a, b):
    q = PRIMES["word"]
    barrett = modmath.BarrettReducer.create(q)
    montgomery = modmath.MontgomeryReducer.create(q)
    assert montgomery.mul_plain(a % q, b % q) == barrett.mul(a % q, b % q)


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_vector_add_neg_is_zero_property(values):
    q = PRIMES["fast"]
    arr = modmath.as_residue_array(np.array(values, dtype=object), q)
    total = modmath.vec_add_mod(arr, modmath.vec_neg_mod(arr, q), q)
    assert all(int(x) == 0 for x in total)


# ---------------------------------------------------------------------------
# double-word (hi/lo digit plane) stack kernels
# ---------------------------------------------------------------------------

#: Moduli straddling the dword regime: just above the single-word cutoff
#: (2**31), at the paper's word size (59 bits) and just under the dword
#: cap (2**62).
DWORD_PRIME_SETS = {
    "near-2^31": generate_ntt_primes(3, 32, 64),
    "59-bit": generate_ntt_primes(3, 59, 64),
    "near-2^62": generate_ntt_primes(3, 62, 64),
}


def test_backend_decision_boundaries():
    assert modmath.backend_for_moduli([(1 << 31) - 1]) == modmath.BACKEND_UINT64
    assert modmath.backend_for_moduli([1 << 31]) == modmath.BACKEND_DWORD
    assert modmath.backend_for_moduli([(1 << 62) - 1]) == modmath.BACKEND_DWORD
    assert modmath.backend_for_moduli([1 << 62]) == modmath.BACKEND_OBJECT
    # Mixed chains classify on the widest modulus.
    assert modmath.backend_for_moduli([17, 1 << 40]) == modmath.BACKEND_DWORD


class TestDwordStackKernels:
    """Dword ``stack_*`` kernels are bit-identical to the object oracle."""

    N = 64

    def _operands(self, name, seed):
        moduli = DWORD_PRIME_SETS[name]
        col = modmath.moduli_column(moduli)
        assert modmath.stack_backend(col) == modmath.BACKEND_DWORD
        obj_col = np.array([int(q) for q in moduli], dtype=object).reshape(-1, 1)
        rng = np.random.default_rng(seed)
        a_obj = np.array(
            [[int(x) for x in rng.integers(0, q, self.N)] for q in moduli],
            dtype=object,
        )
        b_obj = np.array(
            [[int(x) for x in rng.integers(0, q, self.N)] for q in moduli],
            dtype=object,
        )
        a = modmath.coerce_stack(a_obj, col)
        b = modmath.coerce_stack(b_obj, col)
        assert modmath.is_dword_stack(a) and modmath.is_dword_stack(b)
        return moduli, col, obj_col, a_obj, b_obj, a, b

    @staticmethod
    def _assert_same(dword_out, obj_out):
        assert modmath.is_dword_stack(dword_out)
        merged = modmath.dword_merge(dword_out)
        assert merged.tolist() == [[int(x) for x in row] for row in obj_out]

    @pytest.mark.parametrize("name", sorted(DWORD_PRIME_SETS))
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_elementwise_matches_object(self, name, seed):
        _, col, obj_col, a_obj, b_obj, a, b = self._operands(name, seed)
        self._assert_same(
            modmath.stack_add_mod(a, b, col), (a_obj + b_obj) % obj_col
        )
        self._assert_same(
            modmath.stack_sub_mod(a, b, col), (a_obj - b_obj) % obj_col
        )
        self._assert_same(
            modmath.stack_mul_mod(a, b, col), (a_obj * b_obj) % obj_col
        )
        self._assert_same(modmath.stack_neg_mod(a, col), (-a_obj) % obj_col)

    @pytest.mark.parametrize("name", sorted(DWORD_PRIME_SETS))
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_constant_multiplies_match_object(self, name, seed):
        moduli, col, obj_col, a_obj, _, a, _ = self._operands(name, seed)
        rng = np.random.default_rng(seed + 1)
        scalars = [int(rng.integers(0, q)) for q in moduli]
        obj_scalars = np.array(scalars, dtype=object).reshape(-1, 1)
        self._assert_same(
            modmath.stack_scalar_mod(a, scalars, col),
            (a_obj * obj_scalars) % obj_col,
        )
        constants = modmath.scalar_column(scalars, col)
        shoup = modmath.dword_shoup_column(constants, col)
        self._assert_same(
            modmath.stack_shoup_mul(a, constants, shoup, col),
            (a_obj * obj_scalars) % obj_col,
        )

    @pytest.mark.parametrize("name", sorted(DWORD_PRIME_SETS))
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_dot_product_matches_object(self, name, seed):
        _, col, obj_col, *_ = self._operands(name, seed)
        pairs, expected = [], None
        for term in range(5):  # > 4 terms exercises accumulator handling
            _, _, _, x_obj, y_obj, x, y = self._operands(name, seed + 7 * term)
            pairs.append((x, y))
            product = (x_obj * y_obj) % obj_col
            expected = (
                product if expected is None else (expected + product) % obj_col
            )
        self._assert_same(modmath.stack_dot_mod(pairs, col), expected)

    @pytest.mark.parametrize("name", sorted(DWORD_PRIME_SETS))
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_switch_modulus_matches_object(self, name, seed):
        moduli, _, _, a_obj, *_ = self._operands(name, seed)
        q_from = moduli[-1]
        target = moduli[:-1]
        col = modmath.moduli_column(target)
        row = modmath.coerce_stack(
            a_obj[-1:].copy(), modmath.moduli_column([q_from])
        )[0]
        switched = modmath.stack_switch_modulus(row, q_from, col)
        half = q_from >> 1
        centred = [
            int(v) - q_from if int(v) > half else int(v) for v in a_obj[-1]
        ]
        expected = np.array(
            [[c % q for c in centred] for q in target], dtype=object
        )
        self._assert_same(switched, expected)

    def test_merge_split_roundtrip(self):
        rng = np.random.default_rng(0)
        merged = rng.integers(0, 1 << 62, (4, 32), dtype=np.uint64)
        planes = modmath.dword_split(merged)
        assert planes.shape == (4, 2, 32)
        assert int(planes[..., 0, :].max()) < (1 << 30)  # hi digit of < 2**62
        assert int(planes[..., 1, :].max()) <= 0xFFFFFFFF
        assert np.array_equal(modmath.dword_merge(planes), merged)
