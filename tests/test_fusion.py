"""Tests of the executable trace IR and the auto-fusion pass.

Covers the PR-8 tentpole acceptance criteria:

* ``TraceProgram`` replay is bit-identical to eager execution across all
  three numeric backends (uint64 / dword / object);
* fused execution is bit-identical to eager for HMult+rescale, a
  key-switched rotation, and a B=8 batched drain;
* fusion conserves ``int_ops`` and never increases ``bytes_moved``;

plus the satellite corner cases: multi-consumer intermediates,
cross-device chains under ``on_device``, overlapping-but-not-equal byte
ranges, interleaved writers, the buffer-identity generation tag, and the
zero-work untraced hot path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CKKSSession
from repro.ckks.params import CKKSParameters
from repro.core import modmath
from repro.core.dispatch import (
    Dispatcher,
    KernelTrace,
    TraceProgram,
    get_dispatcher,
)
from repro.core.fusion import FusedProgram, fuse_trace
from repro.core.ntt import get_stacked_engine
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel


@pytest.fixture(scope="module")
def fusion_session():
    """A small session for executable-trace tests (own context)."""
    params = CKKSParameters(
        ring_degree=1 << 12, mult_depth=4, scale_bits=28, dnum=2,
        first_mod_bits=30, label="fusion-12-4",
    )
    return CKKSSession.create(
        params, rotations=[1], seed=7, register_default=False
    )


def _add_const(value):
    def replay(reads, writes, _v=np.uint64(value)):
        np.add(reads[0], _v, out=writes[0])
    return replay


def _mul_const(value):
    def replay(reads, writes, _v=np.uint64(value)):
        np.multiply(reads[0], _v, out=writes[0])
    return replay


def _emit(dispatcher, tag, src, out, replay, *, ops=1.0):
    """Eagerly run ``replay`` and record it as one elementwise kernel."""
    replay((src,), (out,))
    dispatcher.elementwise(
        tag, reads=(src,), writes=(out,), ops_per_element=ops, replay=replay
    )


class TestFusionLegality:
    def test_simple_chain_fuses_and_verifies(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty_like(a)
        with d.record(executable=True) as trace:
            _emit(d, "step1", a, t, _add_const(1))
            _emit(d, "step2", t, out, _mul_const(3))
        result = fuse_trace(trace)
        assert [c.members for c in result.chains] == [(0, 1)]
        assert result.events_after == 1
        fused = result.fused_trace.events[0].kernel
        assert fused.launches == 1.0
        assert fused.name == "fused(step1[4]+step2[4])"
        # Arithmetic is conserved; the intermediate's traffic is not.
        assert result.fused_trace.int_ops == trace.int_ops
        assert result.fused_trace.bytes_moved < trace.bytes_moved
        prog = result.program()
        prog.verify()
        assert np.array_equal(prog.output(out), (a + 1) * 3)

    def test_multi_consumer_intermediate_blocks_fusion(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t, out1, out2 = (np.empty_like(a) for _ in range(3))
        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            _emit(d, "consume1", t, out1, _mul_const(2))
            _emit(d, "consume2", t, out2, _mul_const(5))
        result = fuse_trace(trace)
        assert result.chains == []
        result.program().verify()  # degenerates to a plain replay

    def test_overlapping_but_not_equal_ranges_block_fusion(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty((2, 8), dtype=np.uint64)
        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            # The consumer reads only half the produced interval.
            _emit(d, "partial", t[:2], out, _mul_const(2))
        assert fuse_trace(trace).chains == []

    def test_cross_device_chain_blocks_fusion(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty_like(a)
        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            with d.on_device(1):
                _emit(d, "consume", t, out, _mul_const(2))
        assert fuse_trace(trace).chains == []
        # Same chain on one device fuses (the control experiment).
        with d.record(executable=True) as same_device:
            _emit(d, "produce", a, t, _add_const(1))
            _emit(d, "consume", t, out, _mul_const(2))
        assert len(fuse_trace(same_device).chains) == 1

    def test_interleaved_writer_blocks_fusion(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty_like(a)
        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            _emit(d, "clobber", a, t, _add_const(9))  # rewrites the interval
            _emit(d, "consume", t, out, _mul_const(2))
        result = fuse_trace(trace)
        # produce->consume is illegal (clobber interleaves); the
        # clobber->consume edge itself is a legal adjacent chain.
        assert [c.members for c in result.chains] == [(1, 2)]
        result.program().verify()

    def test_operand_clobber_vetoes_chain_extension(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty_like(a)
        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            # Writes the producer's READ operand between producer and
            # consumer: moving the producer to the tail would read the
            # new value, so the chain must not form.
            _emit(d, "retarget", t, a, _mul_const(1))
            _emit(d, "consume", t, out, _mul_const(2))
        result = fuse_trace(trace)
        assert (0, 2) not in [c.members for c in result.chains]
        result.program().verify()

    def test_in_place_tail_fuses_with_live_output(self):
        d = get_dispatcher()
        a = np.arange(32, dtype=np.uint64).reshape(4, 8)
        t = np.empty_like(a)
        out = np.empty_like(a)

        def inplace_scale(reads, writes):
            np.multiply(reads[0], np.uint64(7), out=writes[0])

        with d.record(executable=True) as trace:
            _emit(d, "produce", a, t, _add_const(1))
            # The consumer rewrites the identical interval in place (the
            # rescale/ModDown tail shape) ...
            inplace_scale((t,), (t,))
            d.elementwise("scale", reads=(t,), writes=(t,),
                          ops_per_element=1.0, replay=inplace_scale)
            # ... and a later reader sees the chain output.
            _emit(d, "after", t, out, _add_const(0))
        result = fuse_trace(trace)
        assert result.chains and result.chains[0].members[:2] == (0, 1)
        prog = result.program()
        prog.verify()
        assert np.array_equal(prog.output(out), (a + 1) * 7)

    def test_fusion_requires_executable_trace(self):
        with pytest.raises(ValueError, match="executable"):
            fuse_trace(KernelTrace())


class TestBufferIdentityGeneration:
    def test_stale_state_from_reused_id_is_discarded(self):
        # Python reuses addresses: a dict keyed on id() alone can hand a
        # new allocation the last-writer intervals of a freed one whose
        # finalize callback has not run yet.  The generation tag (weakref
        # to the exact allocation) must detect this and start fresh.
        d = get_dispatcher()
        with d.record() as trace:
            src = np.ones((2, 4), dtype=np.uint64)
            victim = np.zeros((2, 4), dtype=np.uint64)
            d.elementwise("writer", reads=(src,), writes=(victim,),
                          ops_per_element=1.0)
            stale = trace._buffers[id(victim)]
            assert stale.writes  # the victim carries a last-writer record
            # Simulate id reuse: plant the victim's state under a fresh
            # allocation's id, as if the finalize callback were delayed.
            fresh = np.zeros((2, 4), dtype=np.uint64)
            trace._buffers[id(fresh)] = stale
            out = np.zeros((2, 4), dtype=np.uint64)
            d.elementwise("reader", reads=(fresh,), writes=(out,),
                          ops_per_element=1.0)
        # Without the generation tag the reader would inherit a fabricated
        # dependency on the writer event.
        assert trace.events[-1].deps == ()

    def test_free_and_reallocate_between_kernels(self):
        d = get_dispatcher()
        src = np.ones((2, 4), dtype=np.uint64)
        with d.record() as trace:
            for _ in range(32):
                tmp = np.zeros((2, 4), dtype=np.uint64)
                out = np.empty_like(tmp)
                d.elementwise("probe", reads=(tmp,), writes=(out,),
                              ops_per_element=1.0)
                # A fresh allocation must never arrive with writers.
                assert trace.events[-1].deps == ()
                d.elementwise("dirty", reads=(src,), writes=(tmp,),
                              ops_per_element=1.0)
                del tmp, out  # freed before the next identical allocation


class TestUntracedHotPath:
    def test_untraced_execution_invokes_no_emitter(self, fusion_session,
                                                   monkeypatch):
        # Satellite micro-assert: with no trace active, the data plane
        # must not even *call* the dispatcher emitters (the recording
        # early-outs are hoisted to the call sites).
        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("emitter invoked on the untraced hot path")

        for name in ("elementwise", "transform", "base_conversion", "copy",
                     "emit"):
            monkeypatch.setattr(Dispatcher, name, boom)
        rng = np.random.default_rng(3)
        ct_a = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        ct_b = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        (ct_a * ct_b).rescale()
        ct_a.rotate(1)
        batch = fusion_session.batch([ct_a, ct_b])
        batch * batch


class TestReplayAcrossBackends:
    """TraceProgram bit-identity on the uint64, dword and object planes."""

    @staticmethod
    def _record_hmult(scale_bits, first_mod_bits, stage_launches=False):
        from repro.ckks.context import Context
        from repro.ckks.encryption import Encryptor
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator

        params = CKKSParameters(
            ring_degree=1 << 8, mult_depth=2, scale_bits=scale_bits,
            dnum=2, first_mod_bits=first_mod_bits, secret_hamming_weight=16,
            label=f"fusion-backend-{scale_bits}",
        )
        context = Context(params)
        keys = KeyGenerator(context, seed=101).generate([])
        evaluator = Evaluator(context, keys)
        encryptor = Encryptor(context, keys.public_key, seed=55)
        rng = np.random.default_rng(9)
        a = encryptor.encrypt_values(rng.uniform(-1, 1, 8))
        b = encryptor.encrypt_values(rng.uniform(-1, 1, 8))
        with get_dispatcher().record(
            executable=True, stage_launches=stage_launches
        ) as trace:
            evaluator.multiply(a, b)
        return context, trace

    @staticmethod
    def _clear_backend_caches():
        modmath._moduli_column_cached.cache_clear()
        get_stacked_engine.cache_clear()

    def test_uint64_backend_replay(self):
        context, trace = self._record_hmult(28, 30)
        assert context.numeric_backend == modmath.BACKEND_UINT64
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_dword_backend_replay(self):
        context, trace = self._record_hmult(59, 60)
        assert context.numeric_backend == modmath.BACKEND_DWORD
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_object_backend_replay(self, monkeypatch):
        monkeypatch.setattr(
            modmath, "DWORD_MODULUS_LIMIT", modmath.FAST_MODULUS_LIMIT
        )
        self._clear_backend_caches()
        try:
            with pytest.warns(RuntimeWarning, match="object backend"):
                context, trace = self._record_hmult(59, 60)
            assert context.numeric_backend == modmath.BACKEND_OBJECT
            TraceProgram(trace).verify()
            fuse_trace(trace).program().verify()
        finally:
            monkeypatch.undo()
            self._clear_backend_caches()


class TestFusedEndToEnd:
    def test_hmult_rescale_replay_and_fusion(self, fusion_session):
        rng = np.random.default_rng(11)
        ct_a = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        ct_b = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        with fusion_session.trace(executable=True) as trace:
            (ct_a * ct_b).rescale()
        prog = TraceProgram(trace)
        prog.verify()
        prog.run()  # idempotent: buffers re-seed, second run stays clean
        prog.verify()
        result = fuse_trace(trace)
        result.program().verify()
        summary = result.summary()
        assert summary["int_ops_after"] == pytest.approx(
            summary["int_ops_before"]
        )
        assert summary["bytes_moved_after"] <= summary["bytes_moved_before"]

    def test_keyswitched_rotation_replay_and_fusion(self, fusion_session):
        rng = np.random.default_rng(13)
        ct = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        with fusion_session.trace(executable=True) as trace:
            ct.rotate(1)
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_batched_b8_drain_replay_and_fusion(self, fusion_session):
        rng = np.random.default_rng(17)
        cts = [
            fusion_session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(8)
        ]
        batch = fusion_session.batch(cts)
        with fusion_session.trace(executable=True) as trace:
            batch * batch
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_elementwise_workload_actually_fuses(self, fusion_session):
        rng = np.random.default_rng(19)
        ct_a = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        ct_b = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        ct_c = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        with fusion_session.trace(executable=True) as trace:
            (ct_a * 1.5 + ct_b) - ct_c
        result = fuse_trace(trace)
        assert len(result.chains) > 0
        assert result.events_after < result.events_before
        prog = result.program()
        prog.verify()
        # The fused trace prices and schedules like any recorded trace,
        # and fusion never slows the modeled stream down.
        pricer = TraceCostModel(GPU_RTX_4090)
        fused = pricer.price(result.fused_trace)
        unfused = pricer.price(trace)
        assert fused.kernel_count < unfused.kernel_count
        assert fused.makespan <= unfused.makespan * (1 + 1e-9)

    def test_trace_program_rejects_partial_ir(self):
        d = get_dispatcher()
        a = np.zeros((2, 4), dtype=np.uint64)
        out = np.empty_like(a)
        with d.record(executable=True) as trace:
            d.elementwise("no-replay", reads=(a,), writes=(out,),
                          ops_per_element=1.0)  # no replay thunk
        with pytest.raises(ValueError, match="non-replayable"):
            TraceProgram(trace)


class TestStageGranularCapture:
    """Per-stage launch recording: the unfused GPU baseline (§III-F.4).

    ``stage_launches=True`` records every fast-path transform as its
    ``log2 N`` butterfly-stage launches (plus the iNTT scale), registered
    as fusion groups so the pass can merge each run back into the
    engine's stage-fused mega-kernel.
    """

    def test_stage_trace_replay_and_group_fusion(self, fusion_session):
        rng = np.random.default_rng(29)
        ct_a = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        ct_b = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        with fusion_session.trace(
            executable=True, stage_launches=True
        ) as trace:
            (ct_a * ct_b).rescale()
        names = [e.kernel.name for e in trace.events]
        assert any("-stage" in n for n in names)
        assert trace._fusion_groups
        TraceProgram(trace).verify()
        result = fuse_trace(trace)
        summary = result.summary()
        # Every recorded stage run is swallowed whole by a chain and
        # replaced by the fused transform; arithmetic is conserved and
        # the per-stage global-memory round trips drop out.
        assert summary["stage_groups_fused"] == len(trace._fusion_groups)
        assert result.events_after < result.events_before / 3
        assert summary["int_ops_after"] == pytest.approx(
            summary["int_ops_before"]
        )
        assert summary["bytes_moved_after"] < summary["bytes_moved_before"]
        result.program().verify()

    def test_stage_trace_keyswitch_rotation(self, fusion_session):
        rng = np.random.default_rng(31)
        ct = fusion_session.encrypt(rng.uniform(-1, 1, 16))
        with fusion_session.trace(
            executable=True, stage_launches=True
        ) as trace:
            ct.rotate(1)
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_stage_trace_batched_drain(self, fusion_session):
        rng = np.random.default_rng(37)
        cts = [
            fusion_session.encrypt(rng.uniform(-1, 1, 16)) for _ in range(8)
        ]
        batch = fusion_session.batch(cts)
        with fusion_session.trace(
            executable=True, stage_launches=True
        ) as trace:
            batch * batch
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_reference_stage_matches_fused_engine(self):
        from repro.ckks.context import Context

        n = 1 << 10
        params = CKKSParameters(
            ring_degree=n, mult_depth=3, scale_bits=28, dnum=2,
            first_mod_bits=30, secret_hamming_weight=16,
            label="stage-ref-10",
        )
        moduli = tuple(Context(params).extended_moduli)
        engine = get_stacked_engine(n, moduli)
        rng = np.random.default_rng(23)
        x = rng.integers(
            0, np.array(moduli, dtype=np.uint64)[:, None],
            size=(len(moduli), n), dtype=np.uint64,
        )
        staged = x.copy()
        for s in range(n.bit_length() - 1):
            engine.reference_stage(staged, s, forward=True)
        assert np.array_equal(staged, engine.forward(x.copy(), consume=True))
        back = staged.copy()
        for s in range(n.bit_length() - 1):
            engine.reference_stage(back, s, forward=False)
        engine.reference_scale(back)
        assert np.array_equal(
            back, engine.inverse(staged.copy(), consume=True)
        )
        assert np.array_equal(back, x)  # exact round trip

    def test_dword_backend_falls_back_to_fused_transforms(self):
        context, trace = TestReplayAcrossBackends._record_hmult(
            59, 60, stage_launches=True
        )
        assert context.numeric_backend == modmath.BACKEND_DWORD
        names = [e.kernel.name for e in trace.events]
        # Off the uint64 fast path the stage expansion declines and the
        # single fused transform events record instead; the backend-generic
        # inner-product unbundling still applies.
        assert not any("-stage" in n for n in names)
        assert any(n.startswith(("ntt[", "intt[")) for n in names)
        assert any(n.startswith("ks-mul") for n in names)
        TraceProgram(trace).verify()
        fuse_trace(trace).program().verify()

    def test_untraced_dispatcher_is_not_stage_granular(self):
        d = get_dispatcher()
        assert d.stage_granular is False
        with d.record(executable=True) as _:
            assert d.stage_granular is False
        with d.record(executable=True, stage_launches=True) as _:
            assert d.stage_granular is True
            with d.suppressed():
                assert d.stage_granular is False
        assert d.stage_granular is False
