"""Tests of the FIDESlib / Phantom / OpenFHE performance models.

These assert the qualitative "shape" results the reproduction targets:
ordering between backends, speedup magnitudes, figure trends, and the
Table VIII feature matrix.
"""

import pytest

from repro.ckks.params import PARAMETER_SETS
from repro.gpu.platforms import ALL_GPUS, GPU_RTX_4060TI, GPU_RTX_4090, GPU_V100
from repro.perf.costmodel import CKKSOperationCosts
from repro.perf.feature_matrix import FEATURE_MATRIX, feature_counts, feature_table
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.openfhe_model import OpenFHEModel
from repro.perf.phantom_model import PhantomModel, UnsupportedOperation
from repro.perf.workloads import BootstrapWorkload, LogisticRegressionWorkload

PARAMS = PARAMETER_SETS["paper-default"]
TABLE_V_OPS = ("ScalarAdd", "PtAdd", "HAdd", "ScalarMult", "PtMult", "Rescale", "HRotate", "HMult")


@pytest.fixture(scope="module")
def models():
    return {
        "fideslib": FIDESlibModel(GPU_RTX_4090, PARAMS, limb_batch=4),
        "phantom": PhantomModel(GPU_RTX_4090, PARAMS),
        "openfhe": OpenFHEModel(PARAMS, variant="baseline"),
        "hexl": OpenFHEModel(PARAMS, variant="hexl"),
    }


class TestCostModel:
    def test_costs_scale_with_limbs(self):
        costs = CKKSOperationCosts(PARAMS, limb_batch=4)
        assert costs.hmult(30).bytes_moved > costs.hmult(10).bytes_moved
        assert costs.hmult(30).int_ops > costs.hmult(10).int_ops

    def test_hsquare_cheaper_than_hmult(self):
        costs = CKKSOperationCosts(PARAMS, limb_batch=4)
        assert costs.hsquare(30).bytes_moved < costs.hmult(30).bytes_moved

    def test_fusion_reduces_bytes(self):
        fused = CKKSOperationCosts(PARAMS, limb_batch=4, fusion=True)
        unfused = CKKSOperationCosts(PARAMS, limb_batch=4, fusion=False)
        assert fused.rescale(30).bytes_moved < unfused.rescale(30).bytes_moved
        assert fused.key_switch(30).bytes_moved < unfused.key_switch(30).bytes_moved

    def test_limb_batching_increases_kernel_count(self):
        batched = CKKSOperationCosts(PARAMS, limb_batch=2)
        monolithic = CKKSOperationCosts(PARAMS, limb_batch=None)
        assert batched.hmult(30).kernel_count > monolithic.hmult(30).kernel_count

    def test_hoisting_cheaper_than_individual_rotations(self):
        costs = CKKSOperationCosts(PARAMS, limb_batch=4)
        hoisted = costs.hoisted_rotations(30, 8).bytes_moved
        individual = costs.hrotate(30).bytes_moved * 8
        assert hoisted < individual

    def test_scaled_costs(self):
        costs = CKKSOperationCosts(PARAMS, limb_batch=4)
        base = costs.hadd(10)
        tripled = base.scaled(3.0)
        assert tripled.bytes_moved == pytest.approx(3 * base.bytes_moved)
        assert tripled.kernel_count == 3 * base.kernel_count


class TestTableV:
    def test_fideslib_fastest_on_every_operation(self, models):
        for op in TABLE_V_OPS:
            fides = models["fideslib"].time_operation(op)
            assert fides <= models["openfhe"].time_operation(op)
            assert fides <= models["hexl"].time_operation(op)
            if models["phantom"].supports(op):
                assert fides <= models["phantom"].time_operation(op)

    def test_hmult_speedup_exceeds_100x_over_multithreaded_cpu(self, models):
        speedup = models["hexl"].time_operation("HMult") / models["fideslib"].time_operation("HMult")
        assert speedup > 100  # paper: "more than 100x"

    def test_rescale_speedup_exceeds_30x(self, models):
        speedup = models["hexl"].time_operation("Rescale") / models["fideslib"].time_operation("Rescale")
        assert speedup > 30

    def test_phantom_lacks_fideslib_exclusive_ops(self, models):
        for op in ("ScalarAdd", "ScalarMult", "HSquare", "Bootstrap"):
            assert not models["phantom"].supports(op)
        with pytest.raises(UnsupportedOperation):
            models["phantom"].operation_cost("ScalarAdd")

    def test_hmult_in_millisecond_range_on_4090(self, models):
        assert 3e-4 < models["fideslib"].time_operation("HMult") < 3e-3

    def test_hexl_faster_than_baseline_on_heavy_ops(self, models):
        for op in ("HMult", "HRotate", "Rescale", "ScalarMult"):
            assert models["hexl"].time_operation(op) < models["openfhe"].time_operation(op)


class TestFigures:
    def test_fig4_fideslib_beats_phantom_per_limb(self):
        for platform in (GPU_RTX_4090, GPU_RTX_4060TI):
            fides = FIDESlibModel(platform, PARAMS, limb_batch=2)
            phantom = PhantomModel(platform, PARAMS)
            for limbs in (16, 32, 64, 128):
                assert fides.time_operation("NTT", limbs=limbs) < \
                    phantom.time_operation("NTT", limbs=limbs)

    def test_fig4_phantom_degrades_with_working_set(self):
        phantom = PhantomModel(GPU_RTX_4060TI, PARAMS)
        per_limb_16 = phantom.time_operation("NTT", limbs=16) / 16
        per_limb_128 = phantom.time_operation("NTT", limbs=128) / 128
        assert per_limb_128 > per_limb_16

    def test_fig5_ptmult_rescale_roughly_linear_in_limbs(self):
        model = FIDESlibModel(GPU_RTX_4090, PARAMS, limb_batch=4)
        t10 = model.time_operation("PtMultRescale", limbs=10)
        t20 = model.time_operation("PtMultRescale", limbs=20)
        t30 = model.time_operation("PtMultRescale", limbs=30)
        assert 1.5 < t20 / t10 < 2.5
        assert 1.3 < t30 / t20 < 1.9

    def test_fig5_fig6_platform_ordering(self):
        for op in ("PtMultRescale", "HMult"):
            times = [FIDESlibModel(p, PARAMS, limb_batch=4).time_operation(op, limbs=30)
                     for p in ALL_GPUS]
            # ALL_GPUS is ordered by ascending memory bandwidth.
            assert all(a >= b for a, b in zip(times, times[1:]))

    def test_fig6_hmult_increases_with_level(self):
        model = FIDESlibModel(GPU_V100, PARAMS, limb_batch=4)
        times = [model.time_operation("HMult", limbs=l) for l in (5, 10, 20, 30)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_fig7_limb_batch_sweep_has_finite_optimum(self):
        model = FIDESlibModel(GPU_RTX_4090, PARAMS)
        best = model.best_limb_batch()
        assert best in (1, 2, 3, 4, 6, 8, 10, 12)

    def test_fig7_large_batches_hurt_small_cache_gpus(self):
        model = FIDESlibModel(GPU_RTX_4060TI, PARAMS)
        assert model.with_limb_batch(12).time_operation("HMult") > \
            model.with_limb_batch(2).time_operation("HMult")

    def test_fig8_small_params_favour_high_clock(self):
        small = PARAMETER_SETS["fig8-13-5-36-2"]
        t4060 = FIDESlibModel(GPU_RTX_4060TI, small, limb_batch=2).time_operation("HMult")
        tv100 = FIDESlibModel(GPU_V100, small, limb_batch=2).time_operation("HMult")
        assert t4060 < tv100  # kernel-latency bound favours the faster clock

    def test_fig8_large_params_favour_bandwidth(self):
        large = PARAMETER_SETS["fig8-17-44-59-4"]
        t4090 = FIDESlibModel(GPU_RTX_4090, large, limb_batch=4).time_operation("HMult")
        t4060 = FIDESlibModel(GPU_RTX_4060TI, large, limb_batch=4).time_operation("HMult")
        assert t4090 < t4060


class TestTableVI:
    @pytest.mark.parametrize("slots", [64, 512, 16384, 32768])
    def test_bootstrap_speedup_over_70x(self, models, slots):
        workload = BootstrapWorkload(PARAMS, slots)
        gpu = models["fideslib"].execute(workload.build(models["fideslib"].costs)).total_time
        cpu = models["hexl"].time_cost(workload.build(models["hexl"].costs))
        assert cpu / gpu > 70  # paper: "no less than 70x"

    def test_bootstrap_time_grows_with_slots(self, models):
        times = []
        for slots in (64, 512, 16384, 32768):
            workload = BootstrapWorkload(PARAMS, slots)
            times.append(models["fideslib"].execute(workload.build(models["fideslib"].costs)).total_time)
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_amortized_time_drops_with_slots(self, models):
        amortized = []
        for slots in (64, 512, 16384, 32768):
            workload = BootstrapWorkload(PARAMS, slots)
            total = models["fideslib"].execute(workload.build(models["fideslib"].costs)).total_time
            amortized.append(workload.amortized_time_us(total))
        assert all(a > b for a, b in zip(amortized, amortized[1:]))

    def test_remaining_levels_decrease_with_slots(self):
        levels = [BootstrapWorkload(PARAMS, slots).remaining_levels
                  for slots in (64, 512, 16384, 32768)]
        assert all(a >= b for a, b in zip(levels, levels[1:]))
        assert levels[-1] >= 8

    def test_slots_validation(self):
        with pytest.raises(ValueError):
            BootstrapWorkload(PARAMS, 48)
        with pytest.raises(ValueError):
            BootstrapWorkload(PARAMS, PARAMS.slots * 2)


class TestTableVII:
    def test_lr_iteration_speedups(self):
        params = PARAMETER_SETS["paper-lr"]
        workload = LogisticRegressionWorkload(params)
        fides = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
        hexl = OpenFHEModel(params, variant="hexl")
        baseline = OpenFHEModel(params, variant="baseline")
        gpu = fides.execute(workload.build_iteration(fides.costs)).total_time
        cpu = baseline.time_cost(workload.build_iteration(baseline.costs))
        cpu_hexl = hexl.time_cost(workload.build_iteration(hexl.costs))
        assert cpu / gpu > 20           # paper: 67x
        assert cpu / cpu_hexl > 1.5     # paper: 3.47x

    def test_lr_iteration_with_bootstrap_dominated_by_bootstrap(self):
        params = PARAMETER_SETS["paper-lr"]
        workload = LogisticRegressionWorkload(params)
        fides = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
        iteration = fides.execute(workload.build_iteration(fides.costs)).total_time
        with_boot = fides.execute(workload.build_iteration_with_bootstrap(fides.costs)).total_time
        assert with_boot > 3 * iteration

    def test_iteration_operation_counts_positive(self):
        counts = LogisticRegressionWorkload(PARAMETER_SETS["paper-lr"]).iteration_operations()
        assert all(v > 0 for v in counts.values())
        assert "HMult" in counts and "HRotate" in counts


class TestTableVIII:
    def test_only_fideslib_interoperates_with_openfhe(self):
        interoperable = [lib.name for lib in FEATURE_MATRIX if lib.openfhe_interoperability]
        assert interoperable == ["FIDESlib"]

    def test_only_fideslib_has_integration_tests(self):
        assert [lib.name for lib in FEATURE_MATRIX if lib.integration_tests] == ["FIDESlib"]

    def test_five_libraries_support_bootstrapping(self):
        assert feature_counts()["Bootstrapping"] == 5

    def test_table_has_nine_libraries(self):
        assert len(feature_table()) == 9

    def test_fideslib_multi_gpu_is_work_in_progress(self):
        fides = next(lib for lib in FEATURE_MATRIX if lib.name == "FIDESlib")
        assert fides.multi_gpu == "WIP"
        assert fides.bootstrapping and fides.open_source and fides.unit_tests
