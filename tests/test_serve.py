"""Serving plane: bucketing, policies, dynamic batching, bit-identity.

The contract under test is the serving tentpole: a mixed-shape request
stream through :class:`repro.serve.Server` resolves every request with a
result **bit-identical** to running it alone on the sequential evaluator,
buckets never mix shapes, policy deadlines are never exceeded, and all
timing runs on the deterministic :class:`SimulatedClock` (no wall-clock
flakiness).  The same serving loop is exercised on all three backends --
functional, cost-model and tracing -- through the
:class:`~repro.api.backend.EvaluationBackend` seam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.vector import CipherVector
from repro.apps.logistic_regression import EncryptedLRScorer, sigmoid_poly
from repro.core.memory import FusedFootprintError
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel
from repro.serve import (
    BatchingPolicy,
    BucketQueue,
    OpProgram,
    Server,
    ShapeKey,
    SimulatedClock,
    shape_key_of,
)
from repro.serve.request import Request

#: 1 + 2x^2: two levels deep, no rotation keys needed.
POLY_PROGRAM = OpProgram.polynomial([1.0, 0.0, 2.0])

#: (x*x) + 0.5 written directly against the shared operator surface.
SQUARE_PROGRAM = OpProgram("square-shift", lambda x: (x * x) + 0.5)


def bitwise_equal(a: CipherVector, b: CipherVector) -> bool:
    return np.array_equal(a.handle.c0.stack.data, b.handle.c0.stack.data) and \
        np.array_equal(a.handle.c1.stack.data, b.handle.c1.stack.data)


def fresh_vector(session, rng, *, level: int | None = None) -> CipherVector:
    vector = session.encrypt(rng.uniform(-1, 1, 8))
    if level is not None and level != vector.level:
        vector = vector.at_level(level)
    return vector


# ----------------------------------------------------------------------
# bucketing
# ----------------------------------------------------------------------


class TestBucketing:
    def test_same_shape_requests_share_a_bucket(self, session, rng):
        queue = BucketQueue()
        n = session.params.ring_degree
        for _ in range(3):
            request = Request(POLY_PROGRAM, fresh_vector(session, rng),
                              arrival_time=0.0)
            queue.push(shape_key_of(request, default_ring_degree=n), request)
        assert len(queue.keys()) == 1
        assert queue.depth == 3

    def test_buckets_never_mix_shapes(self, session, rng):
        queue = BucketQueue()
        n = session.params.ring_degree
        top = session.max_level
        for level in (top, top - 1, top - 2):
            for program in (POLY_PROGRAM, SQUARE_PROGRAM):
                for _ in range(2):
                    request = Request(
                        program, fresh_vector(session, rng, level=level),
                        arrival_time=0.0,
                    )
                    queue.push(shape_key_of(request, default_ring_degree=n),
                               request)
        assert len(queue.keys()) == 6
        for key in queue.keys():
            for request in queue.requests(key):
                assert request.vector.level == key.level
                assert float(request.vector.scale) == key.scale
                assert request.program == key.program

    def test_fifo_order_and_bucket_cleanup(self, session, rng):
        queue = BucketQueue()
        n = session.params.ring_degree
        requests = [
            Request(POLY_PROGRAM, fresh_vector(session, rng), arrival_time=float(i))
            for i in range(4)
        ]
        key = shape_key_of(requests[0], default_ring_degree=n)
        for request in requests:
            queue.push(key, request)
        assert queue.oldest(key) is requests[0]
        first = queue.take(key, 3)
        assert [r.id for r in first] == [r.id for r in requests[:3]]
        assert queue.take(key, 3) == [requests[3]]
        assert queue.keys() == [] and queue.depth == 0


# ----------------------------------------------------------------------
# policy and clock
# ----------------------------------------------------------------------


class TestPolicyAndClock:
    def test_clock_is_monotone_and_deterministic(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance_to(1.0)  # no-op: already past
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_full_batch_is_ready_immediately(self, session, rng):
        policy = BatchingPolicy(max_batch_size=4, max_wait=1.0)
        request = Request(POLY_PROGRAM, fresh_vector(session, rng), arrival_time=0.0)
        timeout = policy.earliest_timeout([request])
        assert policy.ready(size=4, target=4, earliest_timeout=timeout, now=0.0)
        assert not policy.ready(size=3, target=4, earliest_timeout=timeout, now=0.5)

    def test_deadline_readiness(self, session, rng):
        policy = BatchingPolicy(max_batch_size=4, max_wait=1e-3)
        request = Request(POLY_PROGRAM, fresh_vector(session, rng), arrival_time=2.0)
        timeout = policy.earliest_timeout([request])
        assert not policy.ready(size=1, target=4, earliest_timeout=timeout,
                                now=2.0005)
        assert policy.ready(size=1, target=4, earliest_timeout=timeout, now=2.001)

    def test_per_request_deadline_tightens_timeout(self, session, rng):
        policy = BatchingPolicy(max_batch_size=4, max_wait=1.0)
        relaxed = Request(POLY_PROGRAM, fresh_vector(session, rng),
                          arrival_time=0.0)
        urgent = Request(POLY_PROGRAM, fresh_vector(session, rng),
                         arrival_time=0.1, deadline=0.25)
        assert policy.timeout_of(urgent) == 0.25
        # The bucket's obligation follows its most urgent member, which a
        # per-request deadline can make a *newer* arrival.
        assert policy.earliest_timeout([relaxed, urgent]) == 0.25

    def test_memory_budget_caps_drain_limit(self, session, rng):
        request = Request(POLY_PROGRAM, fresh_vector(session, rng), arrival_time=0.0)
        key = shape_key_of(request, default_ring_degree=session.params.ring_degree)
        member_bytes = 2 * (key.level + 1) * key.ring_degree * 8
        policy = BatchingPolicy(max_batch_size=8,
                                memory_budget_bytes=3 * member_bytes)
        assert policy.drain_limit(key) == 3
        # A budget below one member still allows singleton (unfused) drains.
        tiny = BatchingPolicy(max_batch_size=8, memory_budget_bytes=1)
        assert tiny.drain_limit(key) == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait=-1.0)
        with pytest.raises(ValueError):
            BatchingPolicy(memory_budget_bytes=0)


# ----------------------------------------------------------------------
# the server on the functional backend
# ----------------------------------------------------------------------


class TestServer:
    def test_full_batch_drains_immediately(self, session, rng):
        server = Server(session, BatchingPolicy(max_batch_size=4, max_wait=1.0))
        requests = [
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
            for _ in range(4)
        ]
        completed = server.poll()
        assert len(completed) == 4 and server.pending == 0
        for request in requests:
            assert request.done()
            assert request.response().batch_size == 4
            assert request.response().latency == 0.0
            assert bitwise_equal(request.result(), POLY_PROGRAM(request.vector))

    def test_partial_batch_waits_for_the_deadline(self, session, rng):
        clock = SimulatedClock()
        policy = BatchingPolicy(max_batch_size=4, max_wait=2e-3)
        server = Server(session, policy, clock=clock)
        requests = [
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
            for _ in range(3)
        ]
        assert server.poll() == []  # not full, not timed out
        assert server.next_timeout() == pytest.approx(2e-3)
        clock.advance_to(server.next_timeout())
        completed = server.poll()
        assert len(completed) == 3
        for request in requests:
            assert request.response().batch_size == 3
            assert request.response().latency == pytest.approx(policy.max_wait)

    def test_newer_request_deadline_drains_the_bucket_early(self, session, rng):
        """Regression: a per-request deadline earlier than the oldest
        member's timeout must pull the whole bucket's dispatch forward."""
        clock = SimulatedClock()
        policy = BatchingPolicy(max_batch_size=4, max_wait=1e-3)
        server = Server(session, policy, clock=clock)
        relaxed = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        clock.advance(1e-4)
        urgent = server.submit(POLY_PROGRAM, fresh_vector(session, rng),
                               deadline=2e-4)
        assert server.next_timeout() == pytest.approx(2e-4)
        clock.advance_to(server.next_timeout())
        server.poll()
        assert urgent.response().dispatch_time <= urgent.deadline
        assert relaxed.done()  # drained together, well within its own budget

    def test_singleton_bucket_runs_sequentially(self, session, rng):
        server = Server(session, BatchingPolicy(max_batch_size=8, max_wait=0.0))
        request = server.submit(SQUARE_PROGRAM, fresh_vector(session, rng))
        server.poll()
        assert server.metrics.batch_histogram() == {1: 1}
        assert bitwise_equal(request.result(), SQUARE_PROGRAM(request.vector))

    def test_flush_respects_drain_limit(self, session, rng):
        server = Server(session, BatchingPolicy(max_batch_size=4, max_wait=1.0))
        for _ in range(10):
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        completed = server.flush()
        assert len(completed) == 10
        assert server.metrics.batch_histogram() == {2: 1, 4: 2}

    def test_mixed_shape_randomized_stream_bit_identity(self, session):
        """The acceptance scenario: seeded random arrivals at mixed
        (level, scale) with two programs, driven purely on the simulated
        clock -- every response bit-identical to sequential evaluation,
        no bucket ever mixes shapes, no deadline ever exceeded."""
        stream_rng = np.random.default_rng(20260729)
        clock = SimulatedClock()
        policy = BatchingPolicy(max_batch_size=4, max_wait=1.5e-3)
        server = Server(session, policy, clock=clock)
        top = session.max_level
        programs = (POLY_PROGRAM, SQUARE_PROGRAM)

        requests = []
        for _ in range(24):
            level = int(stream_rng.choice([top, top - 1, top - 2]))
            program = programs[int(stream_rng.integers(len(programs)))]
            vector = fresh_vector(session, stream_rng, level=level)
            requests.append(server.submit(program, vector))
            # Shape invariant: every queued bucket is internally uniform.
            for key in server.queue.keys():
                for queued in server.queue.requests(key):
                    assert queued.vector.level == key.level
                    assert float(queued.vector.scale) == key.scale
                    assert queued.program == key.program
            # Advance to the next arrival, polling at any timeout passed.
            gap = float(stream_rng.uniform(0.0, 1e-3))
            target = clock.now() + gap
            while server.next_timeout() is not None and \
                    server.next_timeout() <= target:
                clock.advance_to(server.next_timeout())
                server.poll()
            clock.advance_to(target)
            server.poll()
        server.drain()

        assert server.pending == 0
        assert server.metrics.completed == 24
        for request in requests:
            response = request.response()
            assert response.ok
            # deadline: dispatched within the policy's wait budget
            assert response.latency <= policy.max_wait + 1e-12
            assert response.batch_size <= policy.max_batch_size
            # bit-identity with the sequential path
            assert bitwise_equal(request.result(),
                                 request.program(request.vector))
        assert max(server.metrics.batch_sizes) > 1  # batching actually happened

    def test_program_error_fails_the_drain_not_the_server(self, session, rng):
        bad = OpProgram("needs-missing-key", lambda x: x << 7)  # no key for 7
        server = Server(session, BatchingPolicy(max_batch_size=2, max_wait=0.0))
        failed = [server.submit(bad, fresh_vector(session, rng)) for _ in range(2)]
        server.poll()
        for request in failed:
            assert request.done() and not request.response().ok
            with pytest.raises(KeyError):
                request.result()
        assert server.metrics.failed == 2
        # the server keeps serving
        ok = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.flush()
        assert ok.response().ok

    def test_footprint_error_degrades_to_sequential(self, session, rng,
                                                    monkeypatch):
        def exploding_batch_from(handles):
            raise FusedFootprintError("synthetic: fused footprint over budget")

        server = Server(session, BatchingPolicy(max_batch_size=4, max_wait=0.0))
        monkeypatch.setattr(server.backend, "batch_from", exploding_batch_from)
        requests = [
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
            for _ in range(4)
        ]
        server.poll()
        assert server.metrics.footprint_fallbacks == 1
        for request in requests:
            assert request.response().ok
            assert bitwise_equal(request.result(), POLY_PROGRAM(request.vector))

    def test_memory_budget_forces_singleton_drains(self, session, rng):
        server = Server(
            session,
            BatchingPolicy(max_batch_size=8, max_wait=0.0, memory_budget_bytes=1),
        )
        for _ in range(3):
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.poll()
        assert server.metrics.batch_histogram() == {1: 3}

    def test_metrics_are_deterministic(self, session, rng):
        clock = SimulatedClock()
        server = Server(session, BatchingPolicy(max_batch_size=2, max_wait=1e-3),
                        clock=clock)
        server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        clock.advance(1e-3)
        server.poll()  # deadline drain, latency 1 ms
        server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.poll()  # full drain, latency 0
        metrics = server.metrics
        assert metrics.submitted == metrics.completed == 3
        assert metrics.batch_histogram() == {1: 1, 2: 1}
        assert metrics.p50_latency == 0.0
        assert metrics.p95_latency == pytest.approx(1e-3)
        assert metrics.max_queue_depth == 2
        assert metrics.summary()["mean_batch_size"] == pytest.approx(1.5)

    def test_unresolved_request_raises_until_driven(self, session, rng):
        server = Server(session, BatchingPolicy(max_batch_size=8, max_wait=1.0))
        request = server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        assert not request.done()
        with pytest.raises(RuntimeError, match="still queued"):
            request.response()
        server.flush()
        assert request.done()


# ----------------------------------------------------------------------
# the same serving loop on the other backends
# ----------------------------------------------------------------------


class TestServeBackends:
    def test_cost_model_backend_serves_symbolically(self, session, rng):
        functional = Server(session, BatchingPolicy(max_batch_size=4, max_wait=0.0))
        symbolic_backend = session.cost_backend()
        symbolic = Server(symbolic_backend,
                          BatchingPolicy(max_batch_size=4, max_wait=0.0))
        rows = [rng.uniform(-1, 1, 8) for _ in range(4)]
        real = [functional.submit(POLY_PROGRAM, session.encrypt(row))
                for row in rows]
        ghosts = [
            symbolic.submit(POLY_PROGRAM,
                            CipherVector(symbolic_backend,
                                         symbolic_backend.encrypt(row)))
            for row in rows
        ]
        functional.poll()
        symbolic.poll()
        for request, ghost in zip(real, ghosts):
            assert ghost.response().batch_size == 4
            assert ghost.result().level == request.result().level
            assert ghost.result().scale == pytest.approx(
                request.result().scale, rel=1e-9
            )
        batched_entries = [
            name for name, _ in symbolic_backend.ledger.entries if "[B=4]" in name
        ]
        assert batched_entries  # the fused ops were priced as fused

    def test_tracing_backend_serving_is_bit_identical(self, session, rng):
        rows = [rng.uniform(-1, 1, 8) for _ in range(3)]
        plain = Server(session, BatchingPolicy(max_batch_size=4, max_wait=0.0))
        tracing_backend = session.tracing_backend()
        traced = Server(tracing_backend,
                        BatchingPolicy(max_batch_size=4, max_wait=0.0))
        # One encryption per row, served through both stacks: encryption is
        # randomised, so bit-identity only holds for the same input handle.
        handles = [session.encrypt(row).handle for row in rows]
        expected = [
            plain.submit(SQUARE_PROGRAM, CipherVector(session.backend, handle))
            for handle in handles
        ]
        observed = [
            traced.submit(SQUARE_PROGRAM, CipherVector(tracing_backend, handle))
            for handle in handles
        ]
        plain.flush()
        traced.flush()
        for want, got in zip(expected, observed):
            assert bitwise_equal(got.result(), want.result())
        assert tracing_backend.trace.kernel_count > 0

    def test_trace_costs_accumulate_modeled_gpu_time(self, session, rng):
        server = Server(
            session, BatchingPolicy(max_batch_size=4, max_wait=0.0),
            trace_costs=TraceCostModel(GPU_RTX_4090),
        )
        for _ in range(4):
            server.submit(POLY_PROGRAM, fresh_vector(session, rng))
        server.poll()
        assert server.metrics.modeled_seconds > 0.0
        assert server.metrics.modeled_kernels > 0
        assert server.metrics.modeled_throughput() > 0.0

    def test_session_server_wires_the_session_backend(self, session, rng):
        server = session.server(BatchingPolicy(max_batch_size=2, max_wait=0.0))
        assert server.backend is session.backend
        request = server.submit(POLY_PROGRAM, session.encrypt(rng.uniform(-1, 1, 8)))
        server.flush()
        assert request.response().ok


# ----------------------------------------------------------------------
# op programs
# ----------------------------------------------------------------------


class TestOpProgram:
    def test_polynomial_matches_plain_math(self, session, rng):
        coeffs = [0.5, -1.0, 0.0, 0.25]  # 0.5 - x + 0.25 x^3
        program = OpProgram.polynomial(coeffs)
        values = rng.uniform(-1, 1, 8)
        result = program(session.encrypt(values))
        decrypted = session.decrypt(result, 8).real
        expected = np.polynomial.polynomial.polyval(values, coeffs)
        assert np.max(np.abs(decrypted - expected)) < 5e-3

    def test_polynomial_batched_is_bit_identical(self, session, rng):
        program = OpProgram.polynomial([0.5, -1.0, 0.0, 0.25])
        vectors = [session.encrypt(rng.uniform(-1, 1, 8)) for _ in range(3)]
        sequential = [program(v) for v in vectors]
        fused = program(session.batch(vectors)).split()
        for member, reference in zip(fused, sequential):
            assert bitwise_equal(member, reference)

    def test_constant_polynomial_rejected(self):
        with pytest.raises(ValueError, match="non-constant"):
            OpProgram.polynomial([3.0])
        with pytest.raises(ValueError, match="non-constant"):
            OpProgram.polynomial([3.0, 0.0, 0.0])

    def test_program_identity_drives_fusion(self):
        assert OpProgram.polynomial([1.0, 2.0]) == OpProgram.polynomial([1.0, 2.0])
        assert OpProgram.polynomial([1.0, 2.0]) != OpProgram.polynomial([1.0, 3.0])
        assert hash(OpProgram("a", abs)) == hash(OpProgram("a", str))
        with pytest.raises(TypeError, match="OpProgram"):
            Request(lambda x: x, None, arrival_time=0.0)


# ----------------------------------------------------------------------
# LR scoring through the server
# ----------------------------------------------------------------------


class TestLRServing:
    def test_scorer_batch_is_bit_identical_to_per_ciphertext(self, session, rng):
        weights = rng.uniform(-1, 1, 4)
        scorer = EncryptedLRScorer(session, weights)
        rows = [rng.uniform(-1, 1, 4) for _ in range(3)]
        vectors = [session.encrypt(row) for row in rows]
        sequential = [scorer.score(v) for v in vectors]
        fused = scorer.score_batch(session.batch(vectors)).split()
        for member, reference, row in zip(fused, sequential, rows):
            assert bitwise_equal(member, reference)
            decrypted = float(session.decrypt(member, 1).real[0])
            expected = float(sigmoid_poly(np.array([weights @ row]))[0])
            assert abs(decrypted - expected) < 5e-3

    def test_lr_scoring_served_end_to_end(self, session, rng):
        weights = rng.uniform(-1, 1, 4)
        scorer = EncryptedLRScorer(session, weights)
        clock = SimulatedClock()
        server = Server(session, BatchingPolicy(max_batch_size=4, max_wait=1e-3),
                        clock=clock)
        program = scorer.program()
        rows = [rng.uniform(-1, 1, 4) for _ in range(6)]
        requests = [server.submit(program, session.encrypt(row)) for row in rows]
        server.drain()
        for request, row in zip(requests, rows):
            assert bitwise_equal(request.result(), scorer.score(request.vector))
            decrypted = float(session.decrypt(request.result(), 1).real[0])
            expected = float(sigmoid_poly(np.array([weights @ row]))[0])
            assert abs(decrypted - expected) < 5e-3
        assert server.metrics.batch_histogram() == {2: 1, 4: 1}

    def test_two_models_never_fuse(self, session, rng):
        scorer_a = EncryptedLRScorer(session, rng.uniform(-1, 1, 4))
        scorer_b = EncryptedLRScorer(session, rng.uniform(-1, 1, 4))
        assert scorer_a.program() != scorer_b.program()
        server = Server(session, BatchingPolicy(max_batch_size=8, max_wait=1.0))
        for _ in range(2):
            server.submit(scorer_a.program(), fresh_vector(session, rng))
            server.submit(scorer_b.program(), fresh_vector(session, rng))
        assert len(server.queue.keys()) == 2
        server.flush()
        assert server.metrics.batch_histogram() == {2: 2}
