"""The observability plane: registry, spans, rollups, Perfetto export.

The contracts under test:

* the :class:`MetricsRegistry` is deterministic -- two identically-seeded
  serve runs snapshot byte-identically, instruments render valid
  Prometheus text exposition, and kind conflicts raise;
* the span tracer records a well-formed parent/child tree of the request
  lifecycle (``request → admission/queued``, ``drain → fused/retry``) on
  the simulated clock, and :meth:`SpanTracer.validate` passes on a real
  chaos run;
* the Chrome-trace export is schema-complete (every event carries
  ``ph/ts/dur/pid/tid/name``), slice timestamps are monotonic, and a
  cluster run lands kernels on one track per device;
* the per-scope rollup reconciles with the
  :class:`~repro.perf.trace_model.TraceCostModel` makespan within 1%;
* everything is **zero-cost when disabled**: the dispatcher hands out the
  shared null context and a server built with a disabled facade carries
  no observability hooks at all.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.api.session import CKKSSession
from repro.cluster import pcie_box
from repro.core.dispatch import get_dispatcher, _NULL_CONTEXT
from repro.core.memory import MemoryPool
from repro.gpu.platforms import GPU_RTX_4090
from repro.obs import (
    MetricsRegistry,
    Observability,
    ScopeRollup,
    SpanTracer,
    WallClockProfiler,
    chrome_trace_document,
    rollup_trace,
)
from repro.perf.trace_model import TraceCostModel
from repro.serve import (
    BatchingPolicy,
    FaultPlan,
    OpProgram,
    ReplayDriver,
    RetryPolicy,
    SimulatedClock,
    burst_arrivals,
)

PROGRAM = OpProgram.polynomial([1.0, 0.0, 2.0])  # 1 + 2x^2


@pytest.fixture(scope="module")
def obs_session() -> CKKSSession:
    return CKKSSession.create("toy", seed=11, register_default=False)


def run_instrumented_burst(session, *, requests: int = 8, seed: int = 3,
                           cluster=None, shard_drains: bool = False,
                           faults: bool = False):
    """One fused burst through an instrumented server; returns (obs, server)."""
    clock = SimulatedClock()
    obs = session.observability(clock=clock)
    rng = np.random.default_rng(seed)
    plan = None
    if faults:
        plan = FaultPlan.generate(seed, duration=0.05, oom_fraction=0.1,
                                  transients=2)
    server = session.server(
        BatchingPolicy(max_batch_size=8, max_wait=2e-3),
        clock=clock,
        trace_costs=TraceCostModel(GPU_RTX_4090),
        cluster=cluster,
        shard_drains=shard_drains,
        retry=RetryPolicy(max_retries=3, backoff=1e-5),
        fault_plan=plan,
        observability=obs,
    )
    arrivals = burst_arrivals(requests, bursts=2, burst_gap=5e-3, seed=seed)
    driver = ReplayDriver(
        server, PROGRAM,
        lambda i: session.encrypt(rng.uniform(-1.0, 1.0, 8)),
        deadline_offset=2e-2,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = driver.run(arrivals)
    return obs, server, report


# -- registry -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "Hits by route")
        hits.inc(route="/a")
        hits.inc(2, route="/b")
        assert registry.value("hits_total", route="/a") == 1
        assert registry.value("hits_total", route="/b") == 3 - 1

        depth = registry.gauge("depth", "Current depth")
        depth.set(4)
        depth.inc()
        depth.dec(2)
        assert registry.value("depth") == 3

        lat = registry.histogram("lat_seconds", "Latency",
                                 buckets=(0.1, 1.0))
        lat.observe(0.05)
        lat.observe(0.5)
        lat.observe(5.0)
        snap = registry.snapshot()
        series = snap["lat_seconds"]["series"][0]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(5.55)
        # Per-bucket counts ending at the +Inf catch-all (the Prometheus
        # renderer cumulates them).
        les = [bucket[0] for bucket in series["buckets"]]
        counts = [bucket[1] for bucket in series["buckets"]]
        assert les[-1] == "+Inf"
        assert counts == [1, 1, 1]

    def test_counter_rejects_negative_and_kind_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(TypeError):
            registry.gauge("events_total")
        with pytest.raises(ValueError):
            registry.counter("bad name!")
        with pytest.raises(ValueError):
            counter.inc(**{"bad-label": "x"})

    def test_gauge_function_evaluated_at_collect(self):
        registry = MetricsRegistry()
        box = {"v": 1.0}
        registry.gauge("live").set_function(lambda: box["v"], src="box")
        assert registry.value("live", src="box") == 1.0
        box["v"] = 7.0
        assert registry.value("live", src="box") == 7.0
        assert 'live{src="box"} 7' in registry.to_prometheus()

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Total requests").inc(3, kind="a b")
        registry.histogram("size", "Sizes", buckets=(2.0,)).observe(1.0)
        text = registry.to_prometheus()
        assert "# HELP reqs_total Total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{kind="a b"} 3' in text
        assert 'size_bucket{le="2"} 1' in text
        assert 'size_bucket{le="+Inf"} 1' in text
        assert "size_sum 1" in text
        assert "size_count 1" in text

    def test_snapshot_deterministic_across_identical_runs(self, obs_session):
        snaps = []
        for _ in range(2):
            obs, _, _ = run_instrumented_burst(obs_session, faults=True)
            snap = obs.snapshot()
            # Pool gauges track the live process-wide default pool, which
            # other tests in the session mutate -- everything else must be
            # a pure function of the seeds.
            for name in list(snap):
                if name.startswith("memory_pool_"):
                    del snap[name]
            snaps.append(json.dumps(snap, sort_keys=True))
        assert snaps[0] == snaps[1]


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_tracer_tree_and_validation(self):
        tracer = SpanTracer()
        root = tracer.begin("root", at=0.0)
        child = tracer.begin("child", parent=root, at=1.0, device=0)
        ping = tracer.event("ping", parent=child, at=1.5)
        tracer.finish(child, at=2.0)
        tracer.finish(root, at=3.0, outcome="ok")
        tracer.validate()
        root, child, ping = tracer.spans
        assert child.parent_id == root.span_id
        assert ping.parent_id == child.span_id
        assert ping.duration == 0.0
        assert tracer.children(root) == [child]
        assert tracer.find("child") == [child]

    def test_serve_run_span_integrity(self, obs_session):
        obs, _, report = run_instrumented_burst(obs_session, faults=True)
        tracer = obs.tracer
        tracer.validate()
        names = {span.name for span in tracer.spans}
        assert {"request", "admission", "queued", "drain", "fused"} <= names
        # Every request root closes with an outcome and its children nest
        # inside it on the simulated clock.
        roots = [span for span in tracer.roots() if span.name == "request"]
        assert len(roots) == report.admitted + report.shed
        for root in roots:
            assert root.finished
            assert root.attributes["outcome"] in {"ok", "error", "shed"}
        fused = tracer.find("fused")
        assert fused and all(span.parent_id is not None for span in fused)

    def test_retry_spans_on_faulted_run(self, obs_session):
        obs, server, _ = run_instrumented_burst(obs_session, faults=True)
        if server.metrics.retries:
            retries = obs.tracer.find("retry")
            assert len(retries) == server.metrics.retries
            assert all(span.attributes["error_kind"] for span in retries)


# -- Perfetto export ----------------------------------------------------------


class TestChromeTraceExport:
    REQUIRED = {"ph", "ts", "dur", "pid", "tid", "name"}

    def test_event_schema_and_monotonic_timestamps(self, obs_session):
        obs, _, _ = run_instrumented_burst(obs_session)
        document = obs.export_chrome_trace()
        events = document["traceEvents"]
        assert events, "export produced no events"
        for event in events:
            assert self.REQUIRED <= set(event), event
            assert event["ph"] in {"X", "M"}
        slices = [event for event in events if event["ph"] == "X"]
        stamps = [event["ts"] for event in slices]
        assert stamps == sorted(stamps)
        assert all(event["dur"] >= 0 for event in slices)

    def test_export_is_valid_json_on_disk(self, obs_session, tmp_path):
        obs, _, _ = run_instrumented_burst(obs_session)
        path = tmp_path / "trace.perfetto.json"
        obs.export_chrome_trace(str(path))
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_track_per_device_on_cluster_run(self, obs_session):
        obs, _, _ = run_instrumented_burst(
            obs_session, cluster=pcie_box(2), shard_drains=True,
        )
        document = obs.export_chrome_trace()
        kernel_pids = {
            event["pid"] for event in document["traceEvents"]
            if event["ph"] == "X" and event["pid"] >= 100 and event["pid"] < 900
        }
        assert len(kernel_pids) == 2  # one track group per device
        span_pids = {
            event["pid"] for event in document["traceEvents"]
            if event["ph"] == "X" and event["pid"] == 1
        }
        assert span_pids == {1}


# -- rollup -------------------------------------------------------------------


class TestScopeRollup:
    def test_reconciles_with_priced_makespan(self, obs_session):
        obs, _, _ = run_instrumented_burst(obs_session)
        report = obs.report()
        assert report.rows
        assert report.makespan_total > 0
        assert report.reconciliation() <= 0.01
        scopes = {row.scope for row in report.sorted_rows()}
        assert {"hmult", "rescale"} <= scopes
        text = report.to_text()
        assert "reconciliation gap" in text

    def test_rollup_trace_helper(self, obs_session):
        session = obs_session
        ct = session.encrypt(np.linspace(-1, 1, 8))
        with get_dispatcher().record() as trace:
            ct * ct
        rollup = rollup_trace(trace, TraceCostModel(GPU_RTX_4090))
        assert rollup.reconciliation() <= 0.01
        assert sum(row.kernels for row in rollup.rows.values()) == len(
            trace.events
        )

    def test_wall_profiler_folds_scopes(self, obs_session):
        obs = Observability()
        session = obs_session
        ct = session.encrypt(np.linspace(-1, 1, 8))
        with obs.profile() as profiler:
            ct * ct
        assert isinstance(profiler, WallClockProfiler)
        report = obs.report()
        assert report.wall_total > 0
        assert any(row.wall_s > 0 for row in report.rows.values())
        # The profiler detached: the dispatcher is back on the null path.
        assert get_dispatcher().scope("x") is _NULL_CONTEXT


# -- pool + disabled path -----------------------------------------------------


class TestPoolAndDisabled:
    def test_peak_gauge_and_reset_peak(self):
        pool = MemoryPool()
        obs = Observability()
        obs.watch_pool(pool, name="test")
        a = pool.allocate(1000)
        pool.allocate(500)
        pool.free(a)
        assert obs.registry.value(
            "memory_pool_peak_bytes", pool="test"
        ) == pool.peak_bytes
        previous = pool.reset_peak()
        assert previous >= 1500
        assert pool.peak_bytes == pool.bytes_in_use
        assert obs.registry.value(
            "memory_pool_peak_bytes", pool="test"
        ) == pool.bytes_in_use

    def test_drain_peak_histogram_recorded(self, obs_session):
        obs, _, _ = run_instrumented_burst(obs_session)
        snap = obs.snapshot()
        series = snap["serve_drain_peak_bytes"]["series"]
        assert series and all(entry["count"] >= 1 for entry in series)

    def test_disabled_facade_is_inert(self, obs_session):
        obs = obs_session.observability(enabled=False)
        assert not obs.enabled
        with obs.span("x") as span:
            assert span is None
        with obs.profile() as profiler:
            assert profiler is None
        server = obs_session.server(
            BatchingPolicy(max_batch_size=4), observability=obs,
        )
        assert server.obs is None
        assert get_dispatcher().scope("anything") is _NULL_CONTEXT

    def test_replay_driver_publishes_to_registry(self, obs_session):
        obs, _, report = run_instrumented_burst(obs_session, faults=True)
        registry = obs.registry
        assert registry.value("replay_availability") == report.availability
        assert registry.value(
            "replay_requests_total", outcome="submitted"
        ) == report.submitted
        assert registry.value(
            "replay_events_total", kind="retry"
        ) == report.retries
        # serve_* and replay_* restate the same control plane.
        assert registry.value("serve_availability") == report.availability
