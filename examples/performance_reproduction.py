"""Reproduce the paper's headline performance tables from the execution model.

Prints Table V (primitive latency), Table VI (bootstrapping) and Table VII
(logistic regression) using the FIDESlib/Phantom/OpenFHE execution models
at the paper's parameters on the Table IV platforms.

Run with:  python examples/performance_reproduction.py
"""

from __future__ import annotations

from repro.bench.reporting import BenchmarkTable, format_seconds, speedup
from repro.ckks.params import PARAMETER_SETS
from repro.gpu.platforms import ALL_GPUS, GPU_RTX_4090, platform_table
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.openfhe_model import OpenFHEModel
from repro.perf.phantom_model import PhantomModel
from repro.perf.workloads import BootstrapWorkload, LogisticRegressionWorkload


def table_iv() -> None:
    table = BenchmarkTable("Table IV: compute platforms")
    for row in platform_table():
        table.add_row(**row)
    print(table.to_text(), "\n")


def table_v() -> None:
    params = PARAMETER_SETS["paper-default"]
    fides = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
    phantom = PhantomModel(GPU_RTX_4090, params)
    baseline = OpenFHEModel(params, variant="baseline")
    hexl = OpenFHEModel(params, variant="hexl")
    table = BenchmarkTable("Table V: CKKS primitives, [2^16, 29, 59, 4], level 29")
    for op in ("ScalarAdd", "PtAdd", "HAdd", "ScalarMult", "PtMult", "Rescale",
               "HRotate", "HMult"):
        base_time = baseline.time_operation(op)
        fides_time = fides.time_operation(op)
        table.add_row(
            Operation=op,
            OpenFHE=format_seconds(base_time),
            HEXL24=format_seconds(hexl.time_operation(op)),
            Phantom=format_seconds(phantom.time_operation(op)) if phantom.supports(op) else "N/A",
            FIDESlib=format_seconds(fides_time),
            Speedup=f"{speedup(base_time, fides_time):.0f}x",
        )
    print(table.to_text(), "\n")


def table_vi() -> None:
    params = PARAMETER_SETS["paper-default"]
    fides = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
    hexl = OpenFHEModel(params, variant="hexl")
    table = BenchmarkTable("Table VI: bootstrapping vs slot count (RTX 4090)")
    for slots in (64, 512, 16384, 32768):
        workload = BootstrapWorkload(params, slots)
        gpu = fides.execute(workload.build(fides.costs)).total_time
        cpu = hexl.time_cost(workload.build(hexl.costs))
        table.add_row(
            Slots=slots,
            Levels=workload.remaining_levels,
            HEXL24=format_seconds(cpu),
            FIDESlib=format_seconds(gpu),
            Amortized=f"{workload.amortized_time_us(gpu):.2f} µs",
            Speedup=f"{speedup(cpu, gpu):.0f}x",
        )
    print(table.to_text(), "\n")


def table_vii() -> None:
    params = PARAMETER_SETS["paper-lr"]
    workload = LogisticRegressionWorkload(params)
    fides = FIDESlibModel(GPU_RTX_4090, params, limb_batch=4)
    baseline = OpenFHEModel(params, variant="baseline")
    hexl = OpenFHEModel(params, variant="hexl")
    table = BenchmarkTable("Table VII: logistic-regression training")
    for label, build in (("Iteration", workload.build_iteration),
                         ("Iteration + Bootstrap", workload.build_iteration_with_bootstrap)):
        gpu = fides.execute(build(fides.costs)).total_time
        base = baseline.time_cost(build(baseline.costs))
        table.add_row(
            Configuration=label,
            OpenFHE=format_seconds(base),
            HEXL24=format_seconds(hexl.time_cost(build(hexl.costs))),
            FIDESlib=format_seconds(gpu),
            Speedup=f"{speedup(base, gpu):.0f}x",
        )
    print(table.to_text(), "\n")


def figure_6_preview() -> None:
    params = PARAMETER_SETS["paper-default"]
    table = BenchmarkTable("Figure 6 preview: HMult vs limbs (µs)")
    for platform in ALL_GPUS:
        model = FIDESlibModel(platform, params, limb_batch=4)
        table.add_row(
            Platform=platform.name,
            **{f"{l} limbs": round(model.time_operation("HMult", limbs=l) * 1e6, 1)
               for l in (5, 10, 15, 20, 25, 30)},
        )
    print(table.to_text())


if __name__ == "__main__":
    table_iv()
    table_v()
    table_vi()
    table_vii()
    figure_6_preview()
