"""Serving demo: encrypted LR scoring through the dynamic-batching server.

A mixed request stream -- two logistic-regression models, requests
arriving at staggered simulated times -- flows through
:meth:`~repro.api.session.CKKSSession.server`: the serving plane buckets
requests by ``(ring_degree, level, scale, program)``, fuses each bucket
into one ``(B·L, N)`` kernel stream when the
:class:`~repro.serve.BatchingPolicy` fires (full batch or ``max_wait``
deadline), and resolves every request's future with a result that is
**bit-identical** to scoring it alone on the sequential evaluator --
which this demo asserts, score by score.

Run with:  python examples/serving_lr.py
"""

from __future__ import annotations

import numpy as np

from repro.api import CKKSSession
from repro.apps.logistic_regression import EncryptedLRScorer, sigmoid_poly
from repro.serve import BatchingPolicy, SimulatedClock

FEATURES = 4
REQUESTS_PER_MODEL = 6


def main() -> None:
    rng = np.random.default_rng(7)
    session = CKKSSession.create(
        "toy",
        rotations=EncryptedLRScorer.required_rotations(FEATURES),
        seed=11,
    )

    # Two plaintext models scoring encrypted feature vectors: requests for
    # different models never fuse (the program is part of the shape key).
    scorers = [
        EncryptedLRScorer(session, rng.uniform(-1.0, 1.0, FEATURES))
        for _ in range(2)
    ]
    programs = [scorer.program() for scorer in scorers]

    clock = SimulatedClock()
    policy = BatchingPolicy(max_batch_size=4, max_wait=2e-3)
    server = session.server(policy, clock=clock)

    # Offered load: requests alternate between the models, arriving every
    # 0.5 ms of simulated time; poll after each arrival like a real loop.
    feature_rows, requests = [], []
    for index in range(2 * REQUESTS_PER_MODEL):
        row = rng.uniform(-1.0, 1.0, FEATURES)
        feature_rows.append(row)
        requests.append(
            server.submit(programs[index % 2], session.encrypt(row))
        )
        server.poll()
        clock.advance(5e-4)
    server.drain()  # dispatch the stragglers at their deadlines

    print(f"serving demo [{session.params.describe()}]")
    print(f"fused-batch histogram: {server.metrics.batch_histogram()}")
    print(
        f"p50/p95 queueing latency: {server.metrics.p50_latency * 1e3:.2f} / "
        f"{server.metrics.p95_latency * 1e3:.2f} ms (simulated)"
    )

    print(f"{'model':<6} {'expected':>10} {'decrypted':>10} {'batch':>6}")
    for index, (request, row) in enumerate(zip(requests, feature_rows)):
        scorer = scorers[index % 2]
        response = request.response()

        # Bit-identity: the served result equals the sequential evaluator's.
        reference = scorer.score(request.vector)
        assert np.array_equal(
            request.result().handle.c0.stack.data, reference.handle.c0.stack.data
        )
        assert np.array_equal(
            request.result().handle.c1.stack.data, reference.handle.c1.stack.data
        )

        decrypted = float(session.decrypt(request.result(), 1).real[0])
        expected = float(sigmoid_poly(np.array([scorer.weights @ row]))[0])
        assert abs(decrypted - expected) < 5e-3
        print(
            f"{index % 2:<6} {expected:>10.5f} {decrypted:>10.5f} "
            f"{response.batch_size:>6}"
        )
    print("all responses bit-identical to sequential scoring")


if __name__ == "__main__":
    main()
