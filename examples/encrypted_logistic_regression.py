"""Encrypted logistic-regression training (the Table VII workload, reduced size).

Trains a logistic-regression model on an encrypted synthetic
loan-eligibility mini-batch and compares the decrypted model against the
plaintext reference trained on the same data.

Run with:  python examples/encrypted_logistic_regression.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.dataset import make_loan_dataset
from repro.apps.logistic_regression import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
)
from repro.ckks.encryption import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.params import PARAMETER_SETS
from repro.openfhe.adapter import export_ciphertext


def main() -> None:
    # Reduced problem: 8 samples per batch, 4 features (paper: 1024 x 32).
    batch_size, features = 8, 4
    data = make_loan_dataset(samples=64, features=features,
                             pad_to_power_of_two=False, noise=0.1, seed=3)

    params = PARAMETER_SETS["toy-deep"]
    context_keys_start = time.time()
    from repro.ckks.context import Context

    context = Context(params)
    keys = KeyGenerator(context, seed=11).generate(
        EncryptedLogisticRegression.required_rotations(batch_size)
    )
    evaluator = Evaluator(context, keys)
    encryptor = Encryptor(context, keys.public_key, seed=12)
    decryptor = Decryptor(context, keys.secret_key)
    print(f"context + keys ready in {time.time() - context_keys_start:.1f}s "
          f"({params.describe()}, {len(context.moduli)} limbs)")

    plaintext_model = PlaintextLogisticRegression(learning_rate=2.0)
    encrypted_model = EncryptedLogisticRegression(
        context=context, evaluator=evaluator, encryptor=encryptor,
        feature_count=features, learning_rate=2.0,
    )

    iterations = 2
    batches = list(data.batches(batch_size))[:iterations]
    for index, (x, y) in enumerate(batches):
        start = time.time()
        columns, label_ct = encrypted_model.encrypt_batch(x, y)
        encrypted_model.train_batch(columns, label_ct, batch_size)
        plaintext_model.fit_batch(x, y)
        print(f"iteration {index + 1}: encrypted step took {time.time() - start:.1f}s")

    encrypted_weights = encrypted_model.decrypt_weights(decryptor)
    print("\nplaintext weights :", np.round(plaintext_model.weights, 4))
    print("encrypted weights :", np.round(encrypted_weights, 4))
    print("max difference    :", f"{np.max(np.abs(encrypted_weights - plaintext_model.weights)):.2e}")

    # The trained (encrypted) model still classifies the dataset well.
    plaintext_model.weights = encrypted_weights
    accuracy = plaintext_model.accuracy(data.features, data.labels)
    print(f"accuracy of the encrypted-trained model: {accuracy:.2%}")

    raw = export_ciphertext(encrypted_model.weight_cts[0])
    kib = 2 * len(raw.c0.limbs) * context.ring_degree * 8 // 1024
    print(f"one weight ciphertext occupies about {kib} KiB when exported through the adapter")


if __name__ == "__main__":
    main()
