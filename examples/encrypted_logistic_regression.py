"""Encrypted logistic-regression training (the Table VII workload, reduced size).

Trains a logistic-regression model on an encrypted synthetic
loan-eligibility mini-batch through the high-level API
(:class:`~repro.api.session.CKKSSession` + operator-overloaded
ciphertexts) and compares the decrypted model against the plaintext
reference trained on the same data.  The same training step is then
replayed on the cost-model backend at the paper's LR parameter set to
reproduce the GPU-scale cost -- one program, two backends.

Run with:  python examples/encrypted_logistic_regression.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import CKKSSession, CostModelBackend
from repro.apps.dataset import make_loan_dataset
from repro.apps.logistic_regression import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
)
from repro.ckks.params import PARAMETER_SETS
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.fideslib_model import FIDESlibModel


def main() -> None:
    # Reduced problem: 8 samples per batch, 4 features (paper: 1024 x 32).
    batch_size, features = 8, 4
    data = make_loan_dataset(samples=64, features=features,
                             pad_to_power_of_two=False, noise=0.1, seed=3)

    params = PARAMETER_SETS["toy-deep"]
    context_keys_start = time.time()
    session = CKKSSession.create(
        params,
        rotations=EncryptedLogisticRegression.required_rotations(batch_size),
        seed=11,
    )
    print(f"session ready in {time.time() - context_keys_start:.1f}s "
          f"({params.describe()}, {len(session.context.moduli)} limbs)")

    plaintext_model = PlaintextLogisticRegression(learning_rate=2.0)
    encrypted_model = EncryptedLogisticRegression(
        backend=session, feature_count=features, learning_rate=2.0,
    )

    iterations = 2
    batches = list(data.batches(batch_size))[:iterations]
    for index, (x, y) in enumerate(batches):
        start = time.time()
        columns, label_ct = encrypted_model.encrypt_batch(x, y)
        encrypted_model.train_batch(columns, label_ct, batch_size)
        plaintext_model.fit_batch(x, y)
        print(f"iteration {index + 1}: encrypted step took {time.time() - start:.1f}s")

    encrypted_weights = encrypted_model.decrypt_weights(session)
    print("\nplaintext weights :", np.round(plaintext_model.weights, 4))
    print("encrypted weights :", np.round(encrypted_weights, 4))
    print("max difference    :", f"{np.max(np.abs(encrypted_weights - plaintext_model.weights)):.2e}")

    # The trained (encrypted) model still classifies the dataset well.
    plaintext_model.weights = encrypted_weights
    accuracy = plaintext_model.accuracy(data.features, data.labels)
    print(f"accuracy of the encrypted-trained model: {accuracy:.2%}")

    raw = session.download(encrypted_model.weights[0])
    kib = 2 * len(raw.c0.limbs) * session.context.ring_degree * 8 // 1024
    print(f"one weight ciphertext occupies about {kib} KiB when exported through the adapter")

    # The same training step on the GPU cost model at paper-LR parameters.
    paper_params = PARAMETER_SETS["paper-lr"]
    gpu = FIDESlibModel(GPU_RTX_4090, paper_params, limb_batch=4)
    cost_model = CostModelBackend.for_model(gpu)
    cost_lr = EncryptedLogisticRegression(
        backend=cost_model, feature_count=features, learning_rate=2.0,
    )
    x, y = batches[0]
    columns, label_ct = cost_lr.encrypt_batch(x, y)
    cost_lr.train_batch(columns, label_ct, batch_size)
    modelled = gpu.execute(cost_model.ledger.as_cost("lr-iteration")).total_time
    print(f"\nsame step on the cost model at {paper_params.describe()}: "
          f"{len(cost_model.ledger)} operations, modelled {modelled * 1e3:.1f} ms "
          f"on an RTX 4090")


if __name__ == "__main__":
    main()
