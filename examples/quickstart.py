"""Quickstart: encrypt, compute homomorphically, decrypt.

Mirrors the paper's architecture: an OpenFHE-style client performs key
generation, encoding and encryption; the server-side evaluator (the
FIDESlib role) performs every homomorphic operation; the client decrypts
and verifies.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.ckks.evaluator import Evaluator
from repro.ckks.params import CKKSParameters
from repro.openfhe.client import OpenFHEClient


def main() -> None:
    # 1. Client side: parameters, keys, encryption (the OpenFHE role).
    params = CKKSParameters(
        ring_degree=1 << 10,   # N = 1024 (reduced, insecure, for the demo)
        mult_depth=6,          # L = 6 multiplicative levels
        scale_bits=28,         # Δ = 2^28
        dnum=3,                # hybrid key-switching digits
    )
    client = OpenFHEClient(params, seed=1)
    server_keys = client.key_gen(rotations=[1, 2], conjugation=True)

    a = np.array([0.25, -0.5, 1.0, 0.75])
    b = np.array([1.5, 0.25, -1.0, 0.5])
    ct_a = client.upload(client.encrypt(a))
    ct_b = client.upload(client.encrypt(b))

    # 2. Server side: homomorphic computation (the FIDESlib role).
    server = Evaluator(client.context, server_keys)
    ct_sum = server.add(ct_a, ct_b)
    ct_product = server.multiply(ct_a, ct_b)
    ct_poly = server.add_scalar(server.multiply_scalar(ct_product, 2.0), 1.0)
    ct_rotated = server.rotate(ct_a, 1)

    # 3. Client side again: decrypt and verify.
    print("CKKS quickstart", params.describe())
    print(f"{'operation':<18} {'expected':<42} decrypted")
    for name, ct, expected in (
        ("a + b", ct_sum, a + b),
        ("a * b", ct_product, a * b),
        ("2*a*b + 1", ct_poly, 2 * a * b + 1),
        ("rotate(a, 1)", ct_rotated, np.roll(a, -1)),
    ):
        decrypted = client.decrypt(ct, len(expected)).real
        error = np.max(np.abs(decrypted - expected))
        print(f"{name:<18} {np.round(expected, 4)!s:<42} {np.round(decrypted, 4)}  (max err {error:.2e})")


if __name__ == "__main__":
    main()
