"""Quickstart: encrypt, compute homomorphically with operators, decrypt.

Mirrors the paper's architecture through the high-level API: a
:class:`~repro.api.session.CKKSSession` bundles the OpenFHE-style client
(key generation, encoding, encryption, decryption) with the server-side
evaluator (the FIDESlib role), and homomorphic arithmetic is written with
:class:`~repro.api.vector.CipherVector` operators instead of evaluator
verbs.  The same program is then replayed on the GPU cost model -- the
reproduction's core loop: verify functionally, cost on the model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import CipherVector, CKKSSession
from repro.ckks.params import CKKSParameters


def main() -> None:
    # 1. One session object: parameters, client-side keys, server evaluator.
    params = CKKSParameters(
        ring_degree=1 << 10,   # N = 1024 (reduced, insecure, for the demo)
        mult_depth=6,          # L = 6 multiplicative levels
        scale_bits=28,         # Δ = 2^28
        dnum=3,                # hybrid key-switching digits
    )
    session = CKKSSession.create(params, rotations=[1, 2], conjugation=True, seed=1)

    a = np.array([0.25, -0.5, 1.0, 0.75])
    b = np.array([1.5, 0.25, -1.0, 0.5])
    ct_a = session.encrypt(a)
    ct_b = session.encrypt(b)

    # 2. Server side: homomorphic computation as plain arithmetic.
    ct_sum = ct_a + ct_b
    ct_product = ct_a * ct_b
    ct_poly = 2.0 * (ct_a * ct_b) + 1.0
    ct_rotated = ct_a << 1

    # 3. Client side again: decrypt and verify.
    print("CKKS quickstart", params.describe())
    print(f"{'operation':<18} {'expected':<42} decrypted")
    for name, ct, expected in (
        ("a + b", ct_sum, a + b),
        ("a * b", ct_product, a * b),
        ("2*a*b + 1", ct_poly, 2 * a * b + 1),
        ("a << 1", ct_rotated, np.roll(a, -1)),
    ):
        decrypted = session.decrypt(ct, len(expected)).real
        error = np.max(np.abs(decrypted - expected))
        print(f"{name:<18} {np.round(expected, 4)!s:<42} {np.round(decrypted, 4)}  (max err {error:.2e})")

    # 4. The same program on the cost-model backend: no data, only the
    #    level/scale trajectory and the kernel-level cost ledger.
    model = session.cost_backend()
    sym_a = CipherVector(model, model.encrypt(a))
    sym_b = CipherVector(model, model.encrypt(b))
    sym_poly = 2.0 * (sym_a * sym_b) + 1.0
    assert (sym_poly.level, sym_poly.scale) == (ct_poly.level, ct_poly.scale)
    counts = ", ".join(f"{op} x{n}" for op, n in model.ledger.operation_counts().items())
    print(f"\ncost model replay: level {sym_poly.level}, ops [{counts}], "
          f"{model.ledger.bytes_moved / 1e6:.1f} MB moved, "
          f"{model.ledger.kernel_count} kernel launches")


if __name__ == "__main__":
    main()
