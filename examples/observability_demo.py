"""Observability demo: one fused B=8 serve drain, fully instrumented.

Eight requests for the same program burst into the dynamic-batching
server at once, fuse into a single ``(B·L, N)`` drain on the real data
plane, and every layer of the run lands in one
:class:`~repro.obs.Observability` facade:

* the **metrics registry** -- serve counters, fused-batch histogram,
  memory-pool gauges -- dumped in Prometheus text exposition;
* the **request spans** -- ``request → admission/queued → drain →
  fused`` parent/child tree on the simulated clock;
* the **per-scope rollup** -- modeled GPU time attributed to each kernel
  scope (hmult, modup, keyswitch, moddown, rescale), reconciled against
  the :class:`~repro.perf.trace_model.TraceCostModel` makespan;
* the **Perfetto export** -- ``trace.perfetto.json``, loadable at
  https://ui.perfetto.dev (or chrome://tracing), with the kernel
  timeline of the drain on the device track and the span tree above it.

Run with:  PYTHONPATH=src python examples/observability_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.api import CKKSSession
from repro.gpu.platforms import GPU_RTX_4090
from repro.perf.trace_model import TraceCostModel
from repro.serve import BatchingPolicy, OpProgram, SimulatedClock

BATCH = 8
OUTPUT = "trace.perfetto.json"


def main() -> None:
    rng = np.random.default_rng(7)
    session = CKKSSession.create("toy", seed=11)

    clock = SimulatedClock()
    obs = session.observability(clock=clock)
    server = session.server(
        BatchingPolicy(max_batch_size=BATCH, max_wait=2e-3),
        clock=clock,
        trace_costs=TraceCostModel(GPU_RTX_4090),
        observability=obs,
    )

    # A burst of eight identical-shape requests: they share one shape
    # bucket, so the policy fires at max_batch_size and the whole burst
    # executes as ONE fused kernel stream.
    program = OpProgram.polynomial([1.0, 0.0, 2.0])  # 1 + 2x^2
    rows = [rng.uniform(-1.0, 1.0, 8) for _ in range(BATCH)]
    requests = [server.submit(program, session.encrypt(row)) for row in rows]
    server.poll()
    server.drain()

    for row, request in zip(rows, requests):
        got = session.decrypt(request.result(), 8)
        np.testing.assert_allclose(got, 1.0 + 2.0 * row * row, atol=1e-2)

    # --- metrics: Prometheus text exposition -----------------------------
    text = obs.to_prometheus()
    print("=== metrics (first 25 lines of the Prometheus dump) ===")
    print("\n".join(text.splitlines()[:25]))

    # --- spans: the request lifecycle tree -------------------------------
    obs.tracer.validate()
    requests_spans = [s for s in obs.tracer.spans if s.name == "request"]
    drains = [s for s in obs.tracer.spans if s.name == "drain"]
    print(f"\n=== spans: {len(obs.tracer.spans)} recorded, "
          f"{len(requests_spans)} requests, {len(drains)} drain(s) ===")
    for child in obs.tracer.children(drains[0]):
        print(f"  drain -> {child.name} {child.attributes}")

    # --- rollup: modeled GPU time by kernel scope ------------------------
    report = obs.report()
    print("\n" + report.to_text())
    gap = report.reconciliation()
    assert gap <= 0.01, f"rollup drifted {gap:.2%} from the priced makespan"

    # --- Perfetto export -------------------------------------------------
    document = obs.export_chrome_trace(OUTPUT)
    print(f"\nwrote {OUTPUT} ({len(document['traceEvents'])} events) -- "
          f"open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
