"""Bootstrapping demo: refresh an exhausted ciphertext and keep computing.

The headline feature of FIDESlib is the first open-source GPU
implementation of CKKS bootstrapping.  This demo runs the same pipeline
functionally at a reduced ring dimension through the high-level API: a
ciphertext is used until no multiplicative levels remain, bootstrapped,
and then used again.

Run with:  python examples/bootstrapping_demo.py   (takes ~1 minute)
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import CKKSSession
from repro.ckks.bootstrap import Bootstrapper
from repro.ckks.params import PARAMETER_SETS


def main() -> None:
    params = PARAMETER_SETS["toy-bootstrap"]
    print(f"parameter set {params.describe()}: N={params.ring_degree}, "
          f"L={params.mult_depth}, sparse secret h={params.secret_hamming_weight}")

    start = time.time()
    session = CKKSSession.create(params, conjugation=True, seed=2024)
    bootstrapper = Bootstrapper(session.context, session.evaluator)
    session.add_rotation_keys(bootstrapper.required_rotations())
    print(f"session, evaluation keys and {len(session.keys.rotation_keys)} rotation keys "
          f"ready in {time.time() - start:.1f}s")

    rng = np.random.default_rng(0)
    message = rng.uniform(-0.4, 0.4, 8)
    ciphertext = session.encrypt(message)
    print(f"\nfresh ciphertext: level {ciphertext.level} "
          f"(message {np.round(message[:4], 3)}...)")

    # Consume every level with multiplications by an auxiliary ciphertext.
    other = session.encrypt(np.full(8, 0.9))
    expected = message.copy()
    while ciphertext.level > 0:
        ciphertext = ciphertext * other
        expected = expected * 0.9
    print(f"after exhausting the modulus chain: level {ciphertext.level}, "
          f"decrypt error {np.max(np.abs(session.decrypt(ciphertext, 8).real - expected)):.2e}")

    start = time.time()
    refreshed = session.wrap(bootstrapper.bootstrap(ciphertext.handle))
    elapsed = time.time() - start
    error = np.max(np.abs(session.decrypt(refreshed, 8).real - expected))
    print(f"\nbootstrap took {elapsed:.1f}s: level {ciphertext.level} -> {refreshed.level}, "
          f"message error {error:.2e}")

    followup = refreshed ** 2
    error = np.max(np.abs(session.decrypt(followup, 8).real - expected**2))
    print(f"post-bootstrap squaring works: level {followup.level}, error {error:.2e}")

    workload_note = (
        "At the paper's parameters [2^16, 29, 59, 4] the performance model places this "
        "operation at ~0.1-0.2 s on an RTX 4090 versus ~10-30 s for CPU OpenFHE "
        "(see benchmarks/bench_table6_bootstrap.py)."
    )
    print("\n" + workload_note)


if __name__ == "__main__":
    main()
