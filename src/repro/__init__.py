"""repro: a Python reproduction of FIDESlib (ISPASS 2025).

FIDESlib is an open-source server-side CKKS GPU library interoperable with
OpenFHE clients.  This package rebuilds the complete system in Python:

* :mod:`repro.api` -- the high-level entry point: :class:`CKKSSession`
  (one object bundling params, context, keys and evaluator),
  :class:`CipherVector` and :class:`CipherBatch` (operator-overloaded
  handles over one ciphertext or a fused cross-ciphertext batch) and the
  pluggable :class:`EvaluationBackend` seam that runs the same program
  functionally or against the GPU cost model.
* :mod:`repro.core` -- power-of-two polynomial ring arithmetic under
  word-sized moduli (modular arithmetic, NTT, RNS, limb containers).
* :mod:`repro.ckks` -- the CKKS scheme itself: encoding, encryption,
  homomorphic arithmetic, hybrid key switching, rotations and full
  bootstrapping.
* :mod:`repro.openfhe` -- the client-side reference library and the thin
  adapter layer that mirrors the paper's OpenFHE interoperation.
* :mod:`repro.gpu` -- a GPU execution-model substrate (devices, streams,
  kernels, L2 cache, memory pools) standing in for physical CUDA hardware.
* :mod:`repro.perf` -- execution plans mapping CKKS operations onto the GPU
  model for FIDESlib, Phantom and OpenFHE CPU baselines.
* :mod:`repro.serve` -- the serving plane: a shape-bucketed request queue
  with dynamic batching (:class:`~repro.serve.Server`, reachable as
  ``session.server()``) that turns a live request stream into fused
  ``(B·L, N)`` batches, bit-identical to sequential execution -- plus the
  fault-tolerant control plane: typed :class:`ServeError` responses,
  admission control, deadline/retry semantics and deterministic fault
  injection (:class:`FaultPlan`) for chaos replay.
* :mod:`repro.obs` -- the unified observability plane: a labeled metrics
  registry with Prometheus exposition, request-lifecycle spans on the
  simulated clock, Chrome-trace/Perfetto timeline export of kernel
  schedules plus spans, and per-scope profiling rollups
  (:class:`~repro.obs.Observability`, reachable as
  ``session.observability()``).
* :mod:`repro.apps` -- realistic encrypted workloads (logistic regression,
  linear algebra, statistics) written once against the backend seam.
* :mod:`repro.bench` -- Google-Benchmark-style reporting used by the
  benchmark harness.
"""

from repro.api import (
    CKKSSession,
    CipherBatch,
    CipherVector,
    CostLedger,
    CostModelBackend,
    EvaluationBackend,
    FunctionalBackend,
)
from repro.ckks.params import CKKSParameters, PARAMETER_SETS
from repro.ckks.context import Context
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.keys import KeySet, KeyGenerator
from repro.serve.errors import (
    DeadlineExceeded,
    DeviceLost,
    DrainFailed,
    RequestRejected,
    ServeError,
    TransientFault,
)
from repro.serve.faults import FaultEvent, FaultInjector, FaultPlan
from repro.obs import MetricsRegistry, Observability

__all__ = [
    "MetricsRegistry",
    "Observability",
    "CKKSSession",
    "CipherBatch",
    "CipherVector",
    "EvaluationBackend",
    "FunctionalBackend",
    "CostModelBackend",
    "CostLedger",
    "CKKSParameters",
    "PARAMETER_SETS",
    "Context",
    "Ciphertext",
    "Plaintext",
    "KeySet",
    "KeyGenerator",
    "ServeError",
    "RequestRejected",
    "DeadlineExceeded",
    "TransientFault",
    "DrainFailed",
    "DeviceLost",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "__version__",
]

__version__ = "1.3.0"
