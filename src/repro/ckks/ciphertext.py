"""``Plaintext`` and ``Ciphertext`` containers.

These mirror the FIDESlib classes of Figure 2: thin wrappers around one
(:class:`Plaintext`) or two (:class:`Ciphertext`) :class:`~repro.core.rns_poly.RNSPoly`
objects plus the metadata CKKS needs to track -- the scaling factor, the
number of meaningful message slots and a static noise-budget estimate that
travels back to the client through the adapter layer (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


@dataclass
class Plaintext:
    """An encoded (unencrypted) CKKS message."""

    poly: RNSPoly
    scale: float
    slots: int
    encoded_length: int | None = None

    @property
    def limb_count(self) -> int:
        """Number of RNS limbs the plaintext is defined over."""
        return self.poly.level_count

    @property
    def level(self) -> int:
        """Remaining multiplicative depth (limb count minus one)."""
        return self.limb_count - 1

    def copy(self) -> "Plaintext":
        """Return a deep copy."""
        return Plaintext(self.poly.copy(), self.scale, self.slots, self.encoded_length)

    def to_evaluation(self) -> "Plaintext":
        """Return the plaintext with its polynomial in evaluation format."""
        return Plaintext(self.poly.to_evaluation(), self.scale, self.slots, self.encoded_length)


@dataclass
class Ciphertext:
    """A two-component RLWE ciphertext ``(c0, c1)`` with CKKS metadata."""

    c0: RNSPoly
    c1: RNSPoly
    scale: float
    slots: int
    noise_bits: float = 0.0
    encoded_length: int | None = None

    def __post_init__(self) -> None:
        if self.c0.moduli != self.c1.moduli:
            raise ValueError("ciphertext components use different RNS bases")
        if self.c0.ring_degree != self.c1.ring_degree:
            raise ValueError("ciphertext components use different ring degrees")

    # -- metadata -------------------------------------------------------------

    @property
    def ring_degree(self) -> int:
        """Polynomial degree bound ``N``."""
        return self.c0.ring_degree

    @property
    def limb_count(self) -> int:
        """Current number of limbs (``ℓ + 1`` in the paper's notation)."""
        return self.c0.level_count

    @property
    def level(self) -> int:
        """Remaining multiplicative depth ``ℓ``."""
        return self.limb_count - 1

    @property
    def moduli(self) -> list[int]:
        """The RNS moduli currently attached to the ciphertext."""
        return list(self.c0.moduli)

    @property
    def fmt(self) -> LimbFormat:
        """Common representation of the ciphertext limbs."""
        return self.c0.fmt

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Device-memory footprint of the ciphertext."""
        return self.c0.footprint_bytes(element_bytes) + self.c1.footprint_bytes(element_bytes)

    # -- structural helpers ---------------------------------------------------

    def copy(self) -> "Ciphertext":
        """Return a deep copy."""
        return Ciphertext(
            self.c0.copy(),
            self.c1.copy(),
            self.scale,
            self.slots,
            self.noise_bits,
            self.encoded_length,
        )

    def map_polys(self, fn) -> "Ciphertext":
        """Return a ciphertext with ``fn`` applied to both components."""
        return Ciphertext(
            fn(self.c0),
            fn(self.c1),
            self.scale,
            self.slots,
            self.noise_bits,
            self.encoded_length,
        )

    def with_polys(self, c0: RNSPoly, c1: RNSPoly, *, scale: float | None = None,
                   noise_bits: float | None = None) -> "Ciphertext":
        """Return a ciphertext reusing this one's metadata with new polynomials."""
        return Ciphertext(
            c0,
            c1,
            self.scale if scale is None else scale,
            self.slots,
            self.noise_bits if noise_bits is None else noise_bits,
            self.encoded_length,
        )


__all__ = ["Plaintext", "Ciphertext"]
