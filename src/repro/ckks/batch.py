"""Cross-ciphertext batched execution: the throughput plane.

A serving workload is ``B`` independent requests, each a same-shape
ciphertext walking the same circuit.  Evaluating them one at a time pays
``B`` times the Python-dispatch and kernel-launch overhead the flat
limb-stack data plane (§III-D) was built to amortize.  This module stacks
the ``B`` ciphertexts' limb stacks into fused ``(B·L, N)`` buffers
(:meth:`repro.core.limb_stack.LimbStack.fuse`) so every cross-limb kernel
-- the ``stack_*`` modmath expressions, the
:class:`~repro.core.ntt.StackedNTTEngine` transforms and
:meth:`~repro.core.rns.BaseConverter.convert_stack` -- launches **once per
operation for the whole batch** instead of once per ciphertext, the
multi-ciphertext batching lever FIDESlib and OpenFHE expose (§III-F.1
applied across requests rather than across limbs).

Layout: fused buffers are member-major -- all ``L`` rows of member 0,
then member 1, ... -- so the member polynomials are contiguous row ranges
(:meth:`LimbStack.split` views) and the fused moduli column is the member
column tiled ``B`` times.  Every ``stack_*`` kernel is row-wise with a
broadcast ``(rows, 1)`` moduli column and every stacked NTT is row
independent, so the batched math is **bit-identical** per member to the
sequential :class:`~repro.ckks.evaluator.Evaluator` path (the test suite
asserts this operation by operation).

Execution-plane recording stays at GPU launch granularity with the *same
kernel structure* as one sequential operation -- the same kinds and
counts, with ``B`` times the rows/bytes -- so a batched trace reconciles
against the single-ciphertext cost model at ``B×`` bytes and ``1×``
launches, and :class:`~repro.perf.trace_model.TraceCostModel` shows the
per-op launch overhead dropping from ``O(B)`` to ``O(1)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.ckks.encryption import encode
from repro.ckks.evaluator import scales_match
from repro.ckks.keys import KeySet, KeySwitchingKey
from repro.core import modmath
from repro.core.automorphism import conjugation_exponent, rotation_to_exponent
from repro.core.dispatch import get_dispatcher
from repro.core.limb import LimbFormat
from repro.core.limb_stack import LimbStack
from repro.core.memory import FusedFootprintError
from repro.core.ntt import get_stacked_engine
from repro.core.rns_poly import RNSPoly, _rescale_inverses
from repro.gpu.kernel import MODADD_OPS, MODMUL_OPS

_DISPATCH = get_dispatcher()


class CiphertextBatch:
    """``B`` same-shape ciphertexts fused into ``(B·L, N)`` component stacks.

    ``c0``/``c1`` are :class:`RNSPoly` objects over the member moduli tiled
    ``B`` times (member-major rows).  All members share one level, scale
    and format -- the invariants that let every kernel batch.
    """

    __slots__ = ("c0", "c1", "batch_size", "scale", "slots", "noise_bits",
                 "encoded_lengths")

    def __init__(self, c0: RNSPoly, c1: RNSPoly, *, batch_size: int,
                 scale: float, slots: int, noise_bits: float = 0.0,
                 encoded_lengths: list[int | None] | None = None) -> None:
        if c0.level_count != c1.level_count or c0.moduli != c1.moduli:
            raise ValueError("batch components use different RNS bases")
        if c0.level_count % batch_size:
            raise ValueError(
                f"{c0.level_count} fused rows do not divide into {batch_size} members"
            )
        self.c0 = c0
        self.c1 = c1
        self.batch_size = batch_size
        self.scale = scale
        self.slots = slots
        self.noise_bits = noise_bits
        self.encoded_lengths = (
            encoded_lengths if encoded_lengths is not None else [None] * batch_size
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_ciphertexts(cls, cts: Sequence[Ciphertext]) -> "CiphertextBatch":
        """Fuse same-shape ciphertexts into one batch (two pool allocations).

        All members must share the ring degree, RNS basis (hence level),
        limb format, slot count and scale; a mixed-level batch is rejected
        with a descriptive error because the fused moduli column -- and
        with it every batched kernel -- requires one shape.

        When the fused ``2·B·L·N`` footprint would exceed the members'
        :class:`~repro.core.memory.MemoryPool` budget, the constructor
        raises :class:`~repro.core.memory.FusedFootprintError` *before*
        copying any rows (the serving plane's batching policy consumes
        this to cap bucket drain sizes).
        """
        cts = list(cts)
        if not cts:
            raise ValueError("a ciphertext batch needs at least one member")
        first = cts[0]
        levels = sorted({ct.level for ct in cts})
        if len(levels) > 1:
            raise ValueError(
                f"cannot batch ciphertexts at mixed levels {levels}: the fused "
                f"(B*L, N) buffer needs one common shape; bring the members to "
                f"one level first (e.g. Evaluator.adjust / CipherVector.at_level)"
            )
        for ct in cts[1:]:
            if ct.ring_degree != first.ring_degree:
                raise ValueError("batched ciphertexts must share one ring degree")
            if ct.moduli != first.moduli:
                raise ValueError("batched ciphertexts must share one RNS basis")
            if ct.fmt is not first.fmt:
                raise ValueError("batched ciphertexts must share one limb format")
            if ct.slots != first.slots:
                raise ValueError("batched ciphertexts must share one slot count")
            if not scales_match(ct.scale, first.scale):
                raise ValueError(
                    f"cannot batch ciphertexts at mixed scales "
                    f"({ct.scale:.6g} vs {first.scale:.6g})"
                )
        pool = first.c0.stack.buffer.pool
        component_bytes = (
            len(cts) * first.limb_count * first.ring_degree
            * first.c0.stack.buffer.element_bytes
        )
        if not pool.fits(component_bytes, component_bytes):
            raise FusedFootprintError(
                f"fusing B={len(cts)} ciphertexts at L={first.limb_count} "
                f"limbs, N={first.ring_degree} needs two "
                f"{component_bytes}-byte component allocations, but the pool "
                f"budget is {pool.capacity_bytes} bytes with "
                f"{pool.free_bytes()} free; drain fewer requests per fused "
                f"batch (serve's BatchingPolicy.memory_budget_bytes) or raise "
                f"the pool capacity"
            )
        c0 = RNSPoly.from_stack(
            LimbStack.fuse([ct.c0.stack for ct in cts]), first.fmt
        )
        c1 = RNSPoly.from_stack(
            LimbStack.fuse([ct.c1.stack for ct in cts]), first.fmt
        )
        return cls(
            c0, c1, batch_size=len(cts), scale=first.scale, slots=first.slots,
            noise_bits=max(ct.noise_bits for ct in cts),
            encoded_lengths=[ct.encoded_length for ct in cts],
        )

    def split(self) -> list[Ciphertext]:
        """Return the member ciphertexts as zero-copy views of the batch.

        Views share the fused buffers (no copy, no pool charge); use
        ``.copy()`` on a member to detach it from the batch's lifetime.
        """
        fmt = self.c0.fmt
        c0_views = self.c0.stack.split(self.batch_size)
        c1_views = self.c1.stack.split(self.batch_size)
        return [
            Ciphertext(
                RNSPoly.from_stack(v0, fmt),
                RNSPoly.from_stack(v1, fmt),
                self.scale,
                self.slots,
                self.noise_bits,
                self.encoded_lengths[i],
            )
            for i, (v0, v1) in enumerate(zip(c0_views, c1_views))
        ]

    def copy(self) -> "CiphertextBatch":
        """Deep copy of both fused components."""
        return self._with(self.c0.copy(), self.c1.copy())

    def _with(self, c0: RNSPoly, c1: RNSPoly, *, scale: float | None = None
              ) -> "CiphertextBatch":
        return CiphertextBatch(
            c0, c1, batch_size=self.batch_size,
            scale=self.scale if scale is None else scale,
            slots=self.slots, noise_bits=self.noise_bits,
            encoded_lengths=list(self.encoded_lengths),
        )

    # -- metadata ------------------------------------------------------------

    @property
    def limb_count(self) -> int:
        """Per-member limb count ``L`` (the fused stacks hold ``B·L`` rows)."""
        return self.c0.level_count // self.batch_size

    @property
    def level(self) -> int:
        """Common remaining multiplicative depth of every member."""
        return self.limb_count - 1

    @property
    def moduli(self) -> list[int]:
        """The per-member RNS moduli."""
        return list(self.c0.moduli[: self.limb_count])

    @property
    def ring_degree(self) -> int:
        """Polynomial degree bound ``N``."""
        return self.c0.ring_degree

    @property
    def fmt(self) -> LimbFormat:
        """Common limb representation of the fused components."""
        return self.c0.fmt

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Device-memory footprint of the fused batch (``2·B·L·N`` elements).

        Defaults to the fused buffers' own element width (16 bytes on the
        double-word backend, 8 otherwise).
        """
        return (self.c0.footprint_bytes(element_bytes)
                + self.c1.footprint_bytes(element_bytes))

    def __len__(self) -> int:
        return self.batch_size


@dataclass
class DecomposedBatch:
    """ModUp'd digits of a fused polynomial, shared across rotations.

    The batched analogue of
    :class:`~repro.ckks.keyswitch.DecomposedPolynomial`: each entry of
    ``extended_digits`` is a fused ``(B·(L+K), N)`` polynomial, so hoisted
    rotations (§III-F.6) pay the decompose + ModUp once per distinct input
    batch and reuse it for every rotation key.
    """

    extended_digits: list[RNSPoly]
    limb_count: int
    batch_size: int


class BatchEvaluator:
    """Server-side evaluator over :class:`CiphertextBatch` handles.

    Every operation mirrors the sequential
    :class:`~repro.ckks.evaluator.Evaluator` member by member --
    bit-identical residues, same scale-ladder bookkeeping -- while
    executing one fused kernel stream for the whole batch.  Operands must
    share one level and scale (the evaluator's implicit-adjust convenience
    is deliberately absent: adjusting inside a fused batch would change
    its shape mid-operation; align members first, then fuse).
    """

    #: Byte budget of the tiled key-switching-key cache (per evaluator).
    #: Each entry holds two ``(B·(L+K), N)`` stacks, so a rotation-heavy
    #: workload across levels and batch sizes would otherwise grow it
    #: without bound; least recently used entries are evicted beyond this.
    TILED_KEY_BUDGET_BYTES = 128 << 20

    def __init__(self, context: Context, keys: KeySet) -> None:
        self.context = context
        self.keys = keys
        #: Key-switching key stacks tiled to batch width, cached per
        #: ``(key object, digit, limb_count, B)`` -- keys are long-lived
        #: and shared by every batch of the same shape (LRU, byte-bounded).
        self._tiled_keys: "OrderedDict[tuple, tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _check_pair(a: CiphertextBatch, b: CiphertextBatch) -> None:
        if a.batch_size != b.batch_size:
            raise ValueError(
                f"batch sizes differ ({a.batch_size} vs {b.batch_size})"
            )
        if a.level != b.level:
            raise ValueError(
                f"batched operands must share one level ({a.level} vs "
                f"{b.level}); adjust members before fusing"
            )
        if not scales_match(a.scale, b.scale):
            raise ValueError(
                f"scale mismatch at equal level: {a.scale:.6g} vs {b.scale:.6g}"
            )

    def _plain_operand(self, batch: CiphertextBatch, pt: Plaintext) -> RNSPoly:
        """Tile a plaintext to batch width in evaluation format.

        Mirrors ``Evaluator._plain_operand`` (truncate before the stacked
        NTT) and then repeats the ``(L, N)`` rows ``B`` times so the fused
        product is one kernel.
        """
        poly = pt.poly.keep_limbs(batch.limb_count)
        if poly.fmt is not LimbFormat.EVALUATION:
            poly = poly.to_evaluation()
        with _DISPATCH.suppressed():
            reps = (batch.batch_size,) + (1,) * (poly.stack.data.ndim - 1)
            tiled = np.tile(poly.stack.data, reps)
        _DISPATCH.link((poly.stack.data,), tiled)
        return RNSPoly.from_stack(
            LimbStack(list(poly.moduli) * batch.batch_size, tiled,
                      pool=poly.stack.buffer.pool),
            LimbFormat.EVALUATION,
        )

    def encode_for(self, batch: CiphertextBatch, values, *,
                   for_multiplication: bool = True) -> Plaintext:
        """Encode values at the scale that composes with every member."""
        if for_multiplication and batch.level >= 1:
            q = batch.moduli[-1]
            scale = q * self.context.scale_at(batch.level - 1) / batch.scale
        else:
            scale = batch.scale
        return encode(self.context, values, scale=scale,
                      limb_count=batch.limb_count)

    def _as_plaintext(self, batch: CiphertextBatch, values, *,
                      for_multiplication: bool) -> Plaintext:
        if isinstance(values, Plaintext):
            return values
        return self.encode_for(batch, values, for_multiplication=for_multiplication)

    def _scope(self, batch: CiphertextBatch, name: str):
        return _DISPATCH.scope(f"batch{batch.batch_size}/{name}")

    # ------------------------------------------------------------------
    # additions
    # ------------------------------------------------------------------

    def add(self, a: CiphertextBatch, b: CiphertextBatch) -> CiphertextBatch:
        """Batched ``HAdd``: two fused element-wise kernels for the batch."""
        self._check_pair(a, b)
        with self._scope(a, "hadd"):
            return a._with(a.c0.add(b.c0), a.c1.add(b.c1))

    def sub(self, a: CiphertextBatch, b: CiphertextBatch) -> CiphertextBatch:
        """Batched ``HSub``."""
        self._check_pair(a, b)
        with self._scope(a, "hadd"):
            return a._with(a.c0.sub(b.c0), a.c1.sub(b.c1))

    def negate(self, a: CiphertextBatch) -> CiphertextBatch:
        """Batched negation."""
        return a._with(a.c0.negate(), a.c1.negate())

    def add_plain(self, a: CiphertextBatch, pt: Plaintext) -> CiphertextBatch:
        """Batched ``PtAdd`` (one plaintext broadcast to every member)."""
        if not scales_match(a.scale, pt.scale):
            raise ValueError(
                f"plaintext scale {pt.scale:.6g} does not match batch {a.scale:.6g}"
            )
        with self._scope(a, "ptadd"):
            poly = self._plain_operand(a, pt)
            return a._with(a.c0.add(poly), a.c1.copy())

    def sub_plain(self, a: CiphertextBatch, pt: Plaintext) -> CiphertextBatch:
        """Batched plaintext subtraction."""
        if not scales_match(a.scale, pt.scale):
            raise ValueError("plaintext scale does not match batch")
        with self._scope(a, "ptadd"):
            poly = self._plain_operand(a, pt)
            return a._with(a.c0.sub(poly), a.c1.copy())

    def add_scalar(self, a: CiphertextBatch, value: float) -> CiphertextBatch:
        """Batched ``ScalarAdd``."""
        integer = int(round(float(value) * a.scale))
        with self._scope(a, "scalaradd"):
            return a._with(a.c0.add_scalar(integer), a.c1.copy())

    def sub_scalar(self, a: CiphertextBatch, value: float) -> CiphertextBatch:
        """Batched constant subtraction."""
        return self.add_scalar(a, -float(value))

    # ------------------------------------------------------------------
    # multiplications
    # ------------------------------------------------------------------

    def multiply_plain(self, a: CiphertextBatch, pt: Plaintext, *,
                       rescale: bool = True) -> CiphertextBatch:
        """Batched ``PtMult``: one plaintext against every member."""
        with self._scope(a, "ptmult"):
            poly = self._plain_operand(a, pt)
            result = a._with(
                a.c0.multiply(poly), a.c1.multiply(poly),
                scale=a.scale * pt.scale,
            )
        return self.rescale(result) if rescale else result

    def multiply_scalar(self, a: CiphertextBatch, value: float, *,
                        rescale: bool = True,
                        scalar_scale: float | None = None) -> CiphertextBatch:
        """Batched ``ScalarMult`` with the evaluator's ladder bookkeeping."""
        if rescale and a.level == 0:
            raise ValueError(
                "multiply_scalar(..., rescale=True) on a level-0 batch: there "
                "is no limb left to drop, so the result scale cannot be "
                "restored to the ladder; pass rescale=False or bootstrap first"
            )
        if scalar_scale is None:
            if rescale and a.level >= 1:
                q = a.moduli[-1]
                scalar_scale = q * self.context.scale_at(a.level - 1) / a.scale
            else:
                scalar_scale = self.context.scale
        integer = int(round(float(value) * scalar_scale))
        with self._scope(a, "scalarmult"):
            result = a._with(
                a.c0.multiply_scalar(integer),
                a.c1.multiply_scalar(integer),
                scale=a.scale * scalar_scale,
            )
        if rescale:
            level = a.level
            result = self.rescale(result)
            if level >= 1:
                result = result._with(
                    result.c0, result.c1,
                    scale=self.context.scale_at(level - 1) * 1.0,
                )
        return result

    def multiply(self, a: CiphertextBatch, b: CiphertextBatch, *,
                 rescale: bool = True, relinearize: bool = True) -> CiphertextBatch:
        """Batched ``HMult``: tensor, key switch and rescale fused batch-wide."""
        if a.batch_size != b.batch_size:
            raise ValueError(
                f"batch sizes differ ({a.batch_size} vs {b.batch_size})"
            )
        if a.level != b.level:
            raise ValueError(
                f"batched operands must share one level ({a.level} vs {b.level})"
            )
        with self._scope(a, "hmult"):
            with _DISPATCH.suppressed():
                d0 = a.c0.multiply(b.c0)
                d1 = RNSPoly.multiply_accumulate([(a.c0, b.c1), (a.c1, b.c0)])
                d2 = a.c1.multiply(b.c1)
            if _DISPATCH.recording:
                replay = None
                if _DISPATCH.executable_recording:

                    def replay(reads, writes, _col=a.c0.stack.moduli_col):
                        ac0, ac1, bc0, bc1 = reads
                        modmath.stack_mul_mod(ac0, bc0, _col, out=writes[0])
                        modmath.stack_dot_mod(
                            [(ac0, bc1), (ac1, bc0)], _col, out=writes[1]
                        )
                        modmath.stack_mul_mod(ac1, bc1, _col, out=writes[2])

                _DISPATCH.elementwise(
                    "tensor",
                    reads=(a.c0.stack.data, a.c1.stack.data,
                           b.c0.stack.data, b.c1.stack.data),
                    writes=(d0.stack.data, d1.stack.data, d2.stack.data),
                    ops_per_element=4.0 * MODMUL_OPS + 2.0 * MODADD_OPS,
                    replay=replay,
                )
            scale = a.scale * b.scale
            if relinearize:
                result = self._relinearize(a, d0, d1, d2, scale)
            else:
                result = a._with(d0, d1, scale=scale)
        return self.rescale(result) if rescale else result

    def square(self, a: CiphertextBatch, *, rescale: bool = True) -> CiphertextBatch:
        """Batched ``HSquare``."""
        with self._scope(a, "hsquare"):
            with _DISPATCH.suppressed():
                d0 = a.c0.multiply(a.c0)
                cross = a.c0.multiply(a.c1)
                d1 = cross.add(cross)
                d2 = a.c1.multiply(a.c1)
            if _DISPATCH.recording:
                replay = None
                if _DISPATCH.executable_recording:

                    def replay(reads, writes, _col=a.c0.stack.moduli_col):
                        c0, c1 = reads
                        modmath.stack_mul_mod(c0, c0, _col, out=writes[0])
                        cross = modmath.stack_mul_mod(c0, c1, _col)
                        modmath.stack_add_mod(cross, cross, _col, out=writes[1])
                        modmath.stack_mul_mod(c1, c1, _col, out=writes[2])

                _DISPATCH.elementwise(
                    "square-tensor",
                    reads=(a.c0.stack.data, a.c1.stack.data),
                    writes=(d0.stack.data, d1.stack.data, d2.stack.data),
                    ops_per_element=3.0 * MODMUL_OPS + MODADD_OPS,
                    replay=replay,
                )
            result = self._relinearize(a, d0, d1, d2, a.scale * a.scale)
        return self.rescale(result) if rescale else result

    def _relinearize(self, template: CiphertextBatch, d0: RNSPoly, d1: RNSPoly,
                     d2: RNSPoly, scale: float) -> CiphertextBatch:
        decomposed = self.decompose_and_mod_up(template, d2)
        delta0, delta1 = self.apply_key(decomposed, self.keys.relinearization_key)
        with _DISPATCH.suppressed():
            c0 = d0.add(delta0)
            c1 = d1.add(delta1)
        if _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(reads, writes, _col=d0.stack.moduli_col):
                    modmath.stack_add_mod(reads[0], reads[1], _col, out=writes[0])
                    modmath.stack_add_mod(reads[2], reads[3], _col, out=writes[1])

            _DISPATCH.elementwise(
                "relin-add",
                reads=(d0.stack.data, delta0.stack.data,
                       d1.stack.data, delta1.stack.data),
                writes=(c0.stack.data, c1.stack.data),
                ops_per_element=2.0 * MODADD_OPS,
                replay=replay,
            )
        return template._with(c0, c1, scale=scale)

    # ------------------------------------------------------------------
    # batched hybrid key switching
    # ------------------------------------------------------------------

    def decompose_and_mod_up(self, batch: CiphertextBatch,
                             poly: RNSPoly) -> DecomposedBatch:
        """Digit-decompose and ModUp a fused polynomial for the whole batch.

        One stacked iNTT covers every member; each digit's base conversion
        fuses the batch along the column axis (the conversion is
        element-wise per column); one fused stacked NTT returns all digits
        of all members to the evaluation domain.  Kernel structure matches
        the sequential :func:`~repro.ckks.keyswitch.decompose_and_mod_up`
        with ``B×`` the rows per kernel.
        """
        context = self.context
        bsz = batch.batch_size
        limb_count = batch.limb_count
        n = context.ring_degree
        member_moduli = tuple(batch.moduli)
        target_moduli = context.moduli_at(limb_count) + context.special_moduli
        target_col = modmath.moduli_column(target_moduli)
        extended = len(target_moduli)
        num_digits = context.active_digits(limb_count)
        with _DISPATCH.scope("modup"):
            poly_coeff = get_stacked_engine(
                n, member_moduli * bsz
            ).inverse(poly.stack.data)
            # Rows are (N,) flat or (2, N) digit planes; keep the trailing
            # axes generic so the fused reshapes cover both backends.
            tail = poly.stack.data.shape[1:]
            source = poly.stack.data.reshape(bsz, limb_count, *tail)
            coeff3 = poly_coeff.reshape(bsz, limb_count, *tail)
            digits_out: list[RNSPoly] = []
            with _DISPATCH.suppressed():
                blocks: list[np.ndarray] = []
                fused_moduli: list[int] = []
                segments: list[int] = []
                digit_indices_list: list[list[int]] = []
                for digit_index in range(num_digits):
                    digit_indices = [
                        i for i in context.digit_limb_indices(digit_index)
                        if i < limb_count
                    ]
                    digit_indices_list.append(digit_indices)
                    converter = context.modup_converter(limb_count, digit_index)
                    # (B, d_j, N) -> (d_j, B*N): the conversion is columnwise,
                    # so one matrix expression covers every member.  Dword
                    # stacks keep their (2, N) planes inside the fused column:
                    # (B, d_j, 2, N) -> (d_j, 2, B*N).
                    sel = coeff3[:, digit_indices]
                    if sel.ndim == 4:
                        digit_rows = sel.transpose(1, 2, 0, 3).reshape(
                            len(digit_indices), 2, bsz * n
                        )
                    else:
                        digit_rows = sel.transpose(1, 0, 2).reshape(
                            len(digit_indices), bsz * n
                        )
                    _DISPATCH.link((poly_coeff,), digit_rows)
                    converted = converter.convert_stack(digit_rows)
                    # (t_j, B*N) -> (t_j*B, N): rows stay limb-major (limb t
                    # of every member, then limb t+1).  On the dword backend
                    # the member axis moves back outside the digit planes.
                    if converted.ndim == 3:
                        block = (
                            converted.reshape(-1, 2, bsz, n)
                            .transpose(0, 2, 1, 3)
                            .reshape(-1, 2, n)
                        )
                    else:
                        block = converted.reshape(-1, n)
                    _DISPATCH.link((converted,), block)
                    blocks.append(block)
                    for q in converter.target.moduli:
                        fused_moduli.extend([q] * bsz)
                    segments.append(block.shape[0])
                stacked = np.vstack([
                    modmath.coerce_stack(b, target_col) for b in blocks
                ])
                row = 0
                for block in blocks:
                    _DISPATCH.link((block,), stacked[row : row + len(block)])
                    row += len(block)
            # Re-emit the suppressed per-digit kernels at launch granularity
            # (one base conversion per digit over B*N columns).
            if _DISPATCH.recording:
                executable = _DISPATCH.executable_recording
                row = 0
                for digit_index in range(num_digits):
                    converter = context.modup_converter(limb_count, digit_index)
                    replay = None
                    if executable:

                        def replay(
                            reads, writes, _conv=converter,
                            _idx=list(digit_indices_list[digit_index]),
                            _b=bsz, _lc=limb_count, _n=n, _tcol=target_col,
                        ):
                            src = reads[0]
                            coeff3 = src.reshape(_b, _lc, *src.shape[1:])
                            sel = coeff3[:, _idx]
                            if sel.ndim == 4:
                                digit_rows = sel.transpose(1, 2, 0, 3).reshape(
                                    len(_idx), 2, _b * _n
                                )
                            else:
                                digit_rows = sel.transpose(1, 0, 2).reshape(
                                    len(_idx), _b * _n
                                )
                            conv = _conv.convert_stack(digit_rows)
                            if conv.ndim == 3:
                                block = (
                                    conv.reshape(-1, 2, _b, _n)
                                    .transpose(0, 2, 1, 3)
                                    .reshape(-1, 2, _n)
                                )
                            else:
                                block = conv.reshape(-1, _n)
                            writes[0][...] = modmath.coerce_stack(block, _tcol)

                    _DISPATCH.base_conversion(
                        "baseconv", len(digit_indices_list[digit_index]),
                        len(converter.target.moduli),
                        reads=(poly_coeff,),
                        writes=(stacked[row : row + segments[digit_index]],),
                        cols=bsz * n,
                        replay=replay,
                    )
                    row += segments[digit_index]
            fused_eval = get_stacked_engine(n, tuple(fused_moduli)).forward(
                stacked, consume=True, segments=segments,
            )
            eval3 = fused_eval  # rows: digit-major, then limb, then member
            row_offset = 0
            for digit_index in range(num_digits):
                digit_indices = digit_indices_list[digit_index]
                block_rows = segments[digit_index]
                converted_eval = eval3[row_offset : row_offset + block_rows]
                row_offset += block_rows
                with _DISPATCH.suppressed():
                    target_backend = modmath.stack_backend(target_col)
                    if target_backend == modmath.BACKEND_DWORD:
                        stack = np.empty((bsz, extended, 2, n), dtype=np.uint64)
                    elif target_backend == modmath.BACKEND_UINT64:
                        stack = np.empty((bsz, extended, n), dtype=np.uint64)
                    else:
                        stack = np.empty((bsz, extended, n), dtype=object)
                    tail_t = stack.shape[2:]
                    non_digit = [
                        i for i in range(extended) if i not in digit_indices
                    ]
                    stack[:, digit_indices] = modmath.coerce_stack(
                        source[:, digit_indices].reshape(-1, *tail), target_col
                    ).reshape(bsz, len(digit_indices), *tail_t)
                    # (t_j*B, N) limb-major -> (B, t_j, N) member-major.
                    stack[:, non_digit] = modmath.coerce_stack(
                        converted_eval, target_col
                    ).reshape(len(non_digit), bsz, *tail_t).swapaxes(0, 1)
                    flat = stack.reshape(bsz * extended, *tail_t)
                _DISPATCH.link((converted_eval, poly.stack.data), flat)
                digits_out.append(
                    RNSPoly.from_stack(
                        LimbStack(list(target_moduli) * bsz, flat,
                                  pool=poly.stack.buffer.pool),
                        LimbFormat.EVALUATION,
                    )
                )
        return DecomposedBatch(
            extended_digits=digits_out, limb_count=limb_count, batch_size=bsz
        )

    def _tiled_key_digit(self, key: KeySwitchingKey, digit_index: int,
                         limb_count: int, bsz: int
                         ) -> tuple[np.ndarray, np.ndarray]:
        """Key digit stacks restricted to the active basis, tiled ``B×``.

        Cached per (key, digit, level, batch size): keys are shared by
        every request, so the tiling cost is paid once per batch shape.
        """
        cache_key = (id(key), digit_index, limb_count, bsz)
        tiled = self._tiled_keys.get(cache_key)
        if tiled is None:
            b_j, a_j = key.digits[digit_index]
            active_indices = list(range(limb_count)) + [
                len(self.context.moduli) + i
                for i in range(len(self.context.special_moduli))
            ]
            if len(active_indices) != b_j.level_count:
                b_j = b_j.select_limbs(active_indices)
                a_j = a_j.select_limbs(active_indices)
            reps = (bsz,) + (1,) * (b_j.stack.data.ndim - 1)
            tiled = (
                np.tile(b_j.stack.data, reps),
                np.tile(a_j.stack.data, reps),
            )
            self._tiled_keys[cache_key] = tiled
            total = sum(
                b.nbytes + a.nbytes for b, a in self._tiled_keys.values()
            )
            while total > self.TILED_KEY_BUDGET_BYTES and len(self._tiled_keys) > 1:
                _, (old_b, old_a) = self._tiled_keys.popitem(last=False)
                total -= old_b.nbytes + old_a.nbytes
        else:
            self._tiled_keys.move_to_end(cache_key)
        return tiled

    def apply_key(self, decomposed: DecomposedBatch, key: KeySwitchingKey, *,
                  automorphism_exponent: int | None = None
                  ) -> tuple[RNSPoly, RNSPoly]:
        """Key-multiply ModUp'd digits and ModDown, fused across the batch.

        With ``automorphism_exponent`` the hoisted-rotation path applies
        the automorphism to every fused digit first (one gather for the
        whole batch per digit).
        """
        context = self.context
        bsz = decomposed.batch_size
        limb_count = decomposed.limb_count
        with _DISPATCH.scope("keyswitch"):
            pairs0: list[tuple[np.ndarray, np.ndarray]] = []
            pairs1: list[tuple[np.ndarray, np.ndarray]] = []
            digit_reads: list[np.ndarray] = []
            fused_col = None
            for digit_index, digit_poly in enumerate(decomposed.extended_digits):
                if automorphism_exponent is not None:
                    digit_poly = digit_poly.automorphism(automorphism_exponent)
                b_data, a_data = self._tiled_key_digit(
                    key, digit_index, limb_count, bsz
                )
                fused_col = digit_poly.stack.moduli_col
                digit_reads.append(digit_poly.stack.data)
                pairs0.append((digit_poly.stack.data, b_data))
                pairs1.append((digit_poly.stack.data, a_data))
            with _DISPATCH.suppressed():
                acc0 = modmath.stack_dot_mod(pairs0, fused_col)
                acc1 = modmath.stack_dot_mod(pairs1, fused_col)
            if _DISPATCH.recording:
                replay = None
                if _DISPATCH.executable_recording:

                    def replay(reads, writes, _d=len(pairs0), _col=fused_col):
                        digits = reads[:_d]
                        keys0 = reads[_d : 2 * _d]
                        keys1 = reads[2 * _d :]
                        modmath.stack_dot_mod(
                            list(zip(digits, keys0)), _col, out=writes[0]
                        )
                        modmath.stack_dot_mod(
                            list(zip(digits, keys1)), _col, out=writes[1]
                        )

                _DISPATCH.elementwise(
                    "ks-inner-product",
                    reads=tuple(digit_reads)
                    + tuple(k for _, k in pairs0)
                    + tuple(k for _, k in pairs1),
                    writes=(acc0, acc1),
                    ops_per_element=len(pairs0) * 2.0 * (MODMUL_OPS + MODADD_OPS),
                    replay=replay,
                )
            pool = decomposed.extended_digits[0].stack.buffer.pool
            delta0, delta1 = self._mod_down_pair(acc0, acc1, bsz, limb_count, pool)
            return delta0, delta1

    def _mod_down_pair(self, acc0: np.ndarray, acc1: np.ndarray, bsz: int,
                       limb_count: int, pool) -> tuple[RNSPoly, RNSPoly]:
        """Fused ModDown of both key-switching accumulators for the batch.

        Mirrors :func:`~repro.ckks.keyswitch.mod_down_many` over ``2B``
        member components: shared iNTT/NTT passes, one column-fused base
        conversion, batched subtract and ``P^{-1}`` scaling.  Recording
        stays per component (two pipelines), matching the sequential
        kernel structure at ``B×`` rows.
        """
        context = self.context
        n = context.ring_degree
        special_moduli = tuple(context.special_moduli)
        special_count = len(special_moduli)
        extended = limb_count + special_count
        target_moduli = context.moduli_at(limb_count)
        target_col = modmath.moduli_column(target_moduli)
        with _DISPATCH.scope("moddown"), _DISPATCH.suppressed():
            tail = acc0.shape[1:]
            # (2B*K, N): component-major, then member, then special limb.
            special_rows = np.vstack([
                acc.reshape(bsz, extended, *tail)[:, limb_count:]
                .reshape(-1, *tail)
                for acc in (acc0, acc1)
            ])
            for i, acc in enumerate((acc0, acc1)):
                _DISPATCH.link(
                    (acc,),
                    special_rows[i * bsz * special_count : (i + 1) * bsz * special_count],
                )
            special_coeff = get_stacked_engine(
                n, special_moduli * (2 * bsz)
            ).inverse(special_rows, consume=True)
            converter = context.moddown_converter(limb_count)
            # Column-fuse all 2B components: (2B*K, N) -> (K, 2B*N) (digit
            # planes, when present, stay inside each fused row).
            sc = special_coeff.reshape(
                2 * bsz, special_count, *special_coeff.shape[1:]
            )
            if sc.ndim == 4:
                fused_special = sc.transpose(1, 2, 0, 3).reshape(
                    special_count, 2, 2 * bsz * n
                )
            else:
                fused_special = sc.transpose(1, 0, 2).reshape(
                    special_count, 2 * bsz * n
                )
            converted = converter.convert_stack(fused_special)
            if converted.ndim == 3:
                converted = (
                    converted.reshape(limb_count, 2, 2 * bsz, n)
                    .transpose(2, 0, 1, 3)
                    .reshape(2 * bsz * limb_count, 2, n)
                )
            else:
                converted = (
                    converted.reshape(limb_count, 2 * bsz, n)
                    .transpose(1, 0, 2)
                    .reshape(2 * bsz * limb_count, n)
                )
            converted = get_stacked_engine(
                n, tuple(target_moduli) * (2 * bsz)
            ).forward(converted, consume=True)
            converted = modmath.coerce_stack(
                converted, modmath.moduli_column(target_moduli * (2 * bsz))
            )
            # The ``P^{-1}(x - Conv(x'))`` tail folds each component's head
            # limbs into its block of ``converted`` in place (no heads
            # vstack, no separate diff/result buffers) -- per-row math is
            # identical to the old fused-column form.
            comp_col = modmath.moduli_column(target_moduli * bsz)
            comp_pinv = tuple(context.p_inv_mod_q[:limb_count]) * bsz
            comp_rows = bsz * limb_count
            for i, acc in enumerate((acc0, acc1)):
                seg = converted[i * comp_rows : (i + 1) * comp_rows]
                heads = modmath.coerce_stack(
                    acc.reshape(bsz, extended, *tail)[:, :limb_count]
                    .reshape(-1, *tail),
                    comp_col,
                )
                modmath.stack_sub_mod(heads, seg, comp_col, out=seg)
                modmath.stack_scalar_mod(seg, comp_pinv, comp_col, out=seg)
            out = converted
        if _DISPATCH.recording:
            executable = _DISPATCH.executable_recording
            p_inv = tuple(context.p_inv_mod_q[:limb_count])
            with _DISPATCH.scope("moddown"):
                rows = bsz * limb_count
                for i, acc in enumerate((acc0, acc1)):
                    comp_special = special_coeff[
                        i * bsz * special_count : (i + 1) * bsz * special_count
                    ]
                    comp_conv = converted[i * rows : (i + 1) * rows]
                    comp_out = out[i * rows : (i + 1) * rows]
                    intt_replay = conv_replay = tail_replay = None
                    if executable:

                        def intt_replay(
                            reads, writes, _b=bsz, _lc=limb_count,
                            _k=special_count, _n=n, _sm=special_moduli,
                        ):
                            acc_r = reads[0]
                            tail_r = acc_r.shape[1:]
                            rows_r = acc_r.reshape(_b, _lc + _k, *tail_r)[
                                :, _lc:
                            ].reshape(-1, *tail_r)
                            res = get_stacked_engine(_n, _sm * _b).inverse(
                                rows_r, consume=True
                            )
                            np.copyto(writes[0], res)

                        def conv_replay(
                            reads, writes, _conv=converter, _b=bsz,
                            _k=special_count, _lc=limb_count, _n=n,
                        ):
                            src = reads[0]
                            sc_r = src.reshape(_b, _k, *src.shape[1:])
                            if sc_r.ndim == 4:
                                fused = sc_r.transpose(1, 2, 0, 3).reshape(
                                    _k, 2, _b * _n
                                )
                            else:
                                fused = sc_r.transpose(1, 0, 2).reshape(
                                    _k, _b * _n
                                )
                            conv = _conv.convert_stack(fused)
                            if conv.ndim == 3:
                                conv = (
                                    conv.reshape(_lc, 2, _b, _n)
                                    .transpose(2, 0, 1, 3)
                                    .reshape(-1, 2, _n)
                                )
                            else:
                                conv = (
                                    conv.reshape(_lc, _b, _n)
                                    .transpose(1, 0, 2)
                                    .reshape(-1, _n)
                                )
                            writes[0][...] = conv

                        def tail_replay(
                            reads, writes, _b=bsz, _lc=limb_count,
                            _k=special_count, _n=n,
                            _tm=tuple(target_moduli), _pinv=p_inv,
                        ):
                            dst = writes[0]
                            if not np.shares_memory(reads[0], dst):
                                np.copyto(dst, reads[0])
                            res = get_stacked_engine(_n, _tm * _b).forward(
                                dst, consume=True
                            )
                            if res is not dst:
                                np.copyto(dst, res)
                            acc_r = reads[1]
                            tail_r = acc_r.shape[1:]
                            col = modmath.moduli_column(_tm * _b)
                            heads = modmath.coerce_stack(
                                acc_r.reshape(_b, _lc + _k, *tail_r)[
                                    :, :_lc
                                ].reshape(-1, *tail_r),
                                col,
                            )
                            modmath.stack_sub_mod(heads, dst, col, out=dst)
                            modmath.stack_scalar_mod(
                                dst, _pinv * _b, col, out=dst
                            )

                    _DISPATCH.transform(
                        "intt", bsz * special_count, reads=(acc,),
                        writes=(comp_special,), cols=n,
                        replay=intt_replay,
                    )
                    _DISPATCH.base_conversion(
                        "baseconv", special_count, limb_count,
                        reads=(comp_special,), writes=(comp_conv,), cols=bsz * n,
                        replay=conv_replay,
                    )
                    _DISPATCH.transform(
                        "ntt", bsz * limb_count, reads=(comp_conv, acc),
                        writes=(comp_out,), cols=n,
                        fused_ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=tail_replay,
                    )
        rows = bsz * limb_count
        tiled_target = list(target_moduli) * bsz
        return (
            RNSPoly.from_stack(
                LimbStack(tiled_target, out[:rows], pool=pool),
                LimbFormat.EVALUATION,
            ),
            RNSPoly.from_stack(
                LimbStack(tiled_target, out[rows:], pool=pool),
                LimbFormat.EVALUATION,
            ),
        )

    # ------------------------------------------------------------------
    # level management
    # ------------------------------------------------------------------

    def mod_reduce(self, batch: CiphertextBatch, limb_count: int) -> CiphertextBatch:
        """Drop limbs of every member without rescaling (batched mod-reduce).

        The fused stacks are member-major, so the reduction selects the
        first ``limb_count`` rows of each member block; per-member values
        match :meth:`repro.ckks.evaluator.Evaluator.mod_reduce` exactly.
        """
        if limb_count > batch.limb_count:
            raise ValueError("cannot mod-reduce to a larger limb count")
        if limb_count == batch.limb_count:
            return batch.copy()
        full = batch.limb_count
        indices = [
            member * full + j
            for member in range(batch.batch_size)
            for j in range(limb_count)
        ]
        return batch._with(
            batch.c0.select_limbs(indices), batch.c1.select_limbs(indices)
        )

    def adjust(self, batch: CiphertextBatch, target_level: int,
               target_scale: float | None = None) -> CiphertextBatch:
        """Bring every member to ``target_level`` at the requested scale.

        The batched twin of :meth:`repro.ckks.evaluator.Evaluator.adjust`
        -- mod-reduce, one integer scalar multiplication and one fused
        rescale -- bit-identical member by member because all members share
        one scale (so the correction weight is one integer for the whole
        batch).  This is what lets serving programs align levels before a
        batched multiplication without unfusing.
        """
        if target_scale is None:
            target_scale = self.context.scale_at(target_level)
        if target_level > batch.level:
            raise ValueError("cannot adjust to a higher level")
        if target_level == batch.level:
            if not scales_match(batch.scale, target_scale):
                raise ValueError(
                    f"cannot change scale in place "
                    f"({batch.scale:.6g} vs {target_scale:.6g})"
                )
            return batch.copy()
        reduced = self.mod_reduce(batch, target_level + 2)
        q = reduced.moduli[-1]
        weight = max(1, int(round(q * target_scale / reduced.scale)))
        with self._scope(batch, "adjust"):
            adjusted = reduced._with(
                reduced.c0.multiply_scalar(weight),
                reduced.c1.multiply_scalar(weight),
                scale=reduced.scale * weight,
            )
            rescaled = self.rescale(adjusted)
        return rescaled._with(rescaled.c0, rescaled.c1, scale=float(target_scale))

    # ------------------------------------------------------------------
    # rescaling
    # ------------------------------------------------------------------

    def rescale(self, batch: CiphertextBatch) -> CiphertextBatch:
        """Batched RNS rescale: both components of every member in one pass.

        Per-member math is exactly
        :meth:`repro.core.rns_poly.RNSPoly.rescale_last_many`; the switched
        last limbs and the (i)NTT passes of all ``2B`` component
        polynomials fuse into single stacked calls.
        """
        if batch.limb_count < 2:
            raise ValueError("cannot rescale a level-0 batch")
        bsz = batch.batch_size
        n = batch.ring_degree
        member_moduli = tuple(batch.moduli)
        q_last = member_moduli[-1]
        keep = len(member_moduli) - 1
        target_moduli = list(member_moduli[:-1])
        target_col = modmath.moduli_column(target_moduli)
        is_eval = batch.fmt is LimbFormat.EVALUATION
        with _DISPATCH.scope(f"batch{bsz}/rescale"):
            with _DISPATCH.suppressed():
                comps = (batch.c0.stack.data, batch.c1.stack.data)
                tail = comps[0].shape[1:]
                # (2B, N): last limb of each component of each member.
                last_rows = np.vstack([
                    comp.reshape(bsz, keep + 1, *tail)[:, -1] for comp in comps
                ])
                for i, comp in enumerate(comps):
                    _DISPATCH.link((comp,), last_rows[i * bsz : (i + 1) * bsz])
                if is_eval:
                    last_rows = get_stacked_engine(
                        n, (q_last,) * (2 * bsz)
                    ).inverse(last_rows, consume=True)
                switched = modmath.stack_switch_modulus_many(
                    last_rows, q_last, target_col
                )
                if is_eval:
                    switched = get_stacked_engine(
                        n, tuple(target_moduli) * (2 * bsz)
                    ).forward(switched, consume=True)
                fused_col = modmath.moduli_column(target_moduli * (2 * bsz))
                heads = np.vstack([
                    modmath.coerce_stack(
                        comp.reshape(bsz, keep + 1, *tail)[:, :-1]
                        .reshape(-1, *tail),
                        fused_col,
                    )
                    for comp in comps
                ])
                diff = modmath.stack_sub_mod(heads, switched, fused_col)
                inverses = _rescale_inverses(member_moduli)
                out = modmath.stack_scalar_mod(
                    diff, inverses * (2 * bsz), fused_col
                )
            if _DISPATCH.recording:
                executable = _DISPATCH.executable_recording
                for i, comp in enumerate(comps):
                    comp_out = out[i * bsz * keep : (i + 1) * bsz * keep]
                    dropped = last_rows[i * bsz : (i + 1) * bsz]
                    intt_replay = tail_replay = None
                    if executable:

                        def intt_replay(
                            reads, writes, _b=bsz, _kp=keep, _n=n, _q=q_last,
                        ):
                            comp_r = reads[0]
                            tail_r = comp_r.shape[1:]
                            rows_r = np.ascontiguousarray(
                                comp_r.reshape(_b, _kp + 1, *tail_r)[:, -1]
                            )
                            res = get_stacked_engine(_n, (_q,) * _b).inverse(
                                rows_r, consume=True
                            )
                            np.copyto(writes[0], res)

                        def tail_replay(
                            reads, writes, _b=bsz, _kp=keep, _n=n, _q=q_last,
                            _tm=tuple(target_moduli), _tcol=target_col,
                            _inv=_rescale_inverses(member_moduli),
                            _eval=is_eval,
                        ):
                            sw = modmath.stack_switch_modulus_many(
                                reads[0], _q, _tcol, out=writes[0]
                            )
                            col = modmath.moduli_column(list(_tm) * _b)
                            if _eval:
                                res = get_stacked_engine(
                                    _n, _tm * _b
                                ).forward(sw, consume=True)
                                if res is not sw:
                                    np.copyto(sw, res)
                            comp_r = reads[1]
                            tail_r = comp_r.shape[1:]
                            heads = modmath.coerce_stack(
                                comp_r.reshape(_b, _kp + 1, *tail_r)[
                                    :, :-1
                                ].reshape(-1, *tail_r),
                                col,
                            )
                            modmath.stack_sub_mod(heads, sw, col, out=sw)
                            modmath.stack_scalar_mod(sw, _inv * _b, col, out=sw)

                    if is_eval:
                        _DISPATCH.transform(
                            "intt", bsz, reads=(comp,), writes=(dropped,),
                            cols=n, fused_ops_per_element=MODADD_OPS,
                            replay=intt_replay,
                        )
                        _DISPATCH.transform(
                            "ntt", bsz * keep, reads=(dropped, comp),
                            writes=(comp_out,), cols=n,
                            fused_ops_per_element=MODMUL_OPS + MODADD_OPS,
                            replay=tail_replay,
                        )
                    else:
                        _DISPATCH.elementwise(
                            "rescale-fused", reads=(dropped, comp),
                            writes=(comp_out,),
                            ops_per_element=MODMUL_OPS + MODADD_OPS,
                            replay=tail_replay,
                        )
            pool = batch.c0.stack.buffer.pool
            tiled_target = target_moduli * bsz
            rows = bsz * keep
            c0 = RNSPoly.from_stack(
                LimbStack(tiled_target, out[:rows], pool=pool), batch.fmt
            )
            c1 = RNSPoly.from_stack(
                LimbStack(tiled_target, out[rows:], pool=pool), batch.fmt
            )
        return batch._with(c0, c1, scale=batch.scale / q_last)

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------

    def rotate(self, batch: CiphertextBatch, steps: int) -> CiphertextBatch:
        """Batched ``HRotate``: one automorphism gather and one fused key
        switch for every member."""
        if steps % batch.slots == 0:
            return batch.copy()
        key = self.keys.rotation_key(steps)
        exponent = rotation_to_exponent(self.context.ring_degree, steps)
        with self._scope(batch, "hrotate"):
            return self._apply_automorphism(batch, exponent, key)

    def conjugate(self, batch: CiphertextBatch) -> CiphertextBatch:
        """Batched ``HConjugate``."""
        if self.keys.conjugation_key is None:
            raise KeyError("no conjugation key was generated")
        exponent = conjugation_exponent(self.context.ring_degree)
        with self._scope(batch, "hconjugate"):
            return self._apply_automorphism(batch, exponent, self.keys.conjugation_key)

    def _apply_automorphism(self, batch: CiphertextBatch, exponent: int,
                            key: KeySwitchingKey) -> CiphertextBatch:
        rotated_c0 = batch.c0.automorphism(exponent)
        rotated_c1 = batch.c1.automorphism(exponent)
        decomposed = self.decompose_and_mod_up(batch, rotated_c1)
        delta0, delta1 = self.apply_key(decomposed, key)
        return batch._with(rotated_c0.add(delta0), delta1)

    def hoisted_rotations(self, batch: CiphertextBatch, steps: Sequence[int]
                          ) -> dict[int, CiphertextBatch]:
        """Rotate every member by many step counts, sharing one ModUp.

        The hoisting optimisation (§III-F.6) at batch granularity: the
        digit decomposition and base extension of the fused ``c1`` run once
        per distinct input batch and are reused for every rotation key.
        """
        with self._scope(batch, "hoisted"):
            decomposed = self.decompose_and_mod_up(batch, batch.c1)
            results: dict[int, CiphertextBatch] = {}
            for step in steps:
                step = int(step)
                if step % batch.slots == 0:
                    results[step] = batch.copy()
                    continue
                key = self.keys.rotation_key(step)
                exponent = rotation_to_exponent(self.context.ring_degree, step)
                delta0, delta1 = self.apply_key(
                    decomposed, key, automorphism_exponent=exponent
                )
                rotated_c0 = batch.c0.automorphism(exponent)
                results[step] = batch._with(rotated_c0.add(delta0), delta1)
            return results


__all__ = ["CiphertextBatch", "BatchEvaluator", "DecomposedBatch"]
