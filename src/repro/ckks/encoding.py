"""CKKS canonical-embedding encoder/decoder.

CKKS messages are vectors of up to ``N/2`` complex numbers.  Encoding maps
a message to an integer polynomial whose canonical embedding (evaluations
at the primitive 2N-th roots of unity indexed by the powers of 5) equals
the message scaled by ``Δ``; decoding inverts the map.  Both directions
are computed with length-``2N`` FFTs, so they cost ``O(N log N)`` like the
NTT-based server operations.

Sparse packing: messages shorter than ``N/2`` slots are zero-padded to a
power of two and replicated across the slot vector, which is equivalent to
the sparse encoding used by OpenFHE (the underlying polynomial is then
supported on every ``N/(2s)``-th coefficient).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def rotation_group(ring_degree: int) -> np.ndarray:
    """Return the slot-index exponents ``5^j mod 2N`` for ``j < N/2``."""
    n = ring_degree
    group = np.zeros(n // 2, dtype=np.int64)
    value = 1
    for j in range(n // 2):
        group[j] = value
        value = (value * 5) % (2 * n)
    return group


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


@dataclass(frozen=True)
class CKKSEncoder:
    """Encode/decode between complex message vectors and integer polynomials."""

    ring_degree: int

    @property
    def max_slots(self) -> int:
        """Maximum number of message slots (``N/2``)."""
        return self.ring_degree // 2

    # -- message layout -------------------------------------------------------

    def expand_message(self, values) -> np.ndarray:
        """Zero-pad to a power of two and replicate to fill all ``N/2`` slots."""
        values = np.asarray(values, dtype=np.complex128).ravel()
        if len(values) == 0:
            raise ValueError("cannot encode an empty message")
        if len(values) > self.max_slots:
            raise ValueError(
                f"message has {len(values)} entries; at most {self.max_slots} slots"
            )
        padded_len = _next_power_of_two(len(values))
        padded = np.zeros(padded_len, dtype=np.complex128)
        padded[: len(values)] = values
        repeats = self.max_slots // padded_len
        return np.tile(padded, repeats)

    # -- encode / decode ------------------------------------------------------

    def embed(self, slot_values: np.ndarray) -> np.ndarray:
        """Inverse canonical embedding: slot values -> real coefficient vector."""
        n = self.ring_degree
        slots = np.asarray(slot_values, dtype=np.complex128)
        if len(slots) != self.max_slots:
            raise ValueError("embed expects a full slot vector")
        group = rotation_group(n)
        spectrum = np.zeros(2 * n, dtype=np.complex128)
        spectrum[group] = slots
        spectrum[(2 * n - group) % (2 * n)] = np.conj(slots)
        coeffs = np.fft.fft(spectrum)[:n] / n
        return coeffs.real

    def project(self, coefficients: np.ndarray) -> np.ndarray:
        """Canonical embedding: real coefficient vector -> slot values."""
        n = self.ring_degree
        coeffs = np.asarray(coefficients, dtype=np.float64)
        if len(coeffs) != n:
            raise ValueError("project expects N coefficients")
        padded = np.zeros(2 * n, dtype=np.complex128)
        padded[:n] = coeffs
        spectrum = np.fft.ifft(padded) * (2 * n)
        group = rotation_group(n)
        return spectrum[group]

    def encode(self, values, scale: float) -> list[int]:
        """Encode a message into integer polynomial coefficients at ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        slots = self.expand_message(values)
        coeffs = self.embed(slots) * scale
        return [int(round(c)) for c in coeffs]

    def decode(self, coefficients, scale: float, length: int | None = None) -> np.ndarray:
        """Decode integer (or float) coefficients back into complex slot values."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        coeffs = np.asarray([float(c) for c in coefficients], dtype=np.float64)
        slots = self.project(coeffs) / scale
        if length is None:
            length = self.max_slots
        return slots[:length]

    def encode_diagonal(self, diagonal, scale: float) -> list[int]:
        """Encode an arbitrary complex slot vector without replication.

        Used by the linear-transform machinery, where diagonals are already
        full-length slot vectors (possibly non-repeating).
        """
        diagonal = np.asarray(diagonal, dtype=np.complex128).ravel()
        if len(diagonal) != self.max_slots:
            raise ValueError("diagonal must have exactly N/2 entries")
        coeffs = self.embed(diagonal) * scale
        return [int(round(c)) for c in coeffs]


__all__ = ["CKKSEncoder", "rotation_group"]
