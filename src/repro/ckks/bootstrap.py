"""CKKS bootstrapping: ModRaise, CoeffToSlot, ApproxModEval, SlotToCoeff.

Bootstrapping refreshes an exhausted ciphertext (one remaining limb) into a
high-level ciphertext encrypting approximately the same message, following
the blueprint of Cheon et al. [38] with the improvements FIDESlib adopts
from OpenFHE: a Chebyshev/Paterson-Stockmeyer approximation of the scaled
sine (Han-Ki [37], Bossuat et al. [43]) and BSGS homomorphic DFTs for the
CoeffToSlot / SlotToCoeff linear transforms [40], [42], [44].

Outline (for input ciphertext ``ct`` at level 0, scale ``Δ0``, modulus
``q0``, encrypting the integer polynomial ``m``):

1. **ModRaise** -- reinterpret the level-0 residues over the full modulus
   ``Q``.  The underlying polynomial becomes ``t = m + q0·I`` with
   ``‖I‖_∞`` bounded by the sparse secret's Hamming weight.
2. **CoeffToSlot** -- homomorphic inverse DFT scaled by
   ``Δ0 / (2·q0·2^r)``; together with a conjugation this yields two
   ciphertexts whose slots hold the lower and upper coefficient halves of
   ``t``, scaled to the Chebyshev interval.
3. **ApproxModEval** -- evaluate ``cos(2π·y)`` via a Chebyshev series,
   apply ``r`` double-angle iterations, obtaining ``sin(2π·t/q0)`` which
   approximates ``2π·(t mod q0)/q0``.
4. **SlotToCoeff** -- homomorphic DFT scaled by ``q0/(2π·Δ0)`` recombining
   both halves into a ciphertext encrypting ``m`` again, now with many
   levels left.

The functional backend runs this at reduced (insecure) ring dimensions;
the paper-scale cost is reproduced by :mod:`repro.perf`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ckks.chebyshev import (
    chebyshev_coefficients,
    double_angle,
    evaluate_chebyshev,
)
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import Context
from repro.ckks.evaluator import Evaluator
from repro.ckks.linear_transform import (
    LinearTransform,
    coeff_to_slot_matrix,
    slot_to_coeff_matrix,
)
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


@dataclass(frozen=True)
class BootstrapConfig:
    """Tunable parameters of the bootstrapping procedure."""

    #: Degree of the Chebyshev approximation of cos(2π y) on [-1, 1].
    chebyshev_degree: int = 30
    #: Number of double-angle iterations r; the admissible integer range is
    #: K ≈ 2^r - 1, so ``2^r`` must exceed the ModRaise overflow bound.
    #: Each iteration also amplifies arithmetic noise by up to 4x, so sparse
    #: secrets (small K) buy precision (the sparse-secret encapsulation of
    #: [43]).
    double_angle_iterations: int = 2
    #: Baby-step count for the BSGS linear transforms (None = sqrt heuristic).
    baby_steps: int | None = None

    @property
    def range_bound(self) -> int:
        """Largest |I| the sine approximation tolerates (K in the paper)."""
        return (1 << self.double_angle_iterations) - 1


class Bootstrapper:
    """Precomputes and runs the CKKS bootstrapping procedure."""

    def __init__(self, context: Context, evaluator: Evaluator,
                 config: BootstrapConfig | None = None) -> None:
        self.context = context
        self.evaluator = evaluator
        self.config = config or BootstrapConfig()
        weight = context.params.secret_hamming_weight
        bound = (weight + 1) / 2 + 1
        if bound > (1 << self.config.double_angle_iterations):
            raise ValueError(
                "secret Hamming weight too large for the configured double-angle "
                f"iterations: need 2^r > {bound:.0f}"
            )
        self._cos_coefficients = chebyshev_coefficients(
            lambda y: math.cos(2.0 * math.pi * y), self.config.chebyshev_degree
        )
        # The linear-transform matrices depend on the input scale, which is
        # only known per ciphertext; the unscaled DFT matrices are cached.
        self._transforms: dict[tuple[str, float], LinearTransform] = {}

    # ------------------------------------------------------------------
    # key requirements
    # ------------------------------------------------------------------

    def required_rotations(self) -> list[int]:
        """Rotation steps for which keys must be generated before bootstrapping."""
        probe = LinearTransform(
            self.context,
            np.eye(self.context.slots, dtype=np.complex128),
            baby_steps=self.config.baby_steps,
        )
        baby = probe.baby_steps
        giant = probe.giant_steps
        steps = set(range(1, baby))
        steps.update(baby * j for j in range(1, giant))
        return sorted(steps)

    def depth_required(self) -> int:
        """Multiplicative levels consumed by one bootstrap invocation."""
        cheb_depth = math.ceil(math.log2(self.config.chebyshev_degree + 1)) + 1
        return 3 + cheb_depth + self.config.double_angle_iterations

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a level-0 ciphertext over the full modulus ``Q``."""
        if ct.limb_count != 1:
            ct = self.evaluator.mod_reduce(ct, 1)
        moduli = self.context.moduli

        def raise_poly(poly: RNSPoly) -> RNSPoly:
            coefficients = poly.to_int_coefficients(centered=True)
            return RNSPoly.from_int_coefficients(
                self.context.ring_degree, moduli, coefficients,
                fmt=LimbFormat.EVALUATION,
            )

        return ct.with_polys(raise_poly(ct.c0), raise_poly(ct.c1))

    def coeff_to_slot(self, ct: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Return ciphertexts whose slots are the lower/upper coefficients of ``t``.

        Both outputs are scaled to the Chebyshev argument
        ``y = (t/q0 - 1/4) / 2^r`` expected by ApproxModEval.  The small
        overall factor ``Δ0 / (2·q0·2^r)`` is applied as a separate scalar
        multiplication (one extra level) so the encoded DFT diagonals keep
        full precision -- the same reason OpenFHE spends a level budget on
        its CoeffToSlot factorisation.
        """
        ev = self.evaluator
        q0 = self.context.moduli[0]
        prescale = ct.scale / (2.0 * q0 * (1 << self.config.double_angle_iterations))
        scaled = ev.multiply_scalar(ct, prescale)
        transform = self._transform("c2s", 1.0)
        combined = transform.apply(ev, scaled)
        conjugated = ev.conjugate(combined)
        ct_lower = ev.add(combined, conjugated)
        difference = ev.sub(combined, conjugated)
        ct_upper = ev.negate(ev.multiply_by_i(difference))
        shift = -0.25 / (1 << self.config.double_angle_iterations)
        return ev.add_scalar(ct_lower, shift), ev.add_scalar(ct_upper, shift)

    def approx_mod_eval(self, ct: Ciphertext) -> Ciphertext:
        """Evaluate ``sin(2π t/q0)`` from the scaled Chebyshev argument."""
        ev = self.evaluator
        series = evaluate_chebyshev(ev, ct, self._cos_coefficients)
        return double_angle(ev, series, self.config.double_angle_iterations)

    def slot_to_coeff(self, ct_lower: Ciphertext, ct_upper: Ciphertext,
                      original_scale: float) -> Ciphertext:
        """Recombine the two halves into a ciphertext encrypting ``m``."""
        ev = self.evaluator
        q0 = self.context.moduli[0]
        combined = ev.add(ct_lower, ev.multiply_by_i(ct_upper))
        factor = q0 / (2.0 * math.pi * original_scale)
        transform = self._transform("s2c", factor)
        return transform.apply(ev, combined)

    # ------------------------------------------------------------------
    # full pipeline
    # ------------------------------------------------------------------

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh ``ct`` (Table I's ``Bootstrap`` primitive)."""
        original_scale = ct.scale if ct.limb_count == 1 else self.context.scale_at(0)
        raised = self.mod_raise(ct)
        lower, upper = self.coeff_to_slot(raised)
        lower = self.approx_mod_eval(lower)
        upper = self.approx_mod_eval(upper)
        refreshed = self.slot_to_coeff(lower, upper, original_scale)
        refreshed.encoded_length = ct.encoded_length
        refreshed.slots = ct.slots
        return refreshed

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _transform(self, kind: str, factor: float) -> LinearTransform:
        key = (kind, round(float(factor), 14))
        transform = self._transforms.get(key)
        if transform is None:
            if kind == "c2s":
                matrix = coeff_to_slot_matrix(self.context.ring_degree, factor)
            else:
                matrix = slot_to_coeff_matrix(self.context.ring_degree, factor)
            transform = LinearTransform(self.context, matrix,
                                        baby_steps=self.config.baby_steps)
            self._transforms[key] = transform
        return transform


__all__ = ["Bootstrapper", "BootstrapConfig"]
