"""The CKKS crypto-context: moduli chain, precomputation and caches.

Mirroring FIDESlib's ``Context`` class (§III-E), all values that can be
precomputed once per parameter set live here:

* the RNS moduli chain ``q_0 ... q_L`` and the extension limbs ``P``;
* per-modulus NTT engines (twiddle tables, Shoup constants);
* digit layout and base converters for hybrid key switching (ModUp and
  ModDown at every level), cached on first use;
* rescaling and ``P^{-1}`` constants;
* the CRT factors ``T_j`` embedded into key-switching keys;
* the canonical-embedding encoder.

FIDESlib treats the context as a singleton so GPU constant memory can hold
the precomputed tables; the same convenience is offered here through
:func:`set_default_context` / :func:`get_default_context`, while still
allowing several contexts to coexist (e.g. in the unit tests).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.ckks.encoding import CKKSEncoder
from repro.ckks.params import CKKSParameters
from repro.core import modmath
from repro.core.ntt import get_engine
from repro.core.primes import find_ntt_prime_near, generate_ntt_primes
from repro.core.rns import BaseConverter, RNSBasis, partition_digits


class Context:
    """Precomputed state shared by every operation under one parameter set."""

    def __init__(self, params: CKKSParameters) -> None:
        self.params = params
        n = params.ring_degree

        # --- moduli chain ---------------------------------------------------
        # Rescaling primes are chosen with the scale-ladder technique of
        # Kim et al. [36]: level L uses scale Δ, and the prime consumed at
        # level l is the NTT prime closest to s_l^2 / Δ so that the scale at
        # every level stays within one prime gap of Δ.  This is the
        # "carefully tracking the scaling factors at each level" the paper
        # relies on for rescaling precision.
        delta = params.scale
        ladder: list[float] = [0.0] * (params.mult_depth + 1)
        ladder[params.mult_depth] = delta
        rescale_primes_desc: list[int] = []  # q_L, q_{L-1}, ..., q_1
        used: set[int] = set()
        scale = delta
        for _ in range(params.mult_depth, 0, -1):
            prime = find_ntt_prime_near(scale * scale / delta, n, exclude=used)
            used.add(prime)
            rescale_primes_desc.append(prime)
            scale = scale * scale / prime
        for level, prime in zip(range(params.mult_depth - 1, -1, -1), rescale_primes_desc):
            ladder[level] = ladder[level + 1] * ladder[level + 1] / prime
        rescale_primes = list(reversed(rescale_primes_desc))  # q_1 ... q_L
        first_prime = generate_ntt_primes(
            1, params.first_mod_bits, n, exclude=rescale_primes
        )[0]
        self.moduli: list[int] = [first_prime] + rescale_primes
        #: Scale of a ciphertext at each level (index = level = limbs - 1).
        self.scale_ladder: list[float] = ladder
        self.special_moduli: list[int] = generate_ntt_primes(
            params.special_limb_count,
            params.special_mod_bits,
            n,
            exclude=self.moduli,
        )
        self.extended_moduli: list[int] = self.moduli + self.special_moduli

        self.q_basis = RNSBasis(self.moduli)
        self.p_basis = RNSBasis(self.special_moduli)
        self.extended_basis = RNSBasis(self.extended_moduli)
        self.p_modulus = self.p_basis.modulus

        # --- digit layout for hybrid key switching ---------------------------
        self.digits: list[list[int]] = partition_digits(self.moduli, params.dnum)
        self.digit_size = params.digit_size
        self._digit_products = [RNSBasis(d).modulus for d in self.digits]

        # --- constants --------------------------------------------------------
        #: P^{-1} mod q_i for every ciphertext limb (used by ModDown).
        self.p_inv_mod_q: list[int] = [
            modmath.inv_mod(self.p_modulus % q, q) for q in self.moduli
        ]
        self.encoder = CKKSEncoder(n)

        # --- numeric backend --------------------------------------------------
        #: Which stack backend the full extended basis selects: ``uint64``
        #: (single-word), ``dword`` (hi/lo digit planes) or ``object``
        #: (exact Python integers, the slow oracle).
        self.numeric_backend: str = modmath.backend_for_moduli(self.extended_moduli)
        if self.numeric_backend == modmath.BACKEND_OBJECT:
            widest = max(self.extended_moduli)
            warnings.warn(
                f"modulus {widest} ({widest.bit_length()} bits) exceeds the "
                f"double-word limit (2**62), so this context falls back to "
                f"the exact object backend -- orders of magnitude slower "
                f"than the vectorized uint64/dword paths; choose moduli "
                f"below 62 bits to stay on the fast path",
                RuntimeWarning,
                stacklevel=2,
            )

        # --- caches -----------------------------------------------------------
        self._modup_converters: dict[tuple[int, int], BaseConverter] = {}
        self._moddown_converters: dict[int, BaseConverter] = {}
        self._raise_converters: dict[int, BaseConverter] = {}
        self._ntt_warm = False

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def ring_degree(self) -> int:
        """The polynomial degree bound ``N``."""
        return self.params.ring_degree

    @property
    def slots(self) -> int:
        """The number of message slots ``N/2``."""
        return self.params.slots

    @property
    def scale(self) -> float:
        """The default encoding scale ``Δ``."""
        return self.params.scale

    @property
    def max_level(self) -> int:
        """Top multiplicative level ``L`` (limb count minus one)."""
        return self.params.mult_depth

    def moduli_at(self, limb_count: int) -> list[int]:
        """Return the ciphertext moduli for a ciphertext with ``limb_count`` limbs."""
        if not 1 <= limb_count <= len(self.moduli):
            raise ValueError(f"invalid limb count {limb_count}")
        return self.moduli[:limb_count]

    def scale_at(self, level: int) -> float:
        """Return the canonical (ladder) scale of a level-``level`` ciphertext."""
        if not 0 <= level <= self.max_level:
            raise ValueError(f"invalid level {level}")
        return self.scale_ladder[level]

    def warm_up(self) -> None:
        """Build the NTT tables for every modulus eagerly (Context-creation cost)."""
        if self._ntt_warm:
            return
        for q in self.extended_moduli:
            get_engine(self.ring_degree, q)
        self._ntt_warm = True

    # ------------------------------------------------------------------
    # hybrid key-switching layout
    # ------------------------------------------------------------------

    def digit_limb_indices(self, digit_index: int) -> list[int]:
        """Return the global limb indices belonging to a digit."""
        start = digit_index * self.digit_size
        stop = min(start + self.digit_size, len(self.moduli))
        return list(range(start, stop))

    def active_digits(self, limb_count: int) -> int:
        """Return the number of digits containing at least one active limb."""
        return -(-limb_count // self.digit_size)

    def key_switch_factor(self, digit_index: int) -> list[int]:
        """Return ``T_j mod m`` for every extended modulus ``m``.

        ``T_j = P * (Q / Q_j) * [(Q / Q_j)^{-1} mod Q_j]`` is the constant
        that hybrid key-switching keys embed for digit ``j`` so that the
        digit-decomposed inner product reconstructs ``P * d * s'`` modulo
        ``P * Q_l`` at any level ``l`` (Han-Ki hybrid key switching).
        """
        q_total = self.q_basis.modulus
        q_j = self._digit_products[digit_index]
        q_hat_j = q_total // q_j
        factor = self.p_modulus * q_hat_j * modmath.inv_mod(q_hat_j % q_j, q_j)
        return [factor % m for m in self.extended_moduli]

    def modup_converter(self, limb_count: int, digit_index: int) -> BaseConverter:
        """Converter from a digit's active limbs to the complementary basis.

        The output basis is (active ciphertext limbs not in the digit) ∪ P;
        the digit's own limbs are copied through unchanged by the caller.
        """
        key = (limb_count, digit_index)
        converter = self._modup_converters.get(key)
        if converter is None:
            digit_indices = [
                i for i in self.digit_limb_indices(digit_index) if i < limb_count
            ]
            if not digit_indices:
                raise ValueError(
                    f"digit {digit_index} has no active limbs at limb count {limb_count}"
                )
            source = RNSBasis([self.moduli[i] for i in digit_indices])
            target_moduli = [
                self.moduli[i] for i in range(limb_count) if i not in digit_indices
            ] + self.special_moduli
            converter = BaseConverter(source, RNSBasis(target_moduli))
            self._modup_converters[key] = converter
        return converter

    def moddown_converter(self, limb_count: int) -> BaseConverter:
        """Converter from the special basis ``P`` to the active ciphertext basis."""
        converter = self._moddown_converters.get(limb_count)
        if converter is None:
            converter = BaseConverter(
                self.p_basis, RNSBasis(self.moduli[:limb_count])
            )
            self._moddown_converters[limb_count] = converter
        return converter

    def raise_converter(self, source_limbs: int = 1) -> BaseConverter:
        """Converter used by bootstrapping's ModRaise (q_0 basis to the rest)."""
        converter = self._raise_converters.get(source_limbs)
        if converter is None:
            source = RNSBasis(self.moduli[:source_limbs])
            target = RNSBasis(self.moduli[source_limbs:])
            converter = BaseConverter(source, target)
            self._raise_converters[source_limbs] = converter
        return converter

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Return a summary dictionary (used by benches and examples)."""
        return {
            "parameter_set": self.params.describe(),
            "ring_degree": self.ring_degree,
            "slots": self.slots,
            "limbs": len(self.moduli),
            "special_limbs": len(self.special_moduli),
            "dnum": self.params.dnum,
            "digit_size": self.digit_size,
            "log_q": sum(q.bit_length() for q in self.moduli),
            "log_qp": sum(q.bit_length() for q in self.extended_moduli),
            "scale_bits": self.params.scale_bits,
        }


_default_context: Context | None = None


def set_default_context(context: Context | None) -> Context | None:
    """Register ``context`` as the process-wide default (singleton pattern).

    Returns the previously registered default (or ``None``) so callers --
    notably :class:`repro.api.session.CKKSSession` used as a context
    manager -- can restore it afterwards.  Passing ``None`` clears the
    default.
    """
    global _default_context
    previous = _default_context
    _default_context = context
    return previous


def get_default_context() -> Context:
    """Return the process-wide default context, raising if none is set.

    The default is registered by :func:`set_default_context`, which the
    session layer (:class:`repro.api.session.CKKSSession`) calls on
    activation -- mirroring FIDESlib's singleton ``Context`` whose
    precomputed tables live in GPU constant memory.
    """
    if _default_context is None:
        raise RuntimeError(
            "no default CKKS context has been registered; create one via "
            "CKKSSession.create(...) or call set_default_context() directly"
        )
    return _default_context


def clear_default_context() -> None:
    """Unregister the process-wide default context (mainly for tests)."""
    set_default_context(None)


__all__ = [
    "Context",
    "set_default_context",
    "get_default_context",
    "clear_default_context",
]
