"""Hybrid key switching: digit decomposition, ModUp, ModDown.

``HMult`` and ``HRotate`` produce ciphertext components encrypted under a
different secret (``s^2`` or ``σ_k(s)``); key switching converts them back
to ``s`` using the hybrid technique of Han-Ki [37]:

1. **decompose** the polynomial into ``dnum`` digits of the RNS basis;
2. **ModUp** each digit from its own sub-basis to the full current basis
   plus the extension limbs ``P`` (a fast base conversion, Equation 1);
3. multiply each extended digit with the matching key-switching key
   component and accumulate (the "dot product fusion" of §III-F.5);
4. **ModDown** the accumulators by ``P`` (another base conversion followed
   by the fused ``P^{-1}(x - Conv(x'))`` step the paper folds into its NTT
   kernels).

The functions here operate on :class:`~repro.core.rns_poly.RNSPoly`
objects in evaluation format and return deltas that the caller adds to the
ciphertext components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.context import Context
from repro.ckks.keys import KeySwitchingKey
from repro.core.limb import Limb, LimbFormat
from repro.core.rns_poly import RNSPoly


@dataclass
class DecomposedPolynomial:
    """The ModUp'd digits of a polynomial, reusable across rotations.

    Hoisted rotations (§III-F.6) perform the expensive decompose + ModUp
    once and reuse the result for every rotation key; this dataclass is
    that reusable intermediate.
    """

    extended_digits: list[RNSPoly]
    limb_count: int


def decompose_and_mod_up(context: Context, poly: RNSPoly) -> DecomposedPolynomial:
    """Split ``poly`` into digits and raise each digit to the extended basis.

    ``poly`` must be in evaluation format over the first ``limb_count``
    ciphertext moduli.  Each returned digit polynomial is in evaluation
    format over ``{q_0..q_l} ∪ P``; the digit's own limbs are copied
    verbatim (no conversion error), the remaining limbs come from the fast
    base conversion.
    """
    limb_count = poly.level_count
    target_moduli = context.moduli_at(limb_count) + context.special_moduli
    digits_out: list[RNSPoly] = []
    for digit_index in range(context.active_digits(limb_count)):
        digit_indices = [
            i for i in context.digit_limb_indices(digit_index) if i < limb_count
        ]
        digit_coeff_limbs = [poly.limbs[i].to_coefficient() for i in digit_indices]
        converter = context.modup_converter(limb_count, digit_index)
        converted = converter.convert([limb.data for limb in digit_coeff_limbs])
        converted_moduli = list(converter.target.moduli)
        converted_map = dict(zip(converted_moduli, converted))
        limbs = []
        for limb_idx, modulus in enumerate(target_moduli):
            if limb_idx in digit_indices:
                # Own limbs are exact copies, already in evaluation format.
                limbs.append(poly.limbs[limb_idx].copy())
            else:
                coeff_limb = Limb(modulus, converted_map[modulus],
                                  LimbFormat.COEFFICIENT, context.ring_degree)
                limbs.append(coeff_limb.to_evaluation())
        digits_out.append(RNSPoly(context.ring_degree, target_moduli, limbs))
    return DecomposedPolynomial(extended_digits=digits_out, limb_count=limb_count)


def mod_down(context: Context, poly: RNSPoly) -> RNSPoly:
    """Divide an extended-basis polynomial by ``P`` and drop the special limbs.

    Computes ``P^{-1} * (x_i - Conv_{P->Q_l}(x_P))`` per ciphertext limb,
    the sequence FIDESlib fuses into its NTT kernels (ModDown fusion).
    """
    limb_count = poly.level_count - len(context.special_moduli)
    if limb_count < 1:
        raise ValueError("polynomial does not carry special limbs to remove")
    special_limbs = [limb.to_coefficient() for limb in poly.limbs[limb_count:]]
    converter = context.moddown_converter(limb_count)
    converted = converter.convert([limb.data for limb in special_limbs])
    out_limbs = []
    for i in range(limb_count):
        q = context.moduli[i]
        converted_limb = Limb(q, converted[i], LimbFormat.COEFFICIENT, context.ring_degree)
        if poly.limbs[i].fmt is LimbFormat.EVALUATION:
            converted_limb = converted_limb.to_evaluation()
        diff = poly.limbs[i].sub(converted_limb)
        out_limbs.append(diff.multiply_scalar(context.p_inv_mod_q[i]))
    return RNSPoly(context.ring_degree, context.moduli_at(limb_count), out_limbs)


def apply_key(
    context: Context,
    decomposed: DecomposedPolynomial,
    key: KeySwitchingKey,
    *,
    automorphism_exponent: int | None = None,
) -> tuple[RNSPoly, RNSPoly]:
    """Multiply ModUp'd digits with a key-switching key and ModDown the result.

    When ``automorphism_exponent`` is given, the automorphism is applied to
    every extended digit before the key multiplication -- this is the
    hoisted-rotation path, where the decomposition is shared across many
    rotation keys.

    Returns the pair ``(delta_c0, delta_c1)`` over the ciphertext basis.
    """
    limb_count = decomposed.limb_count
    active_indices = list(range(limb_count)) + [
        len(context.moduli) + i for i in range(len(context.special_moduli))
    ]
    acc0: RNSPoly | None = None
    acc1: RNSPoly | None = None
    for digit_index, digit_poly in enumerate(decomposed.extended_digits):
        if automorphism_exponent is not None:
            digit_poly = digit_poly.automorphism(automorphism_exponent)
        b_j, a_j = key.digits[digit_index]
        b_j = b_j.select_limbs(active_indices)
        a_j = a_j.select_limbs(active_indices)
        term0 = digit_poly.multiply(b_j)
        term1 = digit_poly.multiply(a_j)
        acc0 = term0 if acc0 is None else acc0.add(term0)
        acc1 = term1 if acc1 is None else acc1.add(term1)
    assert acc0 is not None and acc1 is not None
    return mod_down(context, acc0), mod_down(context, acc1)


def key_switch(
    context: Context, poly: RNSPoly, key: KeySwitchingKey
) -> tuple[RNSPoly, RNSPoly]:
    """Full key switch of ``poly`` (decompose, ModUp, key multiply, ModDown)."""
    decomposed = decompose_and_mod_up(context, poly)
    return apply_key(context, decomposed, key)


__all__ = [
    "DecomposedPolynomial",
    "decompose_and_mod_up",
    "mod_down",
    "apply_key",
    "key_switch",
]
