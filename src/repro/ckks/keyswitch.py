"""Hybrid key switching: digit decomposition, ModUp, ModDown.

``HMult`` and ``HRotate`` produce ciphertext components encrypted under a
different secret (``s^2`` or ``σ_k(s)``); key switching converts them back
to ``s`` using the hybrid technique of Han-Ki [37]:

1. **decompose** the polynomial into ``dnum`` digits of the RNS basis;
2. **ModUp** each digit from its own sub-basis to the full current basis
   plus the extension limbs ``P`` (a fast base conversion, Equation 1);
3. multiply each extended digit with the matching key-switching key
   component and accumulate (the "dot product fusion" of §III-F.5);
4. **ModDown** the accumulators by ``P`` (another base conversion followed
   by the fused ``P^{-1}(x - Conv(x'))`` step the paper folds into its NTT
   kernels).

The functions here operate on :class:`~repro.core.rns_poly.RNSPoly`
objects in evaluation format and return deltas that the caller adds to the
ciphertext components.  Every step is batched over the flat
:class:`~repro.core.limb_stack.LimbStack` data plane: digit rows are
gathered and iNTT'd in one stacked call, the base conversion runs as one
``convert_stack`` matrix expression, and the converted limbs re-enter the
evaluation domain through one stacked NTT -- no per-limb Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import Context
from repro.ckks.keys import KeySwitchingKey
from repro.core import modmath
from repro.core.dispatch import get_dispatcher
from repro.core.limb import LimbFormat
from repro.core.limb_stack import LimbStack
from repro.core.ntt import get_stacked_engine
from repro.core.rns_poly import RNSPoly
from repro.gpu.kernel import MODADD_OPS, MODMUL_OPS

_DISPATCH = get_dispatcher()


@dataclass
class DecomposedPolynomial:
    """The ModUp'd digits of a polynomial, reusable across rotations.

    Hoisted rotations (§III-F.6) perform the expensive decompose + ModUp
    once and reuse the result for every rotation key; this dataclass is
    that reusable intermediate.
    """

    extended_digits: list[RNSPoly]
    limb_count: int


def decompose_and_mod_up(context: Context, poly: RNSPoly) -> DecomposedPolynomial:
    """Split ``poly`` into digits and raise each digit to the extended basis.

    ``poly`` must be in evaluation format over the first ``limb_count``
    ciphertext moduli.  Each returned digit polynomial is in evaluation
    format over ``{q_0..q_l} ∪ P``; the digit's own limbs are copied
    verbatim (no conversion error), the remaining limbs come from the fast
    base conversion.
    """
    with _DISPATCH.scope("modup"):
        limb_count = poly.level_count
        n = context.ring_degree
        target_moduli = context.moduli_at(limb_count) + context.special_moduli
        target_col = modmath.moduli_column(target_moduli)
        num_digits = context.active_digits(limb_count)
        # Digits partition the basis contiguously, so one stacked iNTT of the
        # whole polynomial hands every digit its coefficient-domain rows.
        poly_coeff = get_stacked_engine(n, tuple(poly.moduli)).inverse(poly.stack.data)
        # Per-digit batched base conversions to the complementary basis ∪ P
        # (each digit needs its own Equation-1 tables) ...
        digit_indices_list: list[list[int]] = []
        converted_blocks: list = []
        fused_moduli: list[int] = []
        for digit_index in range(num_digits):
            digit_indices = [
                i for i in context.digit_limb_indices(digit_index) if i < limb_count
            ]
            digit_indices_list.append(digit_indices)
            converter = context.modup_converter(limb_count, digit_index)
            digit_rows = poly_coeff[digit_indices]
            _DISPATCH.link((poly_coeff,), digit_rows)
            converted_blocks.append(converter.convert_stack(digit_rows))
            fused_moduli.extend(converter.target.moduli)
        # ... then one fused stacked NTT returns every digit's converted rows
        # to the evaluation domain in a single call (in place: the vstack is a
        # fresh temporary); the trace records it at GPU launch granularity,
        # one kernel per digit.
        stacked = np.vstack([modmath.coerce_stack(b, target_col) for b in converted_blocks])
        row = 0
        for block in converted_blocks:
            # Per-digit links: digit j's NTT rows descend from digit j's
            # base conversion only, keeping the digit pipelines parallel.
            _DISPATCH.link((block,), stacked[row : row + len(block)])
            row += len(block)
        fused_eval = get_stacked_engine(n, tuple(fused_moduli)).forward(
            stacked,
            consume=True,
            segments=[len(block) for block in converted_blocks],
        )
        digits_out: list[RNSPoly] = []
        row_offset = 0
        for digit_index in range(num_digits):
            digit_indices = digit_indices_list[digit_index]
            block_rows = len(converted_blocks[digit_index])
            converted_eval = fused_eval[row_offset : row_offset + block_rows]
            row_offset += block_rows
            # Assemble the extended stack with two row scatters: own rows
            # verbatim, converted rows in target order (the converter's target
            # basis preserves it).
            # Every row is scattered into below, so an uninitialized buffer
            # (rather than a zero-filled one) is enough.
            backend = modmath.stack_backend(target_col)
            if backend == modmath.BACKEND_UINT64:
                stack = np.empty((len(target_moduli), n), dtype=np.uint64)
            elif backend == modmath.BACKEND_DWORD:
                stack = np.empty((len(target_moduli), 2, n), dtype=np.uint64)
            else:
                stack = np.empty((len(target_moduli), n), dtype=object)
            non_digit = [i for i in range(len(target_moduli)) if i not in digit_indices]
            stack[digit_indices] = modmath.coerce_stack(
                poly.stack.data[digit_indices], target_col
            )
            stack[non_digit] = modmath.coerce_stack(converted_eval, target_col)
            _DISPATCH.link((converted_eval, poly.stack.data), stack)
            digits_out.append(
                RNSPoly.from_stack(
                    LimbStack(target_moduli, stack, pool=poly.stack.buffer.pool),
                    LimbFormat.EVALUATION,
                )
            )
        return DecomposedPolynomial(extended_digits=digits_out, limb_count=limb_count)


def mod_down(context: Context, poly: RNSPoly) -> RNSPoly:
    """Divide an extended-basis polynomial by ``P`` and drop the special limbs.

    Computes ``P^{-1} * (x_i - Conv_{P->Q_l}(x_P))`` per ciphertext limb,
    the sequence FIDESlib fuses into its NTT kernels (ModDown fusion), as
    three batched stack expressions plus two stacked (i)NTT calls.
    """
    return mod_down_many(context, [poly])[0]


def mod_down_many(context: Context, polys: list[RNSPoly]) -> list[RNSPoly]:
    """ModDown several same-basis polynomials with fused stacked kernels.

    The two key-switching accumulators (and any wider fused batch) share
    their iNTT, base-conversion and NTT passes by concatenating rows into
    single stacked calls; the per-row math is exactly :func:`mod_down`.
    """
    if not polys:
        return []
    first = polys[0]
    for poly in polys[1:]:
        if poly.moduli != first.moduli or poly.fmt is not first.fmt:
            raise ValueError("fused mod_down requires matching bases and formats")
    limb_count = first.level_count - len(context.special_moduli)
    if limb_count < 1:
        raise ValueError("polynomial does not carry special limbs to remove")
    n = context.ring_degree
    is_eval = first.fmt is LimbFormat.EVALUATION
    special_moduli = tuple(first.moduli[limb_count:])
    special_count = len(special_moduli)
    with _DISPATCH.scope("moddown"), _DISPATCH.suppressed():
        special_rows = np.vstack([p.stack.data[limb_count:] for p in polys])
        for i, p in enumerate(polys):
            # Keep the dependency chain intact across the vstack copy (the
            # coefficient-format path has no recorded iNTT to carry it).
            _DISPATCH.link(
                (p.stack.data[limb_count:],),
                special_rows[i * special_count : (i + 1) * special_count],
            )
        if is_eval:
            special_rows = get_stacked_engine(
                n, special_moduli * len(polys)
            ).inverse(special_rows, consume=True)
        # The base conversion is elementwise per column, so the batch is fused
        # along the column axis (one matrix expression for every polynomial).
        converter = context.moddown_converter(limb_count)
        converted = converter.convert_stack(
            np.concatenate(
                [
                    special_rows[i * special_count : (i + 1) * special_count]
                    for i in range(len(polys))
                ],
                axis=-1,
            )
        )
        converted = np.vstack(np.split(converted, len(polys), axis=-1))
        target_moduli = context.moduli_at(limb_count)
        target_col = modmath.moduli_column(target_moduli)
        if is_eval:
            converted = get_stacked_engine(
                n, tuple(target_moduli) * len(polys)
            ).forward(converted, consume=True)
        fused_col = modmath.moduli_column(target_moduli * len(polys))
        converted = modmath.coerce_stack(converted, fused_col)
        heads = np.vstack(
            [modmath.coerce_stack(p.stack.data[:limb_count], fused_col) for p in polys]
        )
        diff = modmath.stack_sub_mod(heads, converted, fused_col)
        out = modmath.stack_scalar_mod(
            diff, context.p_inv_mod_q[:limb_count] * len(polys), fused_col
        )
    # Execution-plane record, per component, at GPU launch granularity:
    # iNTT of the special limbs, the P -> Q_l base conversion, and an NTT
    # over the ciphertext limbs with the ``P^{-1}(x - Conv(x'))`` step
    # fused in (the ModDown fusion, §III-F.5).
    if _DISPATCH.recording:
        with _DISPATCH.scope("moddown"):
            # Per-component slices: the c0/c1 pipelines touch disjoint rows
            # of the fused buffers, so they stay parallel in the DAG (the
            # §III-F.1 overlap the stream scheduler exploits).
            for i, poly in enumerate(polys):
                component_out = out[i * limb_count : (i + 1) * limb_count]
                component_special = special_rows[
                    i * special_count : (i + 1) * special_count
                ]
                component_conv = converted[i * limb_count : (i + 1) * limb_count]
                if is_eval:
                    _DISPATCH.transform(
                        "intt", special_count,
                        reads=(poly.stack.data[limb_count:],),
                        writes=(component_special,), cols=n,
                    )
                _DISPATCH.base_conversion(
                    "baseconv", special_count, limb_count,
                    reads=(component_special,), writes=(component_conv,), cols=n,
                )
                if is_eval:
                    _DISPATCH.transform(
                        "ntt", limb_count,
                        reads=(component_conv, poly.stack.data[:limb_count]),
                        writes=(component_out,), cols=n,
                        fused_ops_per_element=MODMUL_OPS + MODADD_OPS,
                    )
                else:
                    _DISPATCH.elementwise(
                        "moddown-fused",
                        reads=(component_conv, poly.stack.data[:limb_count]),
                        writes=(component_out,),
                        ops_per_element=MODMUL_OPS + MODADD_OPS,
                    )
    return [
        RNSPoly.from_stack(
            LimbStack(
                target_moduli,
                out[i * limb_count : (i + 1) * limb_count],
                pool=poly.stack.buffer.pool,
            ),
            poly.fmt,
        )
        for i, poly in enumerate(polys)
    ]


def apply_key(
    context: Context,
    decomposed: DecomposedPolynomial,
    key: KeySwitchingKey,
    *,
    automorphism_exponent: int | None = None,
) -> tuple[RNSPoly, RNSPoly]:
    """Multiply ModUp'd digits with a key-switching key and ModDown the result.

    When ``automorphism_exponent`` is given, the automorphism is applied to
    every extended digit before the key multiplication -- this is the
    hoisted-rotation path, where the decomposition is shared across many
    rotation keys.

    Returns the pair ``(delta_c0, delta_c1)`` over the ciphertext basis.
    """
    with _DISPATCH.scope("keyswitch"):
        limb_count = decomposed.limb_count
        active_indices = list(range(limb_count)) + [
            len(context.moduli) + i for i in range(len(context.special_moduli))
        ]
        pairs0: list[tuple[RNSPoly, RNSPoly]] = []
        pairs1: list[tuple[RNSPoly, RNSPoly]] = []
        for digit_index, digit_poly in enumerate(decomposed.extended_digits):
            if automorphism_exponent is not None:
                digit_poly = digit_poly.automorphism(automorphism_exponent)
            b_j, a_j = key.digits[digit_index]
            if len(active_indices) != b_j.level_count:
                # Below the top level only a subset of key limbs is active;
                # at the top level the key polys are used as-is (multiply
                # never mutates its operands, so no defensive copy is needed).
                b_j = b_j.select_limbs(active_indices)
                a_j = a_j.select_limbs(active_indices)
            pairs0.append((digit_poly, b_j))
            pairs1.append((digit_poly, a_j))
        # Dot-product fusion (§III-F.5): each accumulator is one wide
        # multiply-accumulate with a single reduction instead of a reduced
        # product and a reduced add per digit.  The GPU launches this as a
        # single inner-product kernel producing both accumulators, which is
        # how the execution plane records it.
        with _DISPATCH.suppressed():
            acc0 = RNSPoly.multiply_accumulate(pairs0)
            acc1 = RNSPoly.multiply_accumulate(pairs1)
        _DISPATCH.elementwise(
            "ks-inner-product",
            reads=tuple(digit.stack.data for digit, _ in pairs0)
            + tuple(key_poly.stack.data for _, key_poly in pairs0)
            + tuple(key_poly.stack.data for _, key_poly in pairs1),
            writes=(acc0.stack.data, acc1.stack.data),
            ops_per_element=len(pairs0) * 2.0 * (MODMUL_OPS + MODADD_OPS),
        )
        delta0, delta1 = mod_down_many(context, [acc0, acc1])
        return delta0, delta1


def key_switch(
    context: Context, poly: RNSPoly, key: KeySwitchingKey
) -> tuple[RNSPoly, RNSPoly]:
    """Full key switch of ``poly`` (decompose, ModUp, key multiply, ModDown)."""
    decomposed = decompose_and_mod_up(context, poly)
    return apply_key(context, decomposed, key)


__all__ = [
    "DecomposedPolynomial",
    "decompose_and_mod_up",
    "mod_down",
    "mod_down_many",
    "apply_key",
    "key_switch",
]
