"""Hybrid key switching: digit decomposition, ModUp, ModDown.

``HMult`` and ``HRotate`` produce ciphertext components encrypted under a
different secret (``s^2`` or ``σ_k(s)``); key switching converts them back
to ``s`` using the hybrid technique of Han-Ki [37]:

1. **decompose** the polynomial into ``dnum`` digits of the RNS basis;
2. **ModUp** each digit from its own sub-basis to the full current basis
   plus the extension limbs ``P`` (a fast base conversion, Equation 1);
3. multiply each extended digit with the matching key-switching key
   component and accumulate (the "dot product fusion" of §III-F.5);
4. **ModDown** the accumulators by ``P`` (another base conversion followed
   by the fused ``P^{-1}(x - Conv(x'))`` step the paper folds into its NTT
   kernels).

The functions here operate on :class:`~repro.core.rns_poly.RNSPoly`
objects in evaluation format and return deltas that the caller adds to the
ciphertext components.  Every step is batched over the flat
:class:`~repro.core.limb_stack.LimbStack` data plane: digit rows are
gathered and iNTT'd in one stacked call, the base conversion runs as one
``convert_stack`` matrix expression, and the converted limbs re-enter the
evaluation domain through one stacked NTT -- no per-limb Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import Context
from repro.ckks.keys import KeySwitchingKey
from repro.core import modmath
from repro.core.dispatch import get_dispatcher
from repro.core.limb import LimbFormat
from repro.core.limb_stack import LimbStack
from repro.core.ntt import get_stacked_engine, record_staged_transform
from repro.core.rns_poly import RNSPoly
from repro.gpu.kernel import MODADD_OPS, MODMUL_OPS

_DISPATCH = get_dispatcher()


def _empty_stack(backend: str, rows: int, n: int) -> np.ndarray:
    """Uninitialized limb-stack storage in the given backend's layout."""
    if backend == modmath.BACKEND_UINT64:
        return np.empty((rows, n), dtype=np.uint64)
    if backend == modmath.BACKEND_DWORD:
        return np.empty((rows, 2, n), dtype=np.uint64)
    return np.empty((rows, n), dtype=object)


@dataclass
class DecomposedPolynomial:
    """The ModUp'd digits of a polynomial, reusable across rotations.

    Hoisted rotations (§III-F.6) perform the expensive decompose + ModUp
    once and reuse the result for every rotation key; this dataclass is
    that reusable intermediate.
    """

    extended_digits: list[RNSPoly]
    limb_count: int


def decompose_and_mod_up(context: Context, poly: RNSPoly) -> DecomposedPolynomial:
    """Split ``poly`` into digits and raise each digit to the extended basis.

    ``poly`` must be in evaluation format over the first ``limb_count``
    ciphertext moduli.  Each returned digit polynomial is in evaluation
    format over ``{q_0..q_l} ∪ P``; the digit's own limbs are copied
    verbatim (no conversion error), the remaining limbs come from the fast
    base conversion.
    """
    with _DISPATCH.scope("modup"):
        limb_count = poly.level_count
        n = context.ring_degree
        target_moduli = context.moduli_at(limb_count) + context.special_moduli
        target_col = modmath.moduli_column(target_moduli)
        num_digits = context.active_digits(limb_count)
        # Digits partition the basis contiguously, so one stacked iNTT of the
        # whole polynomial hands every digit its coefficient-domain rows.
        poly_coeff = get_stacked_engine(n, tuple(poly.moduli)).inverse(poly.stack.data)
        backend = modmath.stack_backend(target_col)
        # Per-digit batched base conversions to the complementary basis ∪ P
        # (each digit needs its own Equation-1 tables), each writing its rows
        # straight into the fused NTT buffer (layout-aware: no per-block
        # vstack staging copy, no provenance links to stitch across one).
        digit_spans: list[tuple[int, int]] = []
        converters = []
        fused_moduli: list[int] = []
        for digit_index in range(num_digits):
            digit_indices = [
                i for i in context.digit_limb_indices(digit_index) if i < limb_count
            ]
            digit_spans.append((digit_indices[0], digit_indices[-1] + 1))
            converter = context.modup_converter(limb_count, digit_index)
            converters.append(converter)
            fused_moduli.extend(converter.target.moduli)
        block_rows = [len(conv.target) for conv in converters]
        stacked = _empty_stack(backend, sum(block_rows), n)
        row = 0
        for (d0, d1), converter, rows in zip(digit_spans, converters, block_rows):
            # The digit's coefficient rows are a zero-copy slice of the
            # stacked iNTT output (digits are contiguous), so the recorded
            # base conversion reads the transform's buffer directly.
            block_out = stacked[row : row + rows]
            if modmath.stack_backend(converter._target_col) == backend:
                converter.convert_stack(poly_coeff[d0:d1], out=block_out)
            else:
                # Mixed-backend chain: the digit's own target basis is
                # narrower than the fused one, so convert then widen (the
                # link stitches the dependency edge across the widening copy).
                block = converter.convert_stack(poly_coeff[d0:d1])
                block_out[...] = modmath.coerce_stack(block, target_col)
                _DISPATCH.link((block,), block_out)
            row += rows
        # ... then one fused stacked NTT returns every digit's converted rows
        # to the evaluation domain in a single in-place call; the trace
        # records it at GPU launch granularity, one kernel per digit.
        fused_eval = get_stacked_engine(n, tuple(fused_moduli)).forward(
            stacked,
            consume=True,
            segments=block_rows,
        )
        digits_out: list[RNSPoly] = []
        row_offset = 0
        for digit_index in range(num_digits):
            d0, d1 = digit_spans[digit_index]
            converted_eval = fused_eval[row_offset : row_offset + block_rows[digit_index]]
            row_offset += block_rows[digit_index]
            # Assemble the extended stack with contiguous row copies: own
            # rows verbatim, converted rows in target order (the converter's
            # target basis preserves it, with the digit's complement split
            # around its own span).  Every row is written below, so an
            # uninitialized buffer is enough.
            stack = _empty_stack(backend, len(target_moduli), n)
            stack[d0:d1] = modmath.coerce_stack(
                poly.stack.data[d0:d1], target_col
            )
            stack[:d0] = modmath.coerce_stack(converted_eval[:d0], target_col)
            stack[d1:] = modmath.coerce_stack(converted_eval[d0:], target_col)
            _DISPATCH.link((converted_eval, poly.stack.data), stack)
            digits_out.append(
                RNSPoly.from_stack(
                    LimbStack(target_moduli, stack, pool=poly.stack.buffer.pool),
                    LimbFormat.EVALUATION,
                )
            )
        return DecomposedPolynomial(extended_digits=digits_out, limb_count=limb_count)


def mod_down(context: Context, poly: RNSPoly) -> RNSPoly:
    """Divide an extended-basis polynomial by ``P`` and drop the special limbs.

    Computes ``P^{-1} * (x_i - Conv_{P->Q_l}(x_P))`` per ciphertext limb,
    the sequence FIDESlib fuses into its NTT kernels (ModDown fusion), as
    three batched stack expressions plus two stacked (i)NTT calls.
    """
    return mod_down_many(context, [poly])[0]


def mod_down_many(context: Context, polys: list[RNSPoly]) -> list[RNSPoly]:
    """ModDown several same-basis polynomials with fused stacked kernels.

    The two key-switching accumulators (and any wider fused batch) share
    their iNTT, base-conversion and NTT passes by concatenating rows into
    single stacked calls; the per-row math is exactly :func:`mod_down`.
    """
    if not polys:
        return []
    first = polys[0]
    for poly in polys[1:]:
        if poly.moduli != first.moduli or poly.fmt is not first.fmt:
            raise ValueError("fused mod_down requires matching bases and formats")
    limb_count = first.level_count - len(context.special_moduli)
    if limb_count < 1:
        raise ValueError("polynomial does not carry special limbs to remove")
    n = context.ring_degree
    is_eval = first.fmt is LimbFormat.EVALUATION
    special_moduli = tuple(first.moduli[limb_count:])
    special_count = len(special_moduli)
    with _DISPATCH.scope("moddown"), _DISPATCH.suppressed():
        special_rows = np.vstack([p.stack.data[limb_count:] for p in polys])
        for i, p in enumerate(polys):
            # Keep the dependency chain intact across the vstack copy (the
            # coefficient-format path has no recorded iNTT to carry it).
            _DISPATCH.link(
                (p.stack.data[limb_count:],),
                special_rows[i * special_count : (i + 1) * special_count],
            )
        if is_eval:
            special_rows = get_stacked_engine(
                n, special_moduli * len(polys)
            ).inverse(special_rows, consume=True)
        # Each component's P -> Q_l conversion writes its rows directly into
        # the (P*limb_count, N) layout the tail consumes -- the old
        # column-axis concat/split transposes around one fused conversion
        # are gone (layout-aware staging elimination; the per-column math
        # is identical).
        converter = context.moddown_converter(limb_count)
        target_moduli = context.moduli_at(limb_count)
        target_col = modmath.moduli_column(target_moduli)
        out = _empty_stack(
            modmath.stack_backend(target_col), limb_count * len(polys), n
        )
        for i in range(len(polys)):
            converter.convert_stack(
                special_rows[i * special_count : (i + 1) * special_count],
                out=out[i * limb_count : (i + 1) * limb_count],
            )
        if is_eval:
            out = get_stacked_engine(
                n, tuple(target_moduli) * len(polys)
            ).forward(out, consume=True)
        # The ``P^{-1}(x - Conv(x'))`` tail folds each component's head
        # limbs into its block of ``out`` in place (no heads vstack, no
        # separate diff/result temporaries).
        p_inv = tuple(context.p_inv_mod_q[:limb_count])
        for i, p in enumerate(polys):
            seg = out[i * limb_count : (i + 1) * limb_count]
            head = modmath.coerce_stack(p.stack.data[:limb_count], target_col)
            modmath.stack_sub_mod(head, seg, target_col, out=seg)
            modmath.stack_scalar_mod(seg, p_inv, target_col, out=seg)
    # Execution-plane record, per component, at GPU launch granularity:
    # iNTT of the special limbs, the P -> Q_l base conversion, and an NTT
    # over the ciphertext limbs with the ``P^{-1}(x - Conv(x'))`` step
    # fused in (the ModDown fusion, §III-F.5).
    if _DISPATCH.recording:
        executable = _DISPATCH.executable_recording
        with _DISPATCH.scope("moddown"):
            # Per-component slices: the c0/c1 pipelines touch disjoint rows
            # of the fused buffers, so they stay parallel in the DAG (the
            # §III-F.1 overlap the stream scheduler exploits).
            for i, poly in enumerate(polys):
                component_out = out[i * limb_count : (i + 1) * limb_count]
                component_special = special_rows[
                    i * special_count : (i + 1) * special_count
                ]
                intt_replay = conv_replay = tail_replay = None
                if executable:

                    def intt_replay(reads, writes, _n=n, _sm=special_moduli):
                        src, dst = reads[0], writes[0]
                        if not np.shares_memory(src, dst):
                            np.copyto(dst, src)
                        res = get_stacked_engine(_n, _sm).inverse(
                            dst, consume=True
                        )
                        if res is not dst:
                            np.copyto(dst, res)

                    def conv_replay(reads, writes, _conv=converter):
                        _conv.convert_stack(reads[0], out=writes[0])

                    def tail_replay(
                        reads, writes, _n=n, _tm=tuple(target_moduli),
                        _col=target_col, _pinv=p_inv, _eval=is_eval,
                    ):
                        dst = writes[0]
                        if not np.shares_memory(reads[0], dst):
                            np.copyto(dst, reads[0])
                        if _eval:
                            res = get_stacked_engine(_n, _tm).forward(
                                dst, consume=True
                            )
                            if res is not dst:
                                np.copyto(dst, res)
                        head = modmath.coerce_stack(reads[1], _col)
                        modmath.stack_sub_mod(head, dst, _col, out=dst)
                        modmath.stack_scalar_mod(dst, _pinv, _col, out=dst)

                # Under stage-granular recording the two transforms expand
                # into per-stage launch runs (the unfused GPU baseline) and
                # the ``P^{-1}(x - Conv(x'))`` arithmetic becomes its own
                # elementwise launch after the NTT stages.
                staged_intt = staged_ntt = False
                if is_eval and _DISPATCH.stage_granular:
                    staged_intt = record_staged_transform(
                        "intt", n, special_moduli,
                        poly.stack.data[limb_count:], component_special,
                        executable=executable,
                    )
                if is_eval and not staged_intt:
                    _DISPATCH.transform(
                        "intt", special_count,
                        reads=(poly.stack.data[limb_count:],),
                        writes=(component_special,), cols=n,
                        replay=intt_replay,
                    )
                _DISPATCH.base_conversion(
                    "baseconv", special_count, limb_count,
                    reads=(component_special,), writes=(component_out,), cols=n,
                    replay=conv_replay,
                )
                if is_eval and _DISPATCH.stage_granular:
                    staged_ntt = record_staged_transform(
                        "ntt", n, tuple(target_moduli),
                        component_out, component_out,
                        executable=executable,
                    )
                if is_eval and not staged_ntt:
                    _DISPATCH.transform(
                        "ntt", limb_count,
                        reads=(component_out, poly.stack.data[:limb_count]),
                        writes=(component_out,), cols=n,
                        fused_ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=tail_replay,
                    )
                elif not is_eval:
                    _DISPATCH.elementwise(
                        "moddown-fused",
                        reads=(component_out, poly.stack.data[:limb_count]),
                        writes=(component_out,),
                        ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=tail_replay,
                    )
                else:
                    tail_launch = None
                    if executable:

                        def tail_launch(
                            reads, writes, _col=target_col, _pinv=p_inv,
                        ):
                            dst = writes[0]
                            if not np.shares_memory(reads[0], dst):
                                np.copyto(dst, reads[0])
                            head = modmath.coerce_stack(reads[1], _col)
                            modmath.stack_sub_mod(head, dst, _col, out=dst)
                            modmath.stack_scalar_mod(dst, _pinv, _col, out=dst)

                    _DISPATCH.elementwise(
                        "moddown-tail",
                        reads=(component_out, poly.stack.data[:limb_count]),
                        writes=(component_out,),
                        ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=tail_launch,
                    )
    return [
        RNSPoly.from_stack(
            LimbStack(
                target_moduli,
                out[i * limb_count : (i + 1) * limb_count],
                pool=poly.stack.buffer.pool,
            ),
            poly.fmt,
        )
        for i, poly in enumerate(polys)
    ]


def apply_key(
    context: Context,
    decomposed: DecomposedPolynomial,
    key: KeySwitchingKey,
    *,
    automorphism_exponent: int | None = None,
) -> tuple[RNSPoly, RNSPoly]:
    """Multiply ModUp'd digits with a key-switching key and ModDown the result.

    When ``automorphism_exponent`` is given, the automorphism is applied to
    every extended digit before the key multiplication -- this is the
    hoisted-rotation path, where the decomposition is shared across many
    rotation keys.

    Returns the pair ``(delta_c0, delta_c1)`` over the ciphertext basis.
    """
    with _DISPATCH.scope("keyswitch"):
        limb_count = decomposed.limb_count
        active_indices = list(range(limb_count)) + [
            len(context.moduli) + i for i in range(len(context.special_moduli))
        ]
        pairs0: list[tuple[RNSPoly, RNSPoly]] = []
        pairs1: list[tuple[RNSPoly, RNSPoly]] = []
        for digit_index, digit_poly in enumerate(decomposed.extended_digits):
            if automorphism_exponent is not None:
                digit_poly = digit_poly.automorphism(automorphism_exponent)
            b_j, a_j = key.digits[digit_index]
            if len(active_indices) != b_j.level_count:
                # Below the top level only a subset of key limbs is active;
                # at the top level the key polys are used as-is (multiply
                # never mutates its operands, so no defensive copy is needed).
                b_j = b_j.select_limbs(active_indices)
                a_j = a_j.select_limbs(active_indices)
            pairs0.append((digit_poly, b_j))
            pairs1.append((digit_poly, a_j))
        # Dot-product fusion (§III-F.5): each accumulator is one wide
        # multiply-accumulate with a single reduction instead of a reduced
        # product and a reduced add per digit.  The GPU launches this as a
        # single inner-product kernel producing both accumulators, which is
        # how the execution plane records it.
        with _DISPATCH.suppressed():
            acc0 = RNSPoly.multiply_accumulate(pairs0)
            acc1 = RNSPoly.multiply_accumulate(pairs1)
        if _DISPATCH.recording and _DISPATCH.stage_granular and len(pairs0) > 1:
            # Unfused baseline: without the dot-product fusion each
            # accumulator is one reduced product plus a reduced
            # multiply-accumulate launch per further digit, every partial
            # sum a global-memory round trip.  Each run is registered as a
            # fusion group replaying the single wide inner-product kernel.
            executable = _DISPATCH.executable_recording
            for acc, pairs in ((acc0, pairs0), (acc1, pairs1)):
                digit_count = len(pairs)
                col = pairs[0][0].stack.moduli_col
                mul_replay = None
                if executable:

                    def mul_replay(reads, writes, _col=col):
                        modmath.stack_mul_mod(
                            reads[0], reads[1], _col, out=writes[0]
                        )

                _DISPATCH.elementwise(
                    "ks-mul",
                    reads=(pairs[0][0].stack.data, pairs[0][1].stack.data),
                    writes=(acc.stack.data,),
                    ops_per_element=MODMUL_OPS,
                    replay=mul_replay,
                )
                for j in range(1, digit_count):
                    fma_replay = None
                    if executable:

                        def fma_replay(reads, writes, _col=col):
                            prod = modmath.stack_mul_mod(
                                reads[1], reads[2], _col
                            )
                            modmath.stack_add_mod(
                                reads[0], prod, _col, out=writes[0]
                            )

                    _DISPATCH.elementwise(
                        "ks-mul-add",
                        reads=(
                            acc.stack.data,
                            pairs[j][0].stack.data,
                            pairs[j][1].stack.data,
                        ),
                        writes=(acc.stack.data,),
                        ops_per_element=MODMUL_OPS + MODADD_OPS,
                        replay=fma_replay,
                    )
                if executable:

                    def dot_replay(reads, writes, _d=digit_count, _col=col):
                        # Member reads in order: (digit0, key0), then
                        # (acc, digit_j, key_j) per further digit.
                        dot_pairs = [(reads[0], reads[1])]
                        idx = 2
                        for _ in range(_d - 1):
                            dot_pairs.append(
                                (reads[idx + 1], reads[idx + 2])
                            )
                            idx += 3
                        modmath.stack_dot_mod(dot_pairs, _col, out=writes[0])

                    _DISPATCH.fusion_group(digit_count, dot_replay)
        elif _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(
                    reads, writes, _d=len(pairs0),
                    _col=pairs0[0][0].stack.moduli_col,
                ):
                    digits = reads[:_d]
                    keys0 = reads[_d : 2 * _d]
                    keys1 = reads[2 * _d :]
                    modmath.stack_dot_mod(
                        list(zip(digits, keys0)), _col, out=writes[0]
                    )
                    modmath.stack_dot_mod(
                        list(zip(digits, keys1)), _col, out=writes[1]
                    )

            _DISPATCH.elementwise(
                "ks-inner-product",
                reads=tuple(digit.stack.data for digit, _ in pairs0)
                + tuple(key_poly.stack.data for _, key_poly in pairs0)
                + tuple(key_poly.stack.data for _, key_poly in pairs1),
                writes=(acc0.stack.data, acc1.stack.data),
                ops_per_element=len(pairs0) * 2.0 * (MODMUL_OPS + MODADD_OPS),
                replay=replay,
            )
        delta0, delta1 = mod_down_many(context, [acc0, acc1])
        return delta0, delta1


def key_switch(
    context: Context, poly: RNSPoly, key: KeySwitchingKey
) -> tuple[RNSPoly, RNSPoly]:
    """Full key switch of ``poly`` (decompose, ModUp, key multiply, ModDown)."""
    decomposed = decompose_and_mod_up(context, poly)
    return apply_key(context, decomposed, key)


__all__ = [
    "DecomposedPolynomial",
    "decompose_and_mod_up",
    "mod_down",
    "mod_down_many",
    "apply_key",
    "key_switch",
]
