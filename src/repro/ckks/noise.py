"""Static noise / precision estimation.

FIDESlib transfers a static noise estimate back to the OpenFHE client
together with decrypted data (§III-B).  The reference client here does the
same: :func:`estimate_noise_bits` predicts the noise growth of an
operation sequence from parameter-level quantities, and
:func:`measured_precision_bits` measures the actual precision by comparing
a decrypted result against the expected plaintext (the quantity Table VI
calls "achieved message precision").
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.ckks.params import CKKSParameters


def fresh_encryption_noise_bits(params: CKKSParameters) -> float:
    """Expected log2 noise of a fresh public-key encryption."""
    n = params.ring_degree
    sigma = params.error_std
    # v*e_pk + e0 + e1*s: dominated by the ring products of two small polys.
    magnitude = sigma * math.sqrt(n) * (1.0 + math.sqrt(params.secret_hamming_weight))
    return math.log2(max(2.0, magnitude))


def key_switch_noise_bits(params: CKKSParameters) -> float:
    """Expected log2 noise added by one hybrid key switching."""
    n = params.ring_degree
    digit_bits = params.digit_size * params.scale_bits + (
        params.first_mod_bits - params.scale_bits
    )
    special_bits = params.special_limb_count * params.special_mod_bits
    # dnum * sqrt(N) * alpha * sigma * (Q_digit / P): the ModDown-divided
    # inner-product error derived in the keyswitch module docstring.
    magnitude = (
        params.dnum
        * math.sqrt(n)
        * params.digit_size
        * params.error_std
        * 2.0 ** (digit_bits - special_bits)
    )
    return math.log2(max(2.0, magnitude))


def rescale_noise_bits(params: CKKSParameters) -> float:
    """Expected log2 noise added by a single rescale (rounding error)."""
    return math.log2(max(2.0, math.sqrt(params.secret_hamming_weight + 1.0)))


def estimate_noise_bits(params: CKKSParameters, operations: Iterable[str]) -> float:
    """Predict the accumulated noise (in bits) of an operation sequence.

    ``operations`` is a sequence of operation names drawn from
    ``{"encrypt", "hadd", "hmult", "rescale", "rotate", "ptmult"}``.
    Noise contributions are combined as independent magnitudes (root sum
    of squares), matching the static estimator the adapter layer reports.
    """
    total = 0.0
    for op in operations:
        if op == "encrypt":
            bits = fresh_encryption_noise_bits(params)
        elif op in ("hmult", "rotate", "conjugate"):
            bits = key_switch_noise_bits(params)
        elif op == "rescale":
            bits = rescale_noise_bits(params)
        elif op in ("hadd", "ptadd", "scalaradd"):
            bits = 1.0
        elif op in ("ptmult", "scalarmult"):
            bits = rescale_noise_bits(params)
        else:
            raise ValueError(f"unknown operation {op!r}")
        total += 4.0 ** bits
    return 0.5 * math.log2(max(2.0, total))


def precision_bits_from_error(max_error: float) -> float:
    """Convert a worst-case absolute error into bits of precision."""
    if max_error <= 0.0:
        return 60.0
    return max(0.0, -math.log2(max_error))


def measured_precision_bits(expected, actual) -> float:
    """Measured precision (bits) between expected and decrypted values."""
    expected = np.asarray(expected, dtype=np.complex128)
    actual = np.asarray(actual, dtype=np.complex128)
    if expected.shape != actual.shape:
        raise ValueError("expected and actual shapes differ")
    error = float(np.max(np.abs(expected - actual))) if expected.size else 0.0
    return precision_bits_from_error(error)


__all__ = [
    "fresh_encryption_noise_bits",
    "key_switch_noise_bits",
    "rescale_noise_bits",
    "estimate_noise_bits",
    "precision_bits_from_error",
    "measured_precision_bits",
]
