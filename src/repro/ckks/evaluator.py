"""The server-side CKKS evaluator: every primitive of Table I.

``Evaluator`` implements the homomorphic operations FIDESlib runs on the
GPU -- HAdd, PtAdd, ScalarAdd, HMult, PtMult, ScalarMult, HSquare,
Rescale, HRotate, HConjugate and the hoisted-rotation routine -- on top of
the :mod:`repro.core` polynomial substrate and the hybrid key switching of
:mod:`repro.ckks.keyswitch`.

Scale management follows the per-level scale ladder computed by the
context (Kim et al. [36]): ciphertexts at the same level always carry the
same scaling factor, so additions are exact, and plaintext/scalar
multiplications encode their operand at the scale that restores the ladder
after the following rescale.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.ckks.encryption import encode
from repro.ckks.keys import KeySet, KeySwitchingKey
from repro.ckks.keyswitch import apply_key, decompose_and_mod_up, key_switch
from repro.core import modmath
from repro.core.automorphism import conjugation_exponent, rotation_to_exponent
from repro.core.dispatch import get_dispatcher
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly
from repro.gpu.kernel import MODADD_OPS, MODMUL_OPS

#: Execution-plane dispatcher: the evaluator tags operation scopes so a
#: recorded trace segments into hmult/modup/moddown/rescale regions, and
#: emits the fused kernels (tensor product, relinearisation add) at the
#: granularity FIDESlib launches them.
_DISPATCH = get_dispatcher()

#: Relative scale mismatch tolerated before an addition is rejected.
_SCALE_TOLERANCE = 1e-6


class Evaluator:
    """Applies homomorphic operations using a context and evaluation keys."""

    def __init__(self, context: Context, keys: KeySet) -> None:
        self.context = context
        self.keys = keys

    # ------------------------------------------------------------------
    # level and scale management
    # ------------------------------------------------------------------

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last limb, dividing the message scale by its prime.

        Both ciphertext components go through one fused stacked rescale,
        sharing the switch-modulus broadcast and NTT passes.
        """
        if ct.limb_count < 2:
            raise ValueError("cannot rescale a level-0 ciphertext")
        q_last = ct.moduli[-1]
        with _DISPATCH.scope("rescale"):
            c0, c1 = RNSPoly.rescale_last_many([ct.c0, ct.c1])
        return ct.with_polys(c0, c1, scale=ct.scale / q_last)

    def mod_reduce(self, ct: Ciphertext, limb_count: int) -> Ciphertext:
        """Drop limbs without rescaling (message and scale unchanged)."""
        if limb_count > ct.limb_count:
            raise ValueError("cannot mod-reduce to a larger limb count")
        if limb_count == ct.limb_count:
            return ct.copy()
        return ct.with_polys(
            ct.c0.keep_limbs(limb_count),
            ct.c1.keep_limbs(limb_count),
        )

    def adjust(self, ct: Ciphertext, target_level: int,
               target_scale: float | None = None) -> Ciphertext:
        """Bring ``ct`` to ``target_level`` with the requested scale.

        Uses a scalar multiplication folded with a rescale so the output
        scale matches ``target_scale`` (default: the ladder scale of the
        target level) to within rounding error.
        """
        if target_scale is None:
            target_scale = self.context.scale_at(target_level)
        if target_level > ct.level:
            raise ValueError("cannot adjust to a higher level")
        if target_level == ct.level:
            if not _scales_match(ct.scale, target_scale):
                raise ValueError(
                    f"cannot change scale in place ({ct.scale:.6g} vs {target_scale:.6g})"
                )
            return ct.copy()
        reduced = self.mod_reduce(ct, target_level + 2)
        q = reduced.moduli[-1]
        weight = max(1, int(round(q * target_scale / reduced.scale)))
        adjusted = reduced.with_polys(
            reduced.c0.multiply_scalar(weight),
            reduced.c1.multiply_scalar(weight),
            scale=reduced.scale * weight,
        )
        rescaled = self.rescale(adjusted)
        return rescaled.with_polys(rescaled.c0, rescaled.c1, scale=target_scale)

    def _match(self, ct1: Ciphertext, ct2: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts to a common level and scale for addition."""
        if ct1.level == ct2.level:
            if _scales_match(ct1.scale, ct2.scale):
                return ct1, ct2
            raise ValueError(
                f"scale mismatch at equal level: {ct1.scale:.6g} vs {ct2.scale:.6g}"
            )
        if ct1.level > ct2.level:
            return self.adjust(ct1, ct2.level, ct2.scale), ct2
        return ct1, self.adjust(ct2, ct1.level, ct1.scale)

    # ------------------------------------------------------------------
    # additions (HAdd, PtAdd, ScalarAdd)
    # ------------------------------------------------------------------

    def add(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        """Homomorphic ciphertext addition (``HAdd``)."""
        with _DISPATCH.scope("hadd"):
            a, b = self._match(ct1, ct2)
            return a.with_polys(a.c0.add(b.c0), a.c1.add(b.c1))

    def sub(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        """Homomorphic ciphertext subtraction."""
        with _DISPATCH.scope("hadd"):
            a, b = self._match(ct1, ct2)
            return a.with_polys(a.c0.sub(b.c0), a.c1.sub(b.c1))

    def negate(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return ct.with_polys(ct.c0.negate(), ct.c1.negate())

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Plaintext addition (``PtAdd``)."""
        if not _scales_match(ct.scale, pt.scale):
            raise ValueError(
                f"plaintext scale {pt.scale:.6g} does not match ciphertext {ct.scale:.6g}"
            )
        with _DISPATCH.scope("ptadd"):
            poly = self._plain_operand(ct, pt)
            return ct.with_polys(ct.c0.add(poly), ct.c1.copy())

    def sub_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Plaintext subtraction."""
        if not _scales_match(ct.scale, pt.scale):
            raise ValueError("plaintext scale does not match ciphertext")
        with _DISPATCH.scope("ptadd"):
            poly = self._plain_operand(ct, pt)
            return ct.with_polys(ct.c0.sub(poly), ct.c1.copy())

    @staticmethod
    def _plain_operand(ct: Ciphertext, pt: Plaintext) -> RNSPoly:
        """Restrict a plaintext to the ciphertext basis, in evaluation format.

        Limbs are dropped before the format conversion so the stacked NTT
        only transforms the rows that survive (per-limb transforms are
        independent, so the order does not change any residue).
        """
        poly = pt.poly.keep_limbs(ct.limb_count)
        if poly.fmt is not LimbFormat.EVALUATION:
            poly = poly.to_evaluation()
        return poly

    def add_scalar(self, ct: Ciphertext, value: float) -> Ciphertext:
        """Constant addition (``ScalarAdd``): adds ``value`` to every slot."""
        integer = int(round(float(value) * ct.scale))
        with _DISPATCH.scope("scalaradd"):
            return ct.with_polys(ct.c0.add_scalar(integer), ct.c1.copy())

    def sub_scalar(self, ct: Ciphertext, value: float) -> Ciphertext:
        """Constant subtraction."""
        return self.add_scalar(ct, -float(value))

    # ------------------------------------------------------------------
    # multiplications (HMult, PtMult, ScalarMult, HSquare)
    # ------------------------------------------------------------------

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext, *, rescale: bool = True) -> Ciphertext:
        """Plaintext multiplication (``PtMult``)."""
        with _DISPATCH.scope("ptmult"):
            poly = self._plain_operand(ct, pt)
            result = ct.with_polys(
                ct.c0.multiply(poly),
                ct.c1.multiply(poly),
                scale=ct.scale * pt.scale,
            )
            return self.rescale(result) if rescale else result

    def multiply_scalar(self, ct: Ciphertext, value: float, *, rescale: bool = True,
                        scalar_scale: float | None = None) -> Ciphertext:
        """Constant multiplication (``ScalarMult``).

        The constant is encoded at the scale that restores the ladder after
        the rescale, so chained operations keep exact per-level scales.
        """
        if rescale and ct.level == 0:
            raise ValueError(
                "multiply_scalar(..., rescale=True) on a level-0 ciphertext: there is "
                "no limb left to drop, so the result scale cannot be restored to the "
                "ladder; pass rescale=False (the result keeps scale * scalar_scale) "
                "or bootstrap the ciphertext first"
            )
        if scalar_scale is None:
            if rescale and ct.level >= 1:
                q = ct.moduli[-1]
                scalar_scale = q * self.context.scale_at(ct.level - 1) / ct.scale
            else:
                scalar_scale = self.context.scale
        integer = int(round(float(value) * scalar_scale))
        with _DISPATCH.scope("scalarmult"):
            result = ct.with_polys(
                ct.c0.multiply_scalar(integer),
                ct.c1.multiply_scalar(integer),
                scale=ct.scale * scalar_scale,
            )
            if rescale:
                result = self.rescale(result)
                if ct.level >= 1:
                    result = result.with_polys(
                        result.c0, result.c1,
                        scale=self.context.scale_at(ct.level - 1) * 1.0,
                    )
        return result

    def multiply_scalar_int(self, ct: Ciphertext, value: int) -> Ciphertext:
        """Multiply by a small integer without changing the scale."""
        return ct.with_polys(
            ct.c0.multiply_scalar(int(value)),
            ct.c1.multiply_scalar(int(value)),
        )

    def multiply(self, ct1: Ciphertext, ct2: Ciphertext, *, rescale: bool = True,
                 relinearize: bool = True) -> Ciphertext:
        """Homomorphic multiplication (``HMult``) with relinearisation."""
        with _DISPATCH.scope("hmult"):
            a, b = self._match_for_product(ct1, ct2)
            # The GPU launches the whole tensor product as one fused kernel
            # (4 products + 2 additions per element); record it that way.
            with _DISPATCH.suppressed():
                d0 = a.c0.multiply(b.c0)
                # Dot-product fusion (§III-F.5): one wide accumulation for the
                # cross term instead of two reduced products plus a reduced add.
                d1 = RNSPoly.multiply_accumulate([(a.c0, b.c1), (a.c1, b.c0)])
                d2 = a.c1.multiply(b.c1)
            if _DISPATCH.recording:
                replay = None
                if _DISPATCH.executable_recording:

                    def replay(reads, writes, _col=a.c0.stack.moduli_col):
                        ac0, ac1, bc0, bc1 = reads
                        modmath.stack_mul_mod(ac0, bc0, _col, out=writes[0])
                        modmath.stack_dot_mod(
                            [(ac0, bc1), (ac1, bc0)], _col, out=writes[1]
                        )
                        modmath.stack_mul_mod(ac1, bc1, _col, out=writes[2])

                _DISPATCH.elementwise(
                    "tensor",
                    reads=(a.c0.stack.data, a.c1.stack.data,
                           b.c0.stack.data, b.c1.stack.data),
                    writes=(d0.stack.data, d1.stack.data, d2.stack.data),
                    ops_per_element=4.0 * MODMUL_OPS + 2.0 * MODADD_OPS,
                    replay=replay,
                )
            result = self._relinearize(a, d0, d1, d2, a.scale * b.scale) if relinearize else \
                a.with_polys(d0, d1, scale=a.scale * b.scale)
            return self.rescale(result) if rescale else result

    def square(self, ct: Ciphertext, *, rescale: bool = True) -> Ciphertext:
        """Homomorphic squaring (``HSquare``), cheaper than a general HMult."""
        with _DISPATCH.scope("hsquare"):
            with _DISPATCH.suppressed():
                d0 = ct.c0.multiply(ct.c0)
                cross = ct.c0.multiply(ct.c1)
                d1 = cross.add(cross)
                d2 = ct.c1.multiply(ct.c1)
            if _DISPATCH.recording:
                replay = None
                if _DISPATCH.executable_recording:

                    def replay(reads, writes, _col=ct.c0.stack.moduli_col):
                        c0, c1 = reads
                        modmath.stack_mul_mod(c0, c0, _col, out=writes[0])
                        cross = modmath.stack_mul_mod(c0, c1, _col)
                        modmath.stack_add_mod(cross, cross, _col, out=writes[1])
                        modmath.stack_mul_mod(c1, c1, _col, out=writes[2])

                _DISPATCH.elementwise(
                    "square-tensor",
                    reads=(ct.c0.stack.data, ct.c1.stack.data),
                    writes=(d0.stack.data, d1.stack.data, d2.stack.data),
                    ops_per_element=3.0 * MODMUL_OPS + MODADD_OPS,
                    replay=replay,
                )
            result = self._relinearize(ct, d0, d1, d2, ct.scale * ct.scale)
            return self.rescale(result) if rescale else result

    def _match_for_product(self, ct1: Ciphertext, ct2: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        if ct1.level == ct2.level:
            return ct1, ct2
        if ct1.level > ct2.level:
            return self.adjust(ct1, ct2.level), ct2
        return ct1, self.adjust(ct2, ct1.level)

    def _relinearize(self, template: Ciphertext, d0: RNSPoly, d1: RNSPoly,
                     d2: RNSPoly, scale: float) -> Ciphertext:
        delta0, delta1 = key_switch(self.context, d2, self.keys.relinearization_key)
        # Both component additions are one fused GPU launch.
        with _DISPATCH.suppressed():
            c0 = d0.add(delta0)
            c1 = d1.add(delta1)
        if _DISPATCH.recording:
            replay = None
            if _DISPATCH.executable_recording:

                def replay(reads, writes, _col=d0.stack.moduli_col):
                    modmath.stack_add_mod(reads[0], reads[1], _col, out=writes[0])
                    modmath.stack_add_mod(reads[2], reads[3], _col, out=writes[1])

            _DISPATCH.elementwise(
                "relin-add",
                reads=(d0.stack.data, delta0.stack.data,
                       d1.stack.data, delta1.stack.data),
                writes=(c0.stack.data, c1.stack.data),
                ops_per_element=2.0 * MODADD_OPS,
                replay=replay,
            )
        return template.with_polys(c0, c1, scale=scale)

    def multiply_by_monomial(self, ct: Ciphertext, power: int) -> Ciphertext:
        """Multiply by ``X^power`` (no scale change).

        ``power = N/2`` multiplies every slot by the imaginary unit ``i``,
        which the bootstrapping transforms use to recombine the real and
        imaginary coefficient halves without consuming a level.
        """
        n = self.context.ring_degree
        power = power % (2 * n)
        sign = 1
        if power >= n:
            power -= n
            sign = -1
        coefficients = [0] * n
        coefficients[power] = sign
        monomial = RNSPoly.from_int_coefficients(
            n, ct.moduli, coefficients, fmt=LimbFormat.EVALUATION
        )
        return ct.with_polys(ct.c0.multiply(monomial), ct.c1.multiply(monomial))

    def multiply_by_i(self, ct: Ciphertext) -> Ciphertext:
        """Multiply every slot by the imaginary unit ``i``."""
        return self.multiply_by_monomial(ct, self.context.ring_degree // 2)

    # ------------------------------------------------------------------
    # rotations (HRotate, HConjugate, hoisting)
    # ------------------------------------------------------------------

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Rotate the message vector left by ``steps`` slots (``HRotate``)."""
        if steps % ct.slots == 0:
            return ct.copy()
        key = self.keys.rotation_key(steps)
        exponent = rotation_to_exponent(self.context.ring_degree, steps)
        with _DISPATCH.scope("hrotate"):
            return self._apply_automorphism(ct, exponent, key)

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        """Conjugate the message vector (``HConjugate``)."""
        if self.keys.conjugation_key is None:
            raise KeyError("no conjugation key was generated")
        exponent = conjugation_exponent(self.context.ring_degree)
        with _DISPATCH.scope("hconjugate"):
            return self._apply_automorphism(ct, exponent, self.keys.conjugation_key)

    def _apply_automorphism(self, ct: Ciphertext, exponent: int,
                            key: KeySwitchingKey) -> Ciphertext:
        rotated_c0 = ct.c0.automorphism(exponent)
        rotated_c1 = ct.c1.automorphism(exponent)
        delta0, delta1 = key_switch(self.context, rotated_c1, key)
        return ct.with_polys(rotated_c0.add(delta0), delta1)

    def hoisted_rotations(self, ct: Ciphertext, steps: Sequence[int]) -> dict[int, Ciphertext]:
        """Rotate one ciphertext by many step counts, sharing the ModUp.

        Implements the hoisting optimisation of Halevi-Shoup [39]
        (§III-F.6): the digit decomposition and base extension of ``c1``
        are computed once and reused for every rotation key.
        """
        with _DISPATCH.scope("hoisted"):
            return self._hoisted_rotations(ct, steps)

    def _hoisted_rotations(self, ct: Ciphertext, steps: Sequence[int]) -> dict[int, Ciphertext]:
        decomposed = decompose_and_mod_up(self.context, ct.c1)
        results: dict[int, Ciphertext] = {}
        for step in steps:
            step = int(step)
            if step % ct.slots == 0:
                results[step] = ct.copy()
                continue
            key = self.keys.rotation_key(step)
            exponent = rotation_to_exponent(self.context.ring_degree, step)
            delta0, delta1 = apply_key(
                self.context, decomposed, key, automorphism_exponent=exponent
            )
            rotated_c0 = ct.c0.automorphism(exponent)
            results[step] = ct.with_polys(rotated_c0.add(delta0), delta1)
        return results

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def encode_for(self, ct: Ciphertext, values, *, for_multiplication: bool = True) -> Plaintext:
        """Encode values so the plaintext composes cleanly with ``ct``.

        For multiplication the plaintext is encoded at the scale that
        restores the ladder after the following rescale; for addition it is
        encoded at the ciphertext's own scale.
        """
        if for_multiplication and ct.level >= 1:
            q = ct.moduli[-1]
            scale = q * self.context.scale_at(ct.level - 1) / ct.scale
        else:
            scale = ct.scale
        return encode(self.context, values, scale=scale, limb_count=ct.limb_count)

    def dot_product_plain(self, cts: Sequence[Ciphertext], plaintexts: Sequence[Plaintext],
                          *, rescale: bool = True) -> Ciphertext:
        """Fused weighted sum ``Σ ct_i ⊙ pt_i`` (the dot-product fusion of §III-F.5)."""
        if not cts:
            raise ValueError(
                "dot_product_plain needs at least one ciphertext/plaintext pair; "
                "got an empty ciphertext sequence"
            )
        if len(cts) != len(plaintexts):
            raise ValueError(
                f"dot_product_plain needs equally many ciphertexts and plaintexts; "
                f"got {len(cts)} ciphertexts and {len(plaintexts)} plaintexts"
            )
        acc = self.multiply_plain(cts[0], plaintexts[0], rescale=False)
        for ct, pt in zip(cts[1:], plaintexts[1:]):
            acc = self.add(acc, self.multiply_plain(ct, pt, rescale=False))
        return self.rescale(acc) if rescale else acc


def scales_match(scale_a: float, scale_b: float, tolerance: float = _SCALE_TOLERANCE) -> bool:
    """Return True when two scales are equal up to ``tolerance`` (relative).

    Shared by the evaluator and the symbolic cost-model backend of
    :mod:`repro.api` so both reject mismatched scales identically.
    """
    return math.isclose(scale_a, scale_b, rel_tol=tolerance)


#: Backwards-compatible private alias.
_scales_match = scales_match


__all__ = ["Evaluator", "scales_match"]
