"""Key material: secret, public, relinearisation and rotation keys.

Key generation is a client-side operation in the paper's architecture
(handled by OpenFHE); the reference implementation lives here so the
:mod:`repro.openfhe` client can delegate to it, and so the server-side
tests can validate every homomorphic operation against freshly generated
keys.

Hybrid key switching (Han-Ki [37]) stores, for every digit ``j`` of the
RNS basis, an RLWE encryption under ``s`` of ``T_j * s'`` over the
extended modulus ``P * Q``, where
``T_j = P * (Q/Q_j) * [(Q/Q_j)^{-1} mod Q_j]``.  The same key works at
every ciphertext level (the level-dependent parts of the computation live
in :mod:`repro.ckks.keyswitch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks.context import Context
from repro.core import modmath
from repro.core.automorphism import conjugation_exponent, rotation_to_exponent
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


@dataclass
class SecretKey:
    """Ternary secret key stored over the full extended basis."""

    coefficients: list[int]
    poly: RNSPoly  # evaluation format, extended basis
    hamming_weight: int

    def restricted(self, limb_count: int) -> RNSPoly:
        """Return the secret key over the first ``limb_count`` ciphertext limbs."""
        return self.poly.keep_limbs(limb_count)


@dataclass
class PublicKey:
    """RLWE public key ``(b, a) = (-a*s + e, a)`` over the ciphertext basis."""

    b: RNSPoly
    a: RNSPoly


@dataclass
class KeySwitchingKey:
    """Hybrid key-switching key: one ``(b_j, a_j)`` pair per digit."""

    digits: list[tuple[RNSPoly, RNSPoly]]
    target_description: str = ""

    @property
    def dnum(self) -> int:
        """Number of digits."""
        return len(self.digits)

    def footprint_bytes(self, element_bytes: int | None = None) -> int:
        """Device-memory footprint of the key (Figure 8 discussion)."""
        return sum(
            b.footprint_bytes(element_bytes) + a.footprint_bytes(element_bytes)
            for b, a in self.digits
        )


@dataclass
class KeySet:
    """All key material produced by :class:`KeyGenerator.generate`."""

    public_key: PublicKey
    relinearization_key: KeySwitchingKey
    rotation_keys: dict[int, KeySwitchingKey] = field(default_factory=dict)
    conjugation_key: KeySwitchingKey | None = None
    secret_key: SecretKey | None = None

    def rotation_key(self, steps: int) -> KeySwitchingKey:
        """Return the rotation key for ``steps``, raising if it was not generated."""
        key = self.rotation_keys.get(steps)
        if key is None:
            available = sorted(self.rotation_keys)
            inventory = ", ".join(str(s) for s in available) if available else "none"
            raise KeyError(
                f"no rotation key for {steps} steps (available rotation steps: "
                f"{inventory}); generate it with KeyGenerator.generate_rotation_key "
                f"or request it up front via CKKSSession.create(rotations=...)"
            )
        return key

    def without_secret(self) -> "KeySet":
        """Return a copy safe to hand to the (untrusted) server side."""
        return KeySet(
            public_key=self.public_key,
            relinearization_key=self.relinearization_key,
            rotation_keys=dict(self.rotation_keys),
            conjugation_key=self.conjugation_key,
            secret_key=None,
        )


class KeyGenerator:
    """Generates CKKS key material for a :class:`~repro.ckks.context.Context`."""

    def __init__(self, context: Context, seed: int | None = None) -> None:
        self.context = context
        self.rng = np.random.default_rng(seed)

    # -- sampling helpers -----------------------------------------------------

    def sample_ternary(self, hamming_weight: int | None = None) -> list[int]:
        """Sample a ternary polynomial, sparse when ``hamming_weight`` is given."""
        n = self.context.ring_degree
        if hamming_weight is None:
            return [int(v) for v in self.rng.integers(-1, 2, size=n)]
        hamming_weight = min(hamming_weight, n)
        coeffs = [0] * n
        positions = self.rng.choice(n, size=hamming_weight, replace=False)
        signs = self.rng.choice([-1, 1], size=hamming_weight)
        for pos, sign in zip(positions, signs):
            coeffs[int(pos)] = int(sign)
        return coeffs

    def sample_error(self) -> list[int]:
        """Sample a discrete Gaussian error polynomial."""
        n = self.context.ring_degree
        std = self.context.params.error_std
        return [int(round(v)) for v in self.rng.normal(0.0, std, size=n)]

    def sample_uniform_poly(self, moduli: list[int]) -> RNSPoly:
        """Sample a uniformly random polynomial over ``moduli`` (evaluation format).

        The per-limb draws go straight into the flat limb-stack layout (no
        intermediate per-limb ``Limb`` objects); the draw sequence is
        unchanged, so key material is reproducible across versions.
        """
        n = self.context.ring_degree
        rows = [self.rng.integers(0, q, size=n, dtype=np.int64) for q in moduli]
        return RNSPoly.from_limb_arrays(n, moduli, rows, LimbFormat.EVALUATION)

    # -- key generation -------------------------------------------------------

    def generate_secret(self) -> SecretKey:
        """Generate a sparse ternary secret key over the extended basis."""
        coeffs = self.sample_ternary(self.context.params.secret_hamming_weight)
        poly = RNSPoly.from_int_coefficients(
            self.context.ring_degree,
            self.context.extended_moduli,
            coeffs,
            fmt=LimbFormat.EVALUATION,
        )
        weight = sum(1 for c in coeffs if c != 0)
        return SecretKey(coefficients=coeffs, poly=poly, hamming_weight=weight)

    def generate_public(self, secret: SecretKey) -> PublicKey:
        """Generate the RLWE public key over the ciphertext basis."""
        moduli = self.context.moduli
        a = self.sample_uniform_poly(moduli)
        e = RNSPoly.from_int_coefficients(
            self.context.ring_degree, moduli, self.sample_error(),
            fmt=LimbFormat.EVALUATION,
        )
        s = secret.restricted(len(moduli))
        b = a.multiply(s).negate().add(e)
        return PublicKey(b=b, a=a)

    def generate_switching_key(
        self, target_coefficients: list[int], secret: SecretKey, description: str = ""
    ) -> KeySwitchingKey:
        """Generate a hybrid key-switching key for the target secret ``s'``.

        ``target_coefficients`` are the integer coefficients of ``s'``
        (e.g. the coefficients of ``s^2`` for relinearisation, or of
        ``σ_k(s)`` for a rotation key).
        """
        ctx = self.context
        moduli = ctx.extended_moduli
        target = RNSPoly.from_int_coefficients(
            ctx.ring_degree, moduli, target_coefficients, fmt=LimbFormat.EVALUATION
        )
        digits = []
        for j in range(ctx.params.dnum):
            factors = ctx.key_switch_factor(j)
            a_j = self.sample_uniform_poly(moduli)
            e_j = RNSPoly.from_int_coefficients(
                ctx.ring_degree, moduli, self.sample_error(), fmt=LimbFormat.EVALUATION
            )
            payload = target.multiply_scalar(factors)
            b_j = a_j.multiply(secret.poly).negate().add(e_j).add(payload)
            digits.append((b_j, a_j))
        return KeySwitchingKey(digits=digits, target_description=description)

    def generate_relinearization_key(self, secret: SecretKey) -> KeySwitchingKey:
        """Generate the key for switching ``s^2`` back to ``s`` after HMult."""
        s_squared = _square_coefficients(secret.coefficients, self.context.ring_degree)
        return self.generate_switching_key(s_squared, secret, "s^2")

    def generate_rotation_key(self, secret: SecretKey, steps: int) -> KeySwitchingKey:
        """Generate the key-switching key for a rotation by ``steps`` slots."""
        exponent = rotation_to_exponent(self.context.ring_degree, steps)
        rotated = _automorphism_coefficients(
            secret.coefficients, self.context.ring_degree, exponent
        )
        return self.generate_switching_key(rotated, secret, f"rot({steps})")

    def generate_conjugation_key(self, secret: SecretKey) -> KeySwitchingKey:
        """Generate the key-switching key for complex conjugation."""
        exponent = conjugation_exponent(self.context.ring_degree)
        conj = _automorphism_coefficients(
            secret.coefficients, self.context.ring_degree, exponent
        )
        return self.generate_switching_key(conj, secret, "conjugate")

    def generate(
        self,
        rotations: list[int] | tuple[int, ...] = (),
        *,
        conjugation: bool = False,
        keep_secret: bool = True,
    ) -> KeySet:
        """Generate a full key set (public, relinearisation, rotation keys)."""
        secret = self.generate_secret()
        public = self.generate_public(secret)
        relin = self.generate_relinearization_key(secret)
        rotation_keys = {
            int(steps): self.generate_rotation_key(secret, int(steps))
            for steps in rotations
        }
        conj_key = self.generate_conjugation_key(secret) if conjugation else None
        return KeySet(
            public_key=public,
            relinearization_key=relin,
            rotation_keys=rotation_keys,
            conjugation_key=conj_key,
            secret_key=secret if keep_secret else None,
        )


def _square_coefficients(coefficients: list[int], ring_degree: int) -> list[int]:
    """Return the integer coefficients of ``s^2`` in ``Z[X]/(X^N + 1)``."""
    n = ring_degree
    result = [0] * n
    nonzero = [(i, c) for i, c in enumerate(coefficients) if c != 0]
    for i, ci in nonzero:
        for j, cj in nonzero:
            idx = i + j
            value = ci * cj
            if idx >= n:
                idx -= n
                value = -value
            result[idx] += value
    return result


def _automorphism_coefficients(coefficients: list[int], ring_degree: int, exponent: int) -> list[int]:
    """Return the coefficients of ``s(X^exponent)`` in ``Z[X]/(X^N + 1)``."""
    n = ring_degree
    result = [0] * n
    for i, c in enumerate(coefficients):
        if c == 0:
            continue
        idx = (i * exponent) % (2 * n)
        if idx >= n:
            result[idx - n] -= c
        else:
            result[idx] += c
    return result


__all__ = [
    "SecretKey",
    "PublicKey",
    "KeySwitchingKey",
    "KeySet",
    "KeyGenerator",
]
