"""Homomorphic linear transforms (ciphertext-vector x plaintext-matrix).

The CoeffToSlot and SlotToCoeff stages of bootstrapping are homomorphic
multiplications by fixed DFT-derived matrices.  FIDESlib (like OpenFHE)
evaluates them with the Baby-Step Giant-Step (BSGS) algorithm of
Bossuat et al. [42]: the matrix is decomposed into its generalized
diagonals, baby-step rotations of the input are produced once with the
hoisted-rotation optimisation, and each giant step combines ``n1``
plaintext multiplications with a single rotation.

:class:`LinearTransform` implements that algorithm for an arbitrary
``slots x slots`` complex matrix; :func:`coeff_to_slot_matrix` and
:func:`slot_to_coeff_matrix` build the (scaled) DFT matrices used by
:mod:`repro.ckks.bootstrap`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.ckks.encoding import rotation_group
from repro.ckks.evaluator import Evaluator
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


def decoding_matrix(ring_degree: int) -> np.ndarray:
    """Return ``E0``: the slots-from-lower-coefficients decoding matrix.

    ``E0[j, t] = ζ^{5^j * t}`` with ``ζ = exp(iπ/N)`` and ``t < N/2``.  The
    full canonical embedding of a real polynomial ``m`` satisfies
    ``σ(m) = E0 · (m_lo + i·m_hi)``, which is the identity CoeffToSlot and
    SlotToCoeff exploit.
    """
    n = ring_degree
    slots = n // 2
    group = rotation_group(n)
    zeta = np.exp(1j * np.pi / n)
    exponents = np.outer(group, np.arange(slots))
    return zeta ** (exponents % (2 * n))


def coeff_to_slot_matrix(ring_degree: int, scale_factor: float) -> np.ndarray:
    """Return ``scale_factor * E0^{-1}`` used by CoeffToSlot."""
    e0 = decoding_matrix(ring_degree)
    return scale_factor * np.linalg.inv(e0)


def slot_to_coeff_matrix(ring_degree: int, scale_factor: float) -> np.ndarray:
    """Return ``scale_factor * E0`` used by SlotToCoeff."""
    return scale_factor * decoding_matrix(ring_degree)


class LinearTransform:
    """BSGS evaluation of ``slots x slots`` plaintext matrices.

    Parameters
    ----------
    context:
        The CKKS context (the matrix must be ``N/2 x N/2``).
    matrix:
        Complex matrix applied to the slot vector.
    baby_steps:
        Number of baby steps ``n1``; defaults to ``ceil(sqrt(slots))``
        rounded to a divisor of the slot count.
    """

    def __init__(self, context: Context, matrix: np.ndarray,
                 baby_steps: int | None = None) -> None:
        slots = context.slots
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (slots, slots):
            raise ValueError(f"matrix must be {slots}x{slots}, got {matrix.shape}")
        self.context = context
        self.matrix = matrix
        self.slots = slots
        if baby_steps is None:
            baby_steps = 1 << math.ceil(math.log2(max(1, math.isqrt(slots))))
        if slots % baby_steps != 0:
            raise ValueError("baby_steps must divide the slot count")
        self.baby_steps = baby_steps
        self.giant_steps = slots // baby_steps
        # Generalized diagonals diag_k[j] = M[j, (j + k) mod slots], pre-rotated
        # by -giant*n1 so each giant step needs a single output rotation.
        self._diagonals: dict[tuple[int, int], np.ndarray] = {}
        indices = np.arange(slots)
        for giant in range(self.giant_steps):
            for baby in range(self.baby_steps):
                k = giant * self.baby_steps + baby
                diag = matrix[indices, (indices + k) % slots]
                if not np.any(np.abs(diag) > 1e-12):
                    continue
                rotated = np.roll(diag, giant * self.baby_steps)
                self._diagonals[(giant, baby)] = rotated
        # Encoded diagonal plaintexts, cached per (key, limb_count, scale):
        # bootstrapping applies the same transform to many ciphertexts at
        # the same level, and each encode is a full limb-stack build.
        self._plaintext_cache: dict[tuple, Plaintext] = {}

    # -- rotation-key requirements --------------------------------------------

    def required_rotations(self) -> list[int]:
        """Return the rotation steps the evaluator needs keys for."""
        steps = set()
        for baby in range(1, self.baby_steps):
            if any(key[1] == baby for key in self._diagonals):
                steps.add(baby)
        for giant in range(1, self.giant_steps):
            if any(key[0] == giant for key in self._diagonals):
                steps.add(giant * self.baby_steps)
        return sorted(steps)

    # -- evaluation ------------------------------------------------------------

    def apply(self, evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
        """Return the ciphertext whose slots are ``matrix @ slots(ct)``.

        Consumes exactly one multiplicative level.  Baby-step rotations are
        produced with the hoisted-rotation routine; plaintext diagonals are
        encoded at the scale that restores the context's scale ladder after
        the final rescale.
        """
        if ct.level < 1:
            raise ValueError("linear transform needs at least one spare level")
        baby_rotations = self._baby_rotations(evaluator, ct)
        plaintext_scale = self._plaintext_scale(ct)
        accumulator: Ciphertext | None = None
        for giant in range(self.giant_steps):
            inner: Ciphertext | None = None
            for baby in range(self.baby_steps):
                diag = self._diagonals.get((giant, baby))
                if diag is None:
                    continue
                pt = self._cached_diagonal(
                    (giant, baby), diag, ct.limb_count, plaintext_scale
                )
                term = evaluator.multiply_plain(baby_rotations[baby], pt, rescale=False)
                inner = term if inner is None else evaluator.add(inner, term)
            if inner is None:
                continue
            if giant != 0:
                inner = self._rotate_product(evaluator, inner, giant * self.baby_steps)
            accumulator = inner if accumulator is None else evaluator.add(accumulator, inner)
        if accumulator is None:
            raise ValueError("the transform matrix is identically zero")
        return evaluator.rescale(accumulator)

    def _baby_rotations(self, evaluator: Evaluator, ct: Ciphertext) -> dict[int, Ciphertext]:
        steps = sorted({baby for _, baby in self._diagonals})
        nonzero = [s for s in steps if s != 0]
        rotations = evaluator.hoisted_rotations(ct, nonzero) if nonzero else {}
        rotations[0] = ct
        return rotations

    def _rotate_product(self, evaluator: Evaluator, ct: Ciphertext, steps: int) -> Ciphertext:
        return evaluator.rotate(ct, steps)

    def _plaintext_scale(self, ct: Ciphertext) -> float:
        q = ct.moduli[-1]
        target = self.context.scale_at(ct.level - 1)
        return q * target / ct.scale

    def _cached_diagonal(self, key: tuple[int, int], diagonal: np.ndarray,
                         limb_count: int, scale: float) -> Plaintext:
        cache_key = (key, limb_count, scale)
        plaintext = self._plaintext_cache.get(cache_key)
        if plaintext is None:
            plaintext = self._encode_diagonal(diagonal, limb_count, scale)
            self._plaintext_cache[cache_key] = plaintext
        return plaintext

    def _encode_diagonal(self, diagonal: np.ndarray, limb_count: int,
                         scale: float) -> Plaintext:
        coefficients = self.context.encoder.encode_diagonal(diagonal, scale)
        poly = RNSPoly.from_int_coefficients(
            self.context.ring_degree,
            self.context.moduli_at(limb_count),
            coefficients,
            fmt=LimbFormat.EVALUATION,
        )
        return Plaintext(poly=poly, scale=scale, slots=self.slots)


__all__ = [
    "LinearTransform",
    "decoding_matrix",
    "coeff_to_slot_matrix",
    "slot_to_coeff_matrix",
]
