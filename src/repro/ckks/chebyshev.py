"""Chebyshev-series evaluation for ApproxModEval.

Bootstrapping approximates the modular-reduction step with a scaled cosine
(Han-Ki [37], Bossuat et al. [43]): a Chebyshev interpolant of
``cos(2πy)`` on ``[-1, 1]`` is evaluated homomorphically and followed by
``r`` double-angle iterations that extend the effective range to
``[-2^r, 2^r]``.

Two evaluation strategies are provided:

* :func:`evaluate_chebyshev` -- the Baby-Step Giant-Step +
  Paterson-Stockmeyer strategy used by FIDESlib/OpenFHE (quasi-optimal
  multiplication count, ``~2*sqrt(d)`` ciphertext products);
* :func:`evaluate_chebyshev_direct` -- a simple reference evaluator that
  materialises every Chebyshev basis polynomial; used to cross-check the
  BSGS/PS implementation in the tests.

Both keep the multiplicative depth at ``ceil(log2(d)) + 1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.evaluator import Evaluator


def chebyshev_coefficients(function, degree: int, interval: tuple[float, float] = (-1.0, 1.0)) -> np.ndarray:
    """Return Chebyshev interpolation coefficients of ``function``.

    Uses the Chebyshev-Gauss nodes; ``coefficients[k]`` multiplies
    ``T_k(x)`` with the usual halved ``c_0`` convention already applied, so
    ``f(x) ≈ Σ_k coefficients[k] * T_k(x)``.
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    lo, hi = interval
    count = degree + 1
    nodes = np.cos(np.pi * (np.arange(count) + 0.5) / count)
    scaled_nodes = 0.5 * (hi - lo) * nodes + 0.5 * (hi + lo)
    values = np.array([function(x) for x in scaled_nodes], dtype=np.float64)
    coefficients = np.zeros(count, dtype=np.float64)
    for k in range(count):
        coefficients[k] = (2.0 / count) * np.sum(
            values * np.cos(k * np.pi * (np.arange(count) + 0.5) / count)
        )
    coefficients[0] *= 0.5
    return coefficients


def chebyshev_series_value(coefficients: np.ndarray, x: float) -> float:
    """Evaluate a Chebyshev series at a scalar point (plaintext reference)."""
    result = 0.0
    for k, c in enumerate(coefficients):
        result += c * math.cos(k * math.acos(max(-1.0, min(1.0, x))))
    return result


def _chebyshev_basis(evaluator: Evaluator, ct: Ciphertext, degree: int) -> dict[int, Ciphertext]:
    """Return ciphertexts of ``T_1 ... T_degree`` evaluated at ``ct``.

    Uses the recurrences ``T_{2k} = 2*T_k^2 - 1`` and
    ``T_{2k+1} = 2*T_k*T_{k+1} - T_1`` so the depth of ``T_k`` is
    ``ceil(log2(k))``.
    """
    basis: dict[int, Ciphertext] = {1: ct}
    for k in range(2, degree + 1):
        if k in basis:
            continue
        half = k // 2
        if k % 2 == 0:
            squared = evaluator.square(basis[half])
            term = evaluator.multiply_scalar_int(squared, 2)
            basis[k] = evaluator.add_scalar(term, -1.0)
        else:
            prod = evaluator.multiply(basis[half], basis[half + 1])
            term = evaluator.multiply_scalar_int(prod, 2)
            basis[k] = evaluator.sub(term, ct)
    return basis


def evaluate_chebyshev_direct(evaluator: Evaluator, ct: Ciphertext,
                              coefficients: np.ndarray) -> Ciphertext:
    """Reference evaluation materialising every Chebyshev basis polynomial."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    degree = len(coefficients) - 1
    basis = _chebyshev_basis(evaluator, ct, degree) if degree >= 1 else {}
    deepest = min((b.level for b in basis.values()), default=ct.level)
    target_level = deepest - 1
    result: Ciphertext | None = None
    for k in range(1, degree + 1):
        if abs(coefficients[k]) < 1e-12:
            continue
        term = evaluator.multiply_scalar(basis[k], float(coefficients[k]))
        term = evaluator.adjust(term, target_level) if term.level > target_level else term
        result = term if result is None else evaluator.add(result, term)
    if result is None:
        result = evaluator.adjust(ct, target_level)
        result = evaluator.multiply_scalar(result, 0.0, rescale=False)
        result = evaluator.rescale(result) if result.level >= 1 else result
    result = evaluator.add_scalar(result, float(coefficients[0]))
    return result


def chebyshev_divide(coefficients: np.ndarray, divisor_degree: int) -> tuple[np.ndarray, np.ndarray]:
    """Divide a Chebyshev-basis polynomial by ``T_n`` (long division).

    Returns ``(quotient, remainder)`` with
    ``f = quotient * T_n + remainder`` and ``deg(remainder) < n``, using the
    product rule ``T_a * T_b = (T_{a+b} + T_{|a-b|}) / 2``.  This is the
    ``LongDivisionChebyshev`` step of the Paterson-Stockmeyer algorithm.
    """
    n = divisor_degree
    f = np.array(coefficients, dtype=np.float64)
    degree = len(f) - 1
    if degree < n:
        return np.zeros(1), f
    quotient = np.zeros(degree - n + 1, dtype=np.float64)
    for i in range(degree, n - 1, -1):
        coeff = f[i]
        if coeff == 0.0:
            continue
        j = i - n
        if j == 0:
            quotient[0] += coeff
            f[i] -= coeff
        else:
            quotient[j] += 2.0 * coeff
            f[i] -= coeff
            f[abs(i - 2 * n)] -= coeff
    remainder = f[:n]
    return quotient, remainder


def evaluate_chebyshev(evaluator: Evaluator, ct: Ciphertext,
                       coefficients: np.ndarray) -> Ciphertext:
    """BSGS + Paterson-Stockmeyer evaluation of a Chebyshev series.

    The baby steps ``T_1 ... T_k`` (``k ≈ sqrt(d)``) and the giant steps
    ``T_k, T_{2k}, T_{4k}, ...`` are computed once; the series is then
    recursively split with :func:`chebyshev_divide` so that only
    ``O(sqrt(d) + log d)`` ciphertext multiplications are needed instead of
    ``O(d)`` -- the optimisation FIDESlib adopts from [39]/[37] for
    ApproxModEval.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    degree = len(coefficients) - 1
    if degree <= 2:
        return evaluate_chebyshev_direct(evaluator, ct, coefficients)

    k = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
    splits = 0
    while k * (1 << splits) <= degree:
        splits += 1

    baby = _chebyshev_basis(evaluator, ct, k)
    baby_level = min(b.level for b in baby.values())

    giants: dict[int, Ciphertext] = {k: baby[k]}
    power = k
    for _ in range(1, splits):
        giants[2 * power] = double_angle(evaluator, giants[power], 1)
        power *= 2

    def eval_small(block: np.ndarray) -> Ciphertext | None:
        """Linear combination of baby-step polynomials (degree < k)."""
        target_level = baby_level - 1
        result: Ciphertext | None = None
        for idx in range(1, len(block)):
            if abs(block[idx]) < 1e-12:
                continue
            term = evaluator.multiply_scalar(baby[idx], float(block[idx]))
            if term.level > target_level:
                term = evaluator.adjust(term, target_level)
            result = term if result is None else evaluator.add(result, term)
        if abs(block[0]) > 1e-12:
            if result is None:
                zero = evaluator.multiply_scalar(baby[1], 0.0)
                if zero.level > target_level:
                    zero = evaluator.adjust(zero, target_level)
                result = zero
            result = evaluator.add_scalar(result, float(block[0]))
        return result

    def eval_recursive(block: np.ndarray, level_budget: int) -> Ciphertext | None:
        block = np.trim_zeros(np.asarray(block, dtype=np.float64), trim="b")
        if len(block) == 0:
            return None
        if len(block) - 1 < k:
            return eval_small(block)
        half = k * (1 << (level_budget - 1))
        quotient, remainder = chebyshev_divide(block, half)
        q_ct = eval_recursive(quotient, level_budget - 1)
        r_ct = eval_recursive(remainder, level_budget - 1)
        if q_ct is None:
            return r_ct
        combined = evaluator.multiply(q_ct, giants[half])
        if r_ct is None:
            return combined
        return evaluator.add(combined, r_ct)

    result = eval_recursive(coefficients, splits)
    assert result is not None
    return result


def double_angle(evaluator: Evaluator, ct: Ciphertext, iterations: int) -> Ciphertext:
    """Apply ``cos(2x) = 2cos(x)^2 - 1`` ``iterations`` times (Han-Ki [37])."""
    result = ct
    for _ in range(iterations):
        squared = evaluator.square(result)
        doubled = evaluator.multiply_scalar_int(squared, 2)
        result = evaluator.add_scalar(doubled, -1.0)
    return result


__all__ = [
    "chebyshev_coefficients",
    "chebyshev_series_value",
    "evaluate_chebyshev",
    "evaluate_chebyshev_direct",
    "double_angle",
]
