"""Encoding, encryption and decryption (the client-side reference path).

In the paper these operations run inside OpenFHE on the CPU; FIDESlib only
receives the resulting ciphertexts through the adapter layer.  The
reference implementation here plays the OpenFHE role: it is used by
:mod:`repro.openfhe.client` and by every integration test that checks the
server-side GPU-style operations against freshly decrypted results.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.ckks.keys import KeyGenerator, PublicKey, SecretKey
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


def encode(
    context: Context,
    values,
    *,
    scale: float | None = None,
    limb_count: int | None = None,
    fmt: LimbFormat = LimbFormat.EVALUATION,
) -> Plaintext:
    """Encode a message vector into a :class:`Plaintext`.

    Parameters
    ----------
    values:
        Real or complex message values (at most ``N/2`` of them).
    scale:
        Encoding scale; defaults to the context's ``Δ``.
    limb_count:
        Number of RNS limbs to encode over (defaults to all of them).  A
        plaintext can only operate with ciphertexts having at most this
        many limbs.
    fmt:
        Representation of the resulting polynomial; server-side operations
        expect evaluation format.
    """
    scale = context.scale if scale is None else float(scale)
    limb_count = len(context.moduli) if limb_count is None else limb_count
    values = np.atleast_1d(np.asarray(values))
    coefficients = context.encoder.encode(values, scale)
    poly = RNSPoly.from_int_coefficients(
        context.ring_degree, context.moduli_at(limb_count), coefficients, fmt=fmt
    )
    return Plaintext(poly=poly, scale=scale, slots=context.slots,
                     encoded_length=len(values))


def decode(context: Context, plaintext: Plaintext, length: int | None = None) -> np.ndarray:
    """Decode a :class:`Plaintext` back into complex message values."""
    coefficients = plaintext.poly.to_int_coefficients(centered=True)
    if length is None:
        length = plaintext.encoded_length
    return context.encoder.decode(coefficients, plaintext.scale, length)


class Encryptor:
    """Public-key (or secret-key) RLWE encryption."""

    def __init__(self, context: Context, public_key: PublicKey, seed: int | None = None) -> None:
        self.context = context
        self.public_key = public_key
        self._keygen = KeyGenerator(context, seed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt an encoded plaintext under the public key."""
        ctx = self.context
        limb_count = plaintext.limb_count
        moduli = ctx.moduli_at(limb_count)
        pk_b = self.public_key.b.keep_limbs(limb_count)
        pk_a = self.public_key.a.keep_limbs(limb_count)
        v = RNSPoly.from_int_coefficients(
            ctx.ring_degree, moduli, self._keygen.sample_ternary(),
            fmt=LimbFormat.EVALUATION,
        )
        e0 = RNSPoly.from_int_coefficients(
            ctx.ring_degree, moduli, self._keygen.sample_error(),
            fmt=LimbFormat.EVALUATION,
        )
        e1 = RNSPoly.from_int_coefficients(
            ctx.ring_degree, moduli, self._keygen.sample_error(),
            fmt=LimbFormat.EVALUATION,
        )
        message = plaintext.poly if plaintext.poly.fmt is LimbFormat.EVALUATION \
            else plaintext.poly.to_evaluation()
        c0 = pk_b.multiply(v).add(e0).add(message)
        c1 = pk_a.multiply(v).add(e1)
        return Ciphertext(
            c0=c0,
            c1=c1,
            scale=plaintext.scale,
            slots=plaintext.slots,
            noise_bits=float(self.context.params.error_std),
            encoded_length=plaintext.encoded_length,
        )

    def encrypt_values(self, values, *, scale: float | None = None,
                       limb_count: int | None = None) -> Ciphertext:
        """Encode and encrypt in one call."""
        plaintext = encode(self.context, values, scale=scale, limb_count=limb_count)
        return self.encrypt(plaintext)


class SymmetricEncryptor:
    """Secret-key encryption (used for key-material-style encryptions)."""

    def __init__(self, context: Context, secret_key: SecretKey, seed: int | None = None) -> None:
        self.context = context
        self.secret_key = secret_key
        self._keygen = KeyGenerator(context, seed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt an encoded plaintext under the secret key."""
        ctx = self.context
        limb_count = plaintext.limb_count
        moduli = ctx.moduli_at(limb_count)
        a = self._keygen.sample_uniform_poly(moduli)
        e = RNSPoly.from_int_coefficients(
            ctx.ring_degree, moduli, self._keygen.sample_error(),
            fmt=LimbFormat.EVALUATION,
        )
        s = self.secret_key.restricted(limb_count)
        message = plaintext.poly if plaintext.poly.fmt is LimbFormat.EVALUATION \
            else plaintext.poly.to_evaluation()
        c0 = a.multiply(s).negate().add(e).add(message)
        return Ciphertext(
            c0=c0,
            c1=a,
            scale=plaintext.scale,
            slots=plaintext.slots,
            noise_bits=float(self.context.params.error_std),
            encoded_length=plaintext.encoded_length,
        )


class Decryptor:
    """Secret-key decryption and decoding."""

    def __init__(self, context: Context, secret_key: SecretKey) -> None:
        self.context = context
        self.secret_key = secret_key

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Decrypt a ciphertext into an encoded plaintext.

        Ciphertexts normally arrive in evaluation format already; the
        conversion (one stacked NTT over the whole limb stack) only runs
        when needed, and ``add``/``multiply`` never mutate their operands,
        so no defensive copies are taken.
        """
        limb_count = ciphertext.limb_count
        s = self.secret_key.restricted(limb_count)
        c0 = ciphertext.c0 if ciphertext.c0.fmt is LimbFormat.EVALUATION \
            else ciphertext.c0.to_evaluation()
        c1 = ciphertext.c1 if ciphertext.c1.fmt is LimbFormat.EVALUATION \
            else ciphertext.c1.to_evaluation()
        poly = c0.add(c1.multiply(s))
        return Plaintext(
            poly=poly,
            scale=ciphertext.scale,
            slots=ciphertext.slots,
            encoded_length=ciphertext.encoded_length,
        )

    def decrypt_values(self, ciphertext: Ciphertext, length: int | None = None) -> np.ndarray:
        """Decrypt and decode in one call."""
        plaintext = self.decrypt(ciphertext)
        return decode(self.context, plaintext, length)


__all__ = [
    "encode",
    "decode",
    "Encryptor",
    "SymmetricEncryptor",
    "Decryptor",
]
