"""CKKS parameter sets.

The paper parameterises every experiment by ``[N, L, Δ, dnum]`` (Table II):
ring degree, multiplicative depth, scaling-factor bits and the number of
hybrid-key-switching digits.  :class:`CKKSParameters` carries those values
plus the derived quantities (moduli chain layout, special primes, secret
key density) and validates them.  :data:`PARAMETER_SETS` names the sets
used throughout the evaluation section, including the Figure 8 sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CKKSParameters:
    """Static parameters of a CKKS crypto-context.

    Parameters
    ----------
    ring_degree:
        Polynomial degree bound ``N`` (power of two).  The number of
        message slots is ``N / 2``.
    mult_depth:
        Multiplicative depth ``L`` before bootstrapping is required; the
        ciphertext modulus has ``L + 1`` limbs ``q_0 ... q_L``.
    scale_bits:
        log2 of the encoding scale ``Δ``; rescaling primes are chosen as
        close to ``2**scale_bits`` as possible.
    first_mod_bits:
        Bit size of ``q_0`` (larger than ``Δ`` so the message plus noise
        fits at the last level).
    dnum:
        Number of digits used by hybrid key switching; ``P`` consists of
        ``ceil((L + 1) / dnum)`` extension limbs.
    secret_hamming_weight:
        Number of non-zero coefficients of the ternary secret key.  Sparse
        secrets keep the bootstrapping integer bound ``K`` small (the
        sparse-secret encapsulation of [43]).
    limb_batch:
        The limb-batching parameter of §III-F.1 (how many limbs each
        simulated kernel processes); purely a performance knob.
    security_bits:
        Claimed security level used only for reporting; the functional
        Python backend is run far below 128-bit-secure sizes.
    """

    ring_degree: int
    mult_depth: int
    scale_bits: int
    dnum: int = 3
    first_mod_bits: int | None = None
    special_mod_bits: int | None = None
    secret_hamming_weight: int = 64
    error_std: float = 3.2
    limb_batch: int = 2
    security_bits: int = 128
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        n = self.ring_degree
        if n < 8 or n & (n - 1):
            raise ValueError(f"ring_degree must be a power of two >= 8, got {n}")
        if self.mult_depth < 1:
            raise ValueError("mult_depth must be at least 1")
        if not 10 <= self.scale_bits <= 60:
            raise ValueError("scale_bits must lie in [10, 60]")
        if self.dnum < 1:
            raise ValueError("dnum must be at least 1")
        if self.dnum > self.mult_depth + 1:
            raise ValueError("dnum cannot exceed the number of limbs (L + 1)")
        if self.first_mod_bits is None:
            object.__setattr__(
                self, "first_mod_bits", min(self.scale_bits + 2, 60)
            )
        if self.special_mod_bits is None:
            object.__setattr__(
                self, "special_mod_bits", self.first_mod_bits
            )
        if self.secret_hamming_weight < 1 or self.secret_hamming_weight > n:
            raise ValueError("secret_hamming_weight must lie in [1, N]")
        if self.limb_batch < 1:
            raise ValueError("limb_batch must be at least 1")

    # -- derived quantities --------------------------------------------------

    @property
    def slots(self) -> int:
        """Maximum number of complex message slots (``N / 2``)."""
        return self.ring_degree // 2

    @property
    def scale(self) -> float:
        """The encoding scaling factor ``Δ``."""
        return float(2 ** self.scale_bits)

    @property
    def limb_count(self) -> int:
        """Number of ciphertext limbs at the top level (``L + 1``)."""
        return self.mult_depth + 1

    @property
    def digit_size(self) -> int:
        """Limbs per hybrid-key-switching digit (``alpha``)."""
        return math.ceil(self.limb_count / self.dnum)

    @property
    def special_limb_count(self) -> int:
        """Number of extension limbs in ``P`` (equal to the digit size)."""
        return self.digit_size

    @property
    def log_q(self) -> int:
        """Approximate bit size of the ciphertext modulus ``Q``."""
        return self.first_mod_bits + self.mult_depth * self.scale_bits

    @property
    def log_qp(self) -> int:
        """Approximate bit size of the extended modulus ``Q * P``."""
        return self.log_q + self.special_limb_count * self.special_mod_bits

    def key_switching_key_bytes(self, element_bytes: int = 8) -> int:
        """Approximate size of one key-switching key (paper §III-F.1)."""
        limbs = self.limb_count + self.special_limb_count
        return 2 * self.dnum * limbs * self.ring_degree * element_bytes

    def ciphertext_bytes(self, limbs: int | None = None, element_bytes: int = 8) -> int:
        """Approximate size of a ciphertext with ``limbs`` limbs."""
        if limbs is None:
            limbs = self.limb_count
        return 2 * limbs * self.ring_degree * element_bytes

    def describe(self) -> str:
        """Return the ``[logN, L, Δ, dnum]`` shorthand used by the paper."""
        log_n = self.ring_degree.bit_length() - 1
        return f"[{log_n}, {self.mult_depth}, {self.scale_bits}, {self.dnum}]"

    def with_overrides(self, **kwargs) -> "CKKSParameters":
        """Return a copy with selected fields replaced."""
        values = {
            "ring_degree": self.ring_degree,
            "mult_depth": self.mult_depth,
            "scale_bits": self.scale_bits,
            "dnum": self.dnum,
            "first_mod_bits": self.first_mod_bits,
            "special_mod_bits": self.special_mod_bits,
            "secret_hamming_weight": self.secret_hamming_weight,
            "error_std": self.error_std,
            "limb_batch": self.limb_batch,
            "security_bits": self.security_bits,
            "label": self.label,
        }
        values.update(kwargs)
        return CKKSParameters(**values)


def paper_parameter_set(log_n: int, depth: int, scale_bits: int, dnum: int,
                        label: str = "") -> CKKSParameters:
    """Construct a paper-style ``[logN, L, Δ, dnum]`` parameter set.

    These sets use the paper's word-sized (59-bit) scaling factors and are
    intended for the performance model; they are far too large to run
    through the functional Python backend.
    """
    return CKKSParameters(
        ring_degree=1 << log_n,
        mult_depth=depth,
        scale_bits=scale_bits,
        dnum=dnum,
        first_mod_bits=60,
        special_mod_bits=60,
        label=label or f"[{log_n}, {depth}, {scale_bits}, {dnum}]",
    )


#: Named parameter sets.
#:
#: * ``paper-default`` -- the evaluation default [2^16, 29, 59, 4].
#: * ``paper-lr`` -- the logistic-regression set [2^16, 26, 59, 4].
#: * ``fig8-*`` -- the Figure 8 parameter sweep.
#: * ``toy`` / ``toy-deep`` / ``toy-bootstrap`` -- reduced sets sized for the
#:   functional Python backend (fast NumPy arithmetic, < 2^31 primes).
PARAMETER_SETS: dict[str, CKKSParameters] = {
    "paper-default": paper_parameter_set(16, 29, 59, 4, "paper-default"),
    "paper-lr": paper_parameter_set(16, 26, 59, 4, "paper-lr"),
    "fig8-13-5-36-2": paper_parameter_set(13, 5, 36, 2),
    "fig8-14-9-41-3": paper_parameter_set(14, 9, 41, 3),
    "fig8-15-15-50-3": paper_parameter_set(15, 15, 50, 3),
    "fig8-16-29-59-4": paper_parameter_set(16, 29, 59, 4),
    "fig8-17-44-59-4": paper_parameter_set(17, 44, 59, 4),
    "toy": CKKSParameters(
        ring_degree=1 << 10,
        mult_depth=6,
        scale_bits=28,
        dnum=3,
        first_mod_bits=30,
        secret_hamming_weight=64,
        label="toy",
    ),
    "toy-deep": CKKSParameters(
        ring_degree=1 << 11,
        mult_depth=12,
        scale_bits=28,
        dnum=4,
        first_mod_bits=30,
        secret_hamming_weight=64,
        label="toy-deep",
    ),
    "toy-bootstrap": CKKSParameters(
        ring_degree=1 << 9,
        mult_depth=16,
        scale_bits=27,
        dnum=4,
        first_mod_bits=31,
        secret_hamming_weight=4,
        label="toy-bootstrap",
    ),
}


__all__ = ["CKKSParameters", "PARAMETER_SETS", "paper_parameter_set"]
