"""The CKKS scheme (paper namespace ``FIDESlib::CKKS``).

This subpackage implements every CKKS primitive of Table I plus the
internal routines of Figure 1: encoding, encryption, homomorphic
arithmetic, hybrid key switching (ModUp/ModDown), rotations with hoisting,
BSGS linear transforms, Chebyshev evaluation and full bootstrapping.
"""

from repro.ckks.params import CKKSParameters, PARAMETER_SETS
from repro.ckks.context import Context
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.keys import KeyGenerator, KeySet, KeySwitchingKey
from repro.ckks.encryption import Encryptor, Decryptor
from repro.ckks.evaluator import Evaluator

__all__ = [
    "CKKSParameters",
    "PARAMETER_SETS",
    "Context",
    "Ciphertext",
    "Plaintext",
    "KeyGenerator",
    "KeySet",
    "KeySwitchingKey",
    "Encryptor",
    "Decryptor",
    "Evaluator",
]
