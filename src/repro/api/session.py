"""``CKKSSession``: the one-object entry point to the library.

The paper's usability pitch (§III-E, Table I) is a single ``Context``
object plus composable primitives.  ``CKKSSession`` bundles the whole
client/server wiring -- parameters, context, key material,
encryptor/decryptor and the server-side evaluator -- behind two
constructors::

    session = CKKSSession.create("toy", rotations=[1, 2], conjugation=True)
    ct = session.encrypt([0.25, -0.5, 1.0])
    result = 2.0 * (ct * ct) + 1.0            # CipherVector operators
    values = session.decrypt(result, 3)

The client/server split of the paper is preserved: ``create`` builds an
:class:`~repro.openfhe.client.OpenFHEClient` internally and hands only the
secret-stripped key set to the server-side evaluator, while
:meth:`CKKSSession.from_client` adopts an existing client.  Sessions also
wire the FIDESlib-style singleton context
(:func:`~repro.ckks.context.set_default_context`): creating a session
registers its context as the process default, and using the session as a
context manager restores the previous default on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.api.backend import CostModelBackend, FunctionalBackend, TracingBackend
from repro.api.batch import CipherBatch
from repro.api.vector import CipherVector
from repro.core.dispatch import KernelTrace, get_dispatcher
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context, set_default_context
from repro.ckks.encryption import encode as encode_plaintext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeySet
from repro.ckks.params import CKKSParameters, PARAMETER_SETS
from repro.openfhe.adapter import RawCiphertext, export_ciphertext, import_ciphertext
from repro.openfhe.client import OpenFHEClient
from repro.perf.costmodel import CKKSOperationCosts

#: Accepted spellings of the power-of-two rotation autofill spec.
_POWER_OF_TWO_SPECS = frozenset({"power-of-two", "power_of_two", "pow2"})


def resolve_parameters(params_or_preset: CKKSParameters | str) -> CKKSParameters:
    """Resolve a parameter set from an object or a preset name."""
    if isinstance(params_or_preset, CKKSParameters):
        return params_or_preset
    if isinstance(params_or_preset, str):
        try:
            return PARAMETER_SETS[params_or_preset]
        except KeyError:
            presets = ", ".join(sorted(PARAMETER_SETS))
            raise ValueError(
                f"unknown parameter preset {params_or_preset!r}; "
                f"available presets: {presets}"
            ) from None
    raise TypeError(
        f"expected CKKSParameters or a preset name, got {type(params_or_preset).__name__}"
    )


def resolve_rotations(spec, slots: int) -> list[int]:
    """Expand a rotation-key spec into a sorted list of step counts.

    ``spec`` may be ``None``, an iterable of integers, the string
    ``"power-of-two"`` (autofill of every ``±2^i`` below ``slots``), or an
    iterable mixing both.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        spec = [spec]
    steps: set[int] = set()
    for item in spec:
        if isinstance(item, str):
            if item not in _POWER_OF_TWO_SPECS:
                raise ValueError(
                    f"unknown rotation spec {item!r}; expected an integer or "
                    f"'power-of-two'"
                )
            power = 1
            while power < slots:
                steps.add(power)
                steps.add(-power)
                power <<= 1
        else:
            step = int(item)
            if step != 0:
                steps.add(step)
    return sorted(steps)


class CKKSSession:
    """A bundled CKKS deployment: context, keys, client and evaluator.

    Most users go through :meth:`create` or :meth:`from_client`; the
    direct constructor accepts pre-built components (the tests use it to
    share expensive session-scoped key material).
    """

    def __init__(
        self,
        *,
        context: Context,
        evaluator: Evaluator,
        keys: KeySet | None = None,
        encryptor=None,
        decryptor=None,
        client: OpenFHEClient | None = None,
        register_default: bool = True,
    ) -> None:
        self.context = context
        self.evaluator = evaluator
        self.keys = keys if keys is not None else evaluator.keys
        self.client = client
        self._encryptor = encryptor if encryptor is not None else (
            client.encryptor if client is not None else None
        )
        self._decryptor = decryptor if decryptor is not None else (
            client.decryptor if client is not None else None
        )
        self.backend = FunctionalBackend(evaluator, encryptor=self._encryptor)
        #: Numeric stack backend the context's moduli select (``uint64``,
        #: ``dword`` or ``object``) -- surfaced so deployments can assert
        #: they stayed on a vectorized path.
        self.numeric_backend = context.numeric_backend
        self._previous_default: Context | None = None
        self._active = False
        if register_default:
            self._previous_default = set_default_context(context)
            self._active = True

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        params_or_preset: CKKSParameters | str = "toy",
        *,
        rotations=(),
        conjugation: bool = False,
        seed: int | None = None,
        register_default: bool = True,
    ) -> "CKKSSession":
        """Create a full session: parameters, client, keys and evaluator.

        ``rotations`` accepts explicit step counts or the
        ``"power-of-two"`` autofill (see :func:`resolve_rotations`); the
        corresponding rotation keys are generated up front so
        ``CipherVector`` rotations cannot hit a missing-key error later.
        """
        params = resolve_parameters(params_or_preset)
        client = OpenFHEClient(params, seed=seed)
        steps = resolve_rotations(rotations, params.slots)
        server_keys = client.key_gen(steps, conjugation=conjugation)
        evaluator = Evaluator(client.context, server_keys)
        return cls(
            context=client.context,
            evaluator=evaluator,
            keys=server_keys,
            client=client,
            register_default=register_default,
        )

    @classmethod
    def from_client(
        cls,
        client: OpenFHEClient,
        *,
        rotations=(),
        conjugation: bool = False,
        register_default: bool = True,
    ) -> "CKKSSession":
        """Adopt an existing client, preserving the paper's client/server split.

        If the client has not generated keys yet, ``key_gen`` runs with
        the requested rotations; otherwise any missing rotation (and
        conjugation) keys are generated on top of the existing material.
        """
        steps = resolve_rotations(rotations, client.params.slots)
        if not client.has_keys:
            server_keys = client.key_gen(steps, conjugation=conjugation)
        else:
            server_keys = client.add_rotation_keys(steps) if steps else \
                client.keys.without_secret()
            if conjugation and server_keys.conjugation_key is None:
                server_keys = client.add_conjugation_key()
        evaluator = Evaluator(client.context, server_keys)
        return cls(
            context=client.context,
            evaluator=evaluator,
            keys=server_keys,
            client=client,
            register_default=register_default,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def params(self) -> CKKSParameters:
        """The session's CKKS parameter set."""
        return self.context.params

    @property
    def slots(self) -> int:
        """Number of message slots ``N/2``."""
        return self.context.slots

    @property
    def max_level(self) -> int:
        """Top multiplicative level ``L``."""
        return self.context.max_level

    # ------------------------------------------------------------------
    # encode / encrypt / decrypt / upload
    # ------------------------------------------------------------------

    def encrypt(self, values, *, scale: float | None = None,
                level: int | None = None) -> CipherVector:
        """Encode and encrypt values into an operator-ready handle."""
        return CipherVector(self.backend, self.backend.encrypt(values, scale=scale, level=level))

    def encrypt_batch(self, value_rows, *, scale: float | None = None,
                      level: int | None = None) -> CipherBatch:
        """Encrypt one vector per row and fuse them into a throughput-plane batch.

        The returned :class:`CipherBatch` evaluates all members with fused
        ``(B·L, N)`` kernels -- one launch per operation for the whole
        batch (see the README's throughput-plane section for when batching
        pays off and its ``B·L·N``-byte memory trade-off).
        """
        return CipherBatch(
            self.backend,
            self.backend.encrypt_batch(value_rows, scale=scale, level=level),
        )

    def batch(self, vectors) -> CipherBatch:
        """Fuse existing same-shape handles into a :class:`CipherBatch`.

        Accepts :class:`CipherVector` handles (or raw backend handles) that
        share one level, scale and shape; mixed-level input is rejected
        with a descriptive error.
        """
        handles = [
            v.handle if isinstance(v, CipherVector) else v for v in vectors
        ]
        return CipherBatch(self.backend, self.backend.batch_from(handles))

    def encode(self, values, *, like: CipherVector | Ciphertext | None = None,
               for_multiplication: bool = True, scale: float | None = None) -> Plaintext:
        """Encode values, optionally matched to a ciphertext's level/scale."""
        if like is not None:
            ct = like.handle if isinstance(like, CipherVector) else like
            return self.evaluator.encode_for(ct, values, for_multiplication=for_multiplication)
        return encode_plaintext(self.context, values, scale=scale)

    def decrypt(self, ciphertext, length: int | None = None) -> np.ndarray:
        """Decrypt a CipherVector, Ciphertext or RawCiphertext (client role)."""
        if self._decryptor is None:
            raise RuntimeError(
                "this session has no decryptor (server-side session); decrypt "
                "on the client that owns the secret key"
            )
        if isinstance(ciphertext, CipherVector):
            ciphertext = ciphertext.handle
        if isinstance(ciphertext, RawCiphertext):
            ciphertext = import_ciphertext(self.context, ciphertext)
        if not isinstance(ciphertext, Ciphertext):
            raise TypeError(
                f"cannot decrypt a {type(ciphertext).__name__}; cost-model "
                f"handles carry no message data"
            )
        return self._decryptor.decrypt_values(ciphertext, length)

    def upload(self, raw: RawCiphertext) -> CipherVector:
        """Import a raw adapter ciphertext into the server-side session."""
        return self.wrap(import_ciphertext(self.context, raw))

    def download(self, vector: CipherVector | Ciphertext) -> RawCiphertext:
        """Export a ciphertext through the adapter layer (for the client)."""
        ct = vector.handle if isinstance(vector, CipherVector) else vector
        return export_ciphertext(ct, parameter_tag=self.params.describe())

    def wrap(self, ciphertext: Ciphertext) -> CipherVector:
        """Wrap an existing server-side ciphertext in a CipherVector."""
        return CipherVector(self.backend, ciphertext)

    # ------------------------------------------------------------------
    # key management
    # ------------------------------------------------------------------

    def add_rotation_keys(self, rotations) -> None:
        """Generate additional rotation keys (requires the owning client)."""
        if self.client is None:
            raise RuntimeError(
                "this session was built without a client; generate rotation keys "
                "through the KeyGenerator that produced its key set"
            )
        steps = resolve_rotations(rotations, self.slots)
        refreshed = self.client.add_rotation_keys(steps)
        self.keys.rotation_keys.update(refreshed.rotation_keys)

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------

    def cost_backend(self, costs: CKKSOperationCosts | None = None,
                     *, check_keys: bool = True) -> CostModelBackend:
        """A cost-model twin of this session's functional backend.

        The returned backend tracks levels and scales against this
        session's real moduli chain, so a program replayed on it follows
        the exact trajectory of the functional backend, while accumulating
        an :class:`~repro.api.backend.CostLedger`.  With ``check_keys``
        (default) it also raises the same ``KeyError`` the evaluator would
        for rotations whose keys were never generated.
        """
        return CostModelBackend.from_context(
            self.context, costs=costs,
            key_inventory=self.keys if check_keys else None,
        )

    @contextmanager
    def trace(self, trace: KernelTrace | None = None, *,
              executable: bool = False,
              stage_launches: bool = False) -> Iterator[KernelTrace]:
        """Record the kernel stream of everything executed in the with-block.

        Yields a :class:`~repro.core.dispatch.KernelTrace` that fills with
        the kernels the data plane executes -- real shapes, operation
        scopes and dependency edges -- regardless of which handles or
        backends issue them::

            with session.trace() as trace:
                result = 2.0 * (ct * ct) + 1.0
            report = TraceCostModel(GPU_RTX_4090).price(trace)

        Execution is unchanged by recording (ciphertext outputs stay
        bit-identical).  Pass an existing trace to append to it.  With
        ``executable=True`` the trace captures replay thunks and buffer
        views, so it can be re-run through
        :class:`~repro.core.dispatch.TraceProgram` or optimized by
        :func:`repro.core.fusion.fuse_trace`.  ``stage_launches=True``
        additionally records transforms at per-stage launch granularity --
        the unfused GPU baseline the fusion pass collapses back into
        stage-fused mega-kernels.  For tracing scoped to a single backend
        rather than a code region, see
        :class:`~repro.api.backend.TracingBackend`.
        """
        with get_dispatcher().record(
            trace, executable=executable, stage_launches=stage_launches,
        ) as active:
            yield active

    def tracing_backend(self, trace: KernelTrace | None = None) -> TracingBackend:
        """A wrapper of this session's backend that records every operation."""
        return TracingBackend(self.backend, trace=trace)

    # ------------------------------------------------------------------
    # serving plane
    # ------------------------------------------------------------------

    def observability(self, *, enabled=True, registry=None, clock=None,
                      watch_default_pool=True):
        """The unified observability plane (:class:`repro.obs.Observability`).

        Returns a facade bundling a metrics registry, a span tracer, the
        per-scope rollup and the Perfetto export timelines.  Hand it to
        :meth:`server` to record the full request lifecycle::

            obs = session.observability()
            server = session.server(
                BatchingPolicy(max_batch_size=8),
                trace_costs=TraceCostModel(GPU_RTX_4090),
                observability=obs,
            )
            ...
            print(obs.to_prometheus())            # metrics dump
            print(obs.report().to_text())          # per-scope rollup
            obs.export_chrome_trace("trace.perfetto.json")

        ``enabled=False`` returns an inert facade (every hook early-outs;
        a server given one behaves exactly as one given no observability
        at all).  ``watch_default_pool`` (default) publishes the
        process-wide :data:`repro.core.memory.default_pool` accounting as
        ``memory_pool_*`` gauges.
        """
        from repro.core.memory import default_pool
        from repro.obs import Observability

        obs = Observability(enabled=enabled, registry=registry, clock=clock)
        if watch_default_pool:
            obs.watch_pool(default_pool)
        return obs

    def server(self, policy=None, *, backend=None, clock=None, metrics=None,
               trace_costs=None, cluster=None, shard_drains=False,
               admission=None, retry=None, fault_plan=None,
               observability=None):
        """A dynamic-batching server over this session (the serving plane).

        Returns a :class:`repro.serve.Server`: a shape-bucketed request
        queue that fuses compatible requests into ``(B·L, N)`` batches
        under a :class:`~repro.serve.policy.BatchingPolicy`, driven on a
        deterministic simulated clock::

            from repro.serve import BatchingPolicy, OpProgram

            server = session.server(BatchingPolicy(max_batch_size=8,
                                                   max_wait=2e-3))
            score = OpProgram.polynomial([1.0, 0.0, 2.0])   # 1 + 2x^2
            requests = [server.submit(score, session.encrypt(row))
                        for row in inputs]
            server.drain()                    # fuse + execute everything
            values = [session.decrypt(r.result(), n) for r in requests]

        ``backend`` overrides the session's functional backend (e.g.
        ``session.cost_backend()`` serves symbolically); ``trace_costs``
        (a :class:`~repro.perf.trace_model.TraceCostModel`) prices every
        drained batch's recorded kernel stream into the server metrics.
        ``cluster`` (a :class:`~repro.cluster.topology.ClusterTopology`)
        serves across a device cluster -- buckets are placed round-robin
        on devices and metrics report per-device utilisation; add
        ``shard_drains=True`` to member-shard every multi-request drain
        across all devices (execution stays bit-identical).

        The fault-tolerance knobs: ``admission`` (an
        :class:`~repro.serve.policy.AdmissionPolicy`) sheds overload with
        typed :class:`~repro.serve.errors.RequestRejected` responses;
        ``retry`` (a :class:`~repro.serve.policy.RetryPolicy`) bounds
        transient-failure retry with simulated-clock backoff; and
        ``fault_plan`` (a :class:`~repro.serve.faults.FaultPlan` or ready
        :class:`~repro.serve.faults.FaultInjector`) injects deterministic
        OOM windows, transient drain failures and device losses for chaos
        replay -- successful responses stay bit-identical throughout.
        ``observability`` (from :meth:`observability`) wires the unified
        observability plane: request-lifecycle spans, registry re-homing
        and -- with ``trace_costs`` -- per-scope rollups plus the
        Perfetto timeline export.
        """
        from repro.serve import Server

        return Server(
            backend if backend is not None else self.backend,
            policy, clock=clock, metrics=metrics, trace_costs=trace_costs,
            cluster=cluster, shard_drains=shard_drains,
            admission=admission, retry=retry, fault_plan=fault_plan,
            observability=observability,
        )

    # ------------------------------------------------------------------
    # lifecycle / default-context wiring
    # ------------------------------------------------------------------

    def __enter__(self) -> "CKKSSession":
        if not self._active:
            # Sessions built with register_default=True already captured the
            # previous default at construction; don't overwrite it with
            # ourselves here, or close() could never restore it.
            self._previous_default = set_default_context(self.context)
            self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Restore the previously registered default context."""
        if self._active:
            set_default_context(self._previous_default)
            self._previous_default = None
            self._active = False

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Context summary merged with the key inventory."""
        summary = self.context.describe()
        summary["keys"] = {
            "relinearization": self.keys.relinearization_key is not None,
            "rotation_steps": sorted(self.keys.rotation_keys),
            "conjugation": self.keys.conjugation_key is not None,
            "secret_available": self.client is not None or self.keys.secret_key is not None,
        }
        return summary


__all__ = ["CKKSSession", "resolve_parameters", "resolve_rotations"]
