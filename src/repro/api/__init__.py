"""High-level API: sessions, operator-overloaded handles, backend seam.

This package is the canonical way to use the library (the lower layers
stay available underneath):

* :class:`~repro.api.session.CKKSSession` -- one object bundling
  parameters, context, keys, encryptor/decryptor and the server-side
  evaluator, with the paper's client/server split preserved.
* :class:`~repro.api.vector.CipherVector` -- operator-overloaded
  ciphertext handles (``+ - * **2 << >>``) dispatching to
  HAdd/PtAdd/ScalarAdd/HMult/PtMult/ScalarMult/HSquare/HRotate by operand
  type.
* :class:`~repro.api.backend.EvaluationBackend` -- the pluggable seam:
  :class:`~repro.api.backend.FunctionalBackend` executes for real,
  :class:`~repro.api.backend.CostModelBackend` replays the same program
  symbolically against the GPU cost model, accumulating a
  :class:`~repro.api.backend.CostLedger`.
"""

from repro.api.backend import (
    CostLedger,
    CostModelBackend,
    EvaluationBackend,
    FunctionalBackend,
    SymbolicCipherBatch,
    SymbolicCiphertext,
    TracingBackend,
    as_backend,
)
from repro.api.batch import CipherBatch
from repro.api.session import CKKSSession, resolve_parameters, resolve_rotations
from repro.api.vector import CipherVector, as_vector

__all__ = [
    "CKKSSession",
    "CipherBatch",
    "CipherVector",
    "EvaluationBackend",
    "FunctionalBackend",
    "CostModelBackend",
    "CostLedger",
    "SymbolicCiphertext",
    "SymbolicCipherBatch",
    "TracingBackend",
    "as_backend",
    "as_vector",
    "resolve_parameters",
    "resolve_rotations",
]
