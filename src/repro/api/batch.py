"""``CipherBatch``: an operator-overloaded handle over a ciphertext batch.

The throughput-plane sibling of :class:`~repro.api.vector.CipherVector`:
one handle stands for ``B`` independent encrypted vectors walking the same
circuit, and every operator issues **one** batched backend operation
(fused ``(B·L, N)`` kernels on the functional backend) instead of ``B``
sequential ones::

    batch = session.encrypt_batch([req_0, req_1, ..., req_7])
    scored = 2.0 * (batch * batch) + 1.0      # one fused kernel stream
    for vec in scored.split():                # back to per-request handles
        ...

Operands broadcast across the batch: another :class:`CipherBatch`
(member-wise HAdd/HMult), a plaintext or raw value array (the same
plaintext against every member) or a real scalar.  Like
:class:`CipherVector`, the handle is backend-agnostic -- functional,
cost-model and tracing backends all implement the batched operation
surface of :class:`~repro.api.backend.EvaluationBackend`.
"""

from __future__ import annotations

import numbers
from typing import Sequence

import numpy as np

from repro.api.vector import CipherVector
from repro.ckks.ciphertext import Plaintext

_BATCH, _PLAIN, _SCALAR = "batch", "plaintext", "scalar"


class CipherBatch:
    """``B`` encrypted (or symbolic) vectors bound to one evaluation backend."""

    __array_ufunc__ = None
    __array_priority__ = 1000

    __slots__ = ("backend", "handle")

    def __init__(self, backend, handle) -> None:
        self.backend = backend
        self.handle = handle

    # -- metadata -----------------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Number of member ciphertexts fused into this handle."""
        return self.handle.batch_size

    @property
    def level(self) -> int:
        """Common remaining multiplicative depth of every member."""
        return self.handle.level

    @property
    def scale(self) -> float:
        """Common scaling factor of every member."""
        return self.handle.scale

    @property
    def slots(self) -> int:
        """Number of message slots per member."""
        return self.handle.slots

    @property
    def limb_count(self) -> int:
        """Per-member RNS limb count."""
        return self.handle.limb_count

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:
        return (
            f"CipherBatch(B={self.batch_size}, level={self.level}, "
            f"scale={self.scale:.6g}, slots={self.slots}, "
            f"backend={getattr(self.backend, 'name', '?')})"
        )

    # -- dispatch helpers ---------------------------------------------------

    def _wrap(self, handle) -> "CipherBatch":
        return CipherBatch(self.backend, handle)

    def _classify(self, other):
        if isinstance(other, CipherBatch):
            if other.backend is not self.backend:
                raise ValueError(
                    "cannot combine CipherBatches from different backends; "
                    "re-encrypt or re-wrap the operand on one backend first"
                )
            return _BATCH, other.handle
        if isinstance(other, Plaintext):
            return _PLAIN, other
        if isinstance(other, bool):
            return None
        if isinstance(other, numbers.Real):
            return _SCALAR, float(other)
        if isinstance(other, (list, tuple, np.ndarray)):
            return _PLAIN, np.asarray(other)
        return None

    # -- additions ----------------------------------------------------------

    def __add__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _BATCH:
            return self._wrap(self.backend.batch_add(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.batch_add_plain(self.handle, value))
        return self._wrap(self.backend.batch_add_scalar(self.handle, value))

    __radd__ = __add__

    def __sub__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _BATCH:
            return self._wrap(self.backend.batch_sub(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.batch_sub_plain(self.handle, value))
        return self._wrap(self.backend.batch_add_scalar(self.handle, -value))

    def __rsub__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        negated = self.backend.batch_negate(self.handle)
        if tag == _BATCH:  # pragma: no cover - batch - batch resolves via __sub__
            return self._wrap(self.backend.batch_add(negated, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.batch_add_plain(negated, value))
        return self._wrap(self.backend.batch_add_scalar(negated, value))

    def __neg__(self):
        return self._wrap(self.backend.batch_negate(self.handle))

    # -- multiplications ----------------------------------------------------

    def __mul__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _BATCH:
            return self._wrap(self.backend.batch_multiply(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.batch_multiply_plain(self.handle, value))
        return self._wrap(self.backend.batch_multiply_scalar(self.handle, value))

    __rmul__ = __mul__

    def __pow__(self, exponent):
        if not isinstance(exponent, numbers.Integral) or exponent < 1:
            raise ValueError(
                f"only positive integer powers are supported, got {exponent!r}"
            )
        exponent = int(exponent)
        if exponent == 1:
            return self
        result: CipherBatch | None = None
        base = self
        while exponent:
            if exponent & 1:
                result = base if result is None else result * base
            exponent >>= 1
            if exponent:
                base = base.square()
        return result

    def square(self) -> "CipherBatch":
        """Batched ``HSquare`` of every member."""
        return self._wrap(self.backend.batch_square(self.handle))

    # -- rotations ----------------------------------------------------------

    def __lshift__(self, steps):
        if not isinstance(steps, numbers.Integral):
            return NotImplemented
        return self.rotate(int(steps))

    def __rshift__(self, steps):
        if not isinstance(steps, numbers.Integral):
            return NotImplemented
        return self.rotate(-int(steps))

    def rotate(self, steps: int) -> "CipherBatch":
        """Rotate every member left by ``steps`` slots (batched ``HRotate``)."""
        return self._wrap(self.backend.batch_rotate(self.handle, steps))

    def rotate_many(self, steps: Sequence[int]) -> dict[int, "CipherBatch"]:
        """Rotate every member by many step counts, sharing one batched ModUp."""
        rotated = self.backend.batch_hoisted_rotations(self.handle, steps)
        return {step: self._wrap(handle) for step, handle in rotated.items()}

    def conj(self) -> "CipherBatch":
        """Conjugate every member's message vector (batched ``HConjugate``)."""
        return self._wrap(self.backend.batch_conjugate(self.handle))

    # -- level and scale management -----------------------------------------

    def rescale(self) -> "CipherBatch":
        """Drop every member's last limb in one fused pass."""
        return self._wrap(self.backend.batch_rescale(self.handle))

    def at_level(self, level: int) -> "CipherBatch":
        """Return a copy with every member adjusted down to ``level``.

        The batched twin of :meth:`CipherVector.at_level` (one fused
        mod-reduce + scalar-mult + rescale for the whole batch), letting a
        serving program align operand levels without unfusing.
        """
        return self._wrap(self.backend.batch_at_level(self.handle, level))

    # -- batch management ---------------------------------------------------

    def split(self) -> list[CipherVector]:
        """Unfuse into per-member :class:`CipherVector` handles.

        On the functional backend the members are zero-copy views of the
        fused buffers; they stay valid as long as this batch (or a copy of
        the member) is alive.
        """
        return [
            CipherVector(self.backend, handle)
            for handle in self.backend.batch_split(self.handle)
        ]


__all__ = ["CipherBatch"]
