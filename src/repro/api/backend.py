"""Pluggable evaluation backends behind the high-level API.

The reproduction's core loop runs every workload twice: once functionally
(real RNS polynomials, verified against decryption) and once on the GPU
execution model (kernel-level costs at paper-scale parameters).  The
:class:`EvaluationBackend` protocol is the seam that makes this a single
program: :class:`~repro.api.vector.CipherVector` dispatches each operator
to whichever backend its handle belongs to.

* :class:`FunctionalBackend` wraps :class:`~repro.ckks.evaluator.Evaluator`
  and executes for real; its handles are
  :class:`~repro.ckks.ciphertext.Ciphertext` objects.
* :class:`CostModelBackend` wraps :mod:`repro.perf.costmodel`; its handles
  are :class:`SymbolicCiphertext` objects that track the level and scale
  trajectory exactly as the evaluator would (including the scale-ladder
  bookkeeping and the error paths), while every operation appends its
  kernel decomposition to a :class:`CostLedger`.

Both backends accept plaintext operands either pre-encoded
(:class:`~repro.ckks.ciphertext.Plaintext`) or as raw value arrays, which
they encode at the ladder-restoring scale the evaluator uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.ckks.batch import BatchEvaluator, CiphertextBatch
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.ckks.encryption import Encryptor
from repro.ckks.evaluator import Evaluator, scales_match
from repro.ckks.keys import KeySet
from repro.ckks.params import CKKSParameters
from repro.core.dispatch import KernelTrace, get_dispatcher
from repro.gpu.kernel import Kernel
from repro.perf.costmodel import CKKSOperationCosts, OperationCost


@runtime_checkable
class EvaluationBackend(Protocol):
    """The operation surface a :class:`~repro.api.vector.CipherVector` needs.

    Handles are opaque to the caller; both backends expose ``level``,
    ``scale``, ``slots`` and ``limb_count`` attributes on them so the
    high-level API can report ciphertext metadata without knowing which
    backend produced it.
    """

    params: CKKSParameters

    def encrypt(self, values, *, scale: float | None = None, level: int | None = None): ...

    def add(self, a, b): ...
    def sub(self, a, b): ...
    def negate(self, a): ...
    def add_plain(self, a, values): ...
    def sub_plain(self, a, values): ...
    def add_scalar(self, a, value: float): ...

    def multiply(self, a, b): ...
    def square(self, a): ...
    def multiply_plain(self, a, values, *, rescale: bool = True): ...
    def multiply_scalar(self, a, value: float): ...

    def rotate(self, a, steps: int): ...
    def conjugate(self, a): ...
    def hoisted_rotations(self, a, steps: Sequence[int]) -> dict: ...

    def rescale(self, a): ...
    def at_level(self, a, level: int): ...
    def dot_product_plain(self, handles: Sequence, value_rows: Sequence): ...

    # -- throughput plane (cross-ciphertext batching) -----------------------

    def encrypt_batch(self, value_rows: Sequence, *, scale: float | None = None,
                      level: int | None = None): ...
    def batch_from(self, handles: Sequence): ...
    def batch_split(self, batch) -> list: ...

    def batch_add(self, a, b): ...
    def batch_sub(self, a, b): ...
    def batch_negate(self, a): ...
    def batch_add_plain(self, a, values): ...
    def batch_sub_plain(self, a, values): ...
    def batch_add_scalar(self, a, value: float): ...
    def batch_multiply(self, a, b): ...
    def batch_square(self, a): ...
    def batch_multiply_plain(self, a, values, *, rescale: bool = True): ...
    def batch_multiply_scalar(self, a, value: float): ...
    def batch_rescale(self, a): ...
    def batch_at_level(self, a, level: int): ...
    def batch_rotate(self, a, steps: int): ...
    def batch_conjugate(self, a): ...
    def batch_hoisted_rotations(self, a, steps: Sequence[int]) -> dict: ...

    def describe(self) -> dict: ...


def as_backend(obj) -> EvaluationBackend:
    """Normalise a backend-ish object (session or backend) to a backend.

    Lets the application layer accept either a
    :class:`~repro.api.session.CKKSSession` or a bare backend.
    """
    backend = getattr(obj, "backend", obj)
    if not isinstance(backend, EvaluationBackend):
        raise TypeError(
            f"{type(obj).__name__} is neither an EvaluationBackend nor an "
            f"object exposing one via a .backend attribute"
        )
    return backend


# ----------------------------------------------------------------------
# functional backend
# ----------------------------------------------------------------------


class FunctionalBackend:
    """Executes operations for real through an :class:`Evaluator`.

    Handles are :class:`Ciphertext` objects.  An optional encryptor makes
    the backend a source of fresh ciphertexts so whole applications (the
    :mod:`repro.apps` workloads) can be written against the backend alone.
    """

    name = "functional"

    def __init__(self, evaluator: Evaluator, *, encryptor: Encryptor | None = None) -> None:
        self.evaluator = evaluator
        self.context: Context = evaluator.context
        self.params: CKKSParameters = self.context.params
        self.encryptor = encryptor
        self._batch_evaluator: BatchEvaluator | None = None

    # -- ciphertext sources -------------------------------------------------

    def encrypt(self, values, *, scale: float | None = None,
                level: int | None = None) -> Ciphertext:
        """Encode and encrypt fresh values (requires an encryptor)."""
        if self.encryptor is None:
            raise RuntimeError(
                "this FunctionalBackend has no encryptor; construct it with "
                "encryptor=... or encrypt through the session/client instead"
            )
        limb_count = None if level is None else level + 1
        return self.encryptor.encrypt_values(values, scale=scale, limb_count=limb_count)

    # -- plaintext encoding -------------------------------------------------

    def _as_plaintext(self, ct: Ciphertext, values, *, for_multiplication: bool) -> Plaintext:
        if isinstance(values, Plaintext):
            return values
        return self.evaluator.encode_for(ct, values, for_multiplication=for_multiplication)

    # -- additions ----------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.evaluator.add(a, b)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.evaluator.sub(a, b)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return self.evaluator.negate(a)

    def add_plain(self, a: Ciphertext, values) -> Ciphertext:
        return self.evaluator.add_plain(a, self._as_plaintext(a, values, for_multiplication=False))

    def sub_plain(self, a: Ciphertext, values) -> Ciphertext:
        return self.evaluator.sub_plain(a, self._as_plaintext(a, values, for_multiplication=False))

    def add_scalar(self, a: Ciphertext, value: float) -> Ciphertext:
        return self.evaluator.add_scalar(a, value)

    # -- multiplications ----------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.evaluator.multiply(a, b)

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.evaluator.square(a)

    def multiply_plain(self, a: Ciphertext, values, *, rescale: bool = True) -> Ciphertext:
        pt = self._as_plaintext(a, values, for_multiplication=True)
        return self.evaluator.multiply_plain(a, pt, rescale=rescale)

    def multiply_scalar(self, a: Ciphertext, value: float) -> Ciphertext:
        return self.evaluator.multiply_scalar(a, value)

    # -- rotations ----------------------------------------------------------

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        return self.evaluator.rotate(a, steps)

    def conjugate(self, a: Ciphertext) -> Ciphertext:
        return self.evaluator.conjugate(a)

    def hoisted_rotations(self, a: Ciphertext, steps: Sequence[int]) -> dict[int, Ciphertext]:
        return self.evaluator.hoisted_rotations(a, steps)

    # -- level / scale management -------------------------------------------

    def rescale(self, a: Ciphertext) -> Ciphertext:
        return self.evaluator.rescale(a)

    def at_level(self, a: Ciphertext, level: int) -> Ciphertext:
        return self.evaluator.adjust(a, level)

    def dot_product_plain(self, handles: Sequence[Ciphertext], value_rows: Sequence) -> Ciphertext:
        plaintexts = [
            self._as_plaintext(ct, row, for_multiplication=True)
            for ct, row in zip(handles, value_rows)
        ]
        return self.evaluator.dot_product_plain(list(handles), plaintexts)

    # -- throughput plane ---------------------------------------------------

    @property
    def batch_evaluator(self) -> BatchEvaluator:
        """The fused-kernel evaluator behind every ``batch_*`` operation."""
        if self._batch_evaluator is None:
            self._batch_evaluator = BatchEvaluator(self.context, self.evaluator.keys)
        return self._batch_evaluator

    def encrypt_batch(self, value_rows: Sequence, *, scale: float | None = None,
                      level: int | None = None) -> CiphertextBatch:
        """Encrypt one vector per row and fuse them into a batch."""
        cts = [self.encrypt(row, scale=scale, level=level) for row in value_rows]
        return CiphertextBatch.from_ciphertexts(cts)

    def batch_from(self, handles: Sequence[Ciphertext]) -> CiphertextBatch:
        return CiphertextBatch.from_ciphertexts(list(handles))

    def batch_split(self, batch: CiphertextBatch) -> list[Ciphertext]:
        return batch.split()

    def _batch_plaintext(self, batch: CiphertextBatch, values, *,
                         for_multiplication: bool) -> Plaintext:
        if isinstance(values, Plaintext):
            return values
        return self.batch_evaluator.encode_for(
            batch, values, for_multiplication=for_multiplication
        )

    def batch_add(self, a: CiphertextBatch, b: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.add(a, b)

    def batch_sub(self, a: CiphertextBatch, b: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.sub(a, b)

    def batch_negate(self, a: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.negate(a)

    def batch_add_plain(self, a: CiphertextBatch, values) -> CiphertextBatch:
        return self.batch_evaluator.add_plain(
            a, self._batch_plaintext(a, values, for_multiplication=False)
        )

    def batch_sub_plain(self, a: CiphertextBatch, values) -> CiphertextBatch:
        return self.batch_evaluator.sub_plain(
            a, self._batch_plaintext(a, values, for_multiplication=False)
        )

    def batch_add_scalar(self, a: CiphertextBatch, value: float) -> CiphertextBatch:
        return self.batch_evaluator.add_scalar(a, value)

    def batch_multiply(self, a: CiphertextBatch, b: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.multiply(a, b)

    def batch_square(self, a: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.square(a)

    def batch_multiply_plain(self, a: CiphertextBatch, values, *,
                             rescale: bool = True) -> CiphertextBatch:
        pt = self._batch_plaintext(a, values, for_multiplication=True)
        return self.batch_evaluator.multiply_plain(a, pt, rescale=rescale)

    def batch_multiply_scalar(self, a: CiphertextBatch, value: float) -> CiphertextBatch:
        return self.batch_evaluator.multiply_scalar(a, value)

    def batch_rescale(self, a: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.rescale(a)

    def batch_at_level(self, a: CiphertextBatch, level: int) -> CiphertextBatch:
        return self.batch_evaluator.adjust(a, level)

    def batch_rotate(self, a: CiphertextBatch, steps: int) -> CiphertextBatch:
        return self.batch_evaluator.rotate(a, steps)

    def batch_conjugate(self, a: CiphertextBatch) -> CiphertextBatch:
        return self.batch_evaluator.conjugate(a)

    def batch_hoisted_rotations(self, a: CiphertextBatch, steps: Sequence[int]
                                ) -> dict[int, CiphertextBatch]:
        return self.batch_evaluator.hoisted_rotations(a, steps)

    # -- reporting ----------------------------------------------------------

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "parameter_set": self.params.describe(),
            "encryptor": self.encryptor is not None,
        }


# ----------------------------------------------------------------------
# cost-model backend
# ----------------------------------------------------------------------


@dataclass
class SymbolicCiphertext:
    """A data-free ciphertext: level, scale and slot metadata only."""

    limb_count: int
    scale: float
    slots: int
    encoded_length: int | None = None

    @property
    def level(self) -> int:
        """Remaining multiplicative depth (limb count minus one)."""
        return self.limb_count - 1

    def copy(self) -> "SymbolicCiphertext":
        """Return a copy (symbolic ciphertexts are treated as immutable)."""
        return SymbolicCiphertext(self.limb_count, self.scale, self.slots, self.encoded_length)


@dataclass
class SymbolicCipherBatch:
    """A data-free ciphertext batch: shared level/scale metadata plus ``B``.

    The cost-model twin of :class:`repro.ckks.batch.CiphertextBatch`: every
    member shares one limb count and scale, and each batched operation is
    priced as the fused kernel stream -- the single-ciphertext kernels with
    ``B×`` the bytes and integer ops but an *unchanged* launch count, which
    is exactly what the recorded execution plane shows.
    """

    batch_size: int
    limb_count: int
    scale: float
    slots: int
    encoded_lengths: list | None = None

    @property
    def level(self) -> int:
        """Common remaining multiplicative depth of every member."""
        return self.limb_count - 1

    def copy(self) -> "SymbolicCipherBatch":
        """Return a copy (symbolic handles are treated as immutable)."""
        return SymbolicCipherBatch(
            self.batch_size, self.limb_count, self.scale, self.slots,
            list(self.encoded_lengths) if self.encoded_lengths is not None else None,
        )


def batched_cost(cost: OperationCost, batch_size: int) -> OperationCost:
    """Scale an operation cost to a fused batch of ``batch_size`` members.

    Bytes and integer operations grow ``B×`` (every kernel now covers
    ``B·L`` rows); launch counts stay fixed -- the throughput-plane
    contract that drops per-op launch overhead from ``O(B)`` to ``O(1)``.
    """
    scaled = OperationCost(name=f"{cost.name}[B={batch_size}]")
    scaled.kernels = [
        Kernel(
            name=k.name,
            bytes_read=k.bytes_read * batch_size,
            bytes_written=k.bytes_written * batch_size,
            int_ops=k.int_ops * batch_size,
            working_set_bytes=k.working_set_bytes * batch_size,
            reuse=k.reuse,
            stream=k.stream,
            fused=k.fused,
            launches=k.launches,
        )
        for k in cost.kernels
    ]
    return scaled


@dataclass
class CostLedger:
    """Accumulated kernel-level costs of a symbolic program."""

    entries: list[tuple[str, OperationCost]] = field(default_factory=list)

    def record(self, name: str, cost: OperationCost) -> None:
        """Append one operation's cost."""
        self.entries.append((name, cost))

    def __len__(self) -> int:
        return len(self.entries)

    def operation_counts(self) -> dict[str, int]:
        """How many times each operation was issued."""
        counts: dict[str, int] = {}
        for name, _ in self.entries:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def as_cost(self, name: str = "program") -> OperationCost:
        """Flatten the ledger into one composite :class:`OperationCost`."""
        total = OperationCost(name)
        for _, cost in self.entries:
            total.extend(cost)
        return total

    @property
    def bytes_moved(self) -> float:
        """Total bytes read plus written across the whole program."""
        return sum(cost.bytes_moved for _, cost in self.entries)

    @property
    def int_ops(self) -> float:
        """Total integer operations across the whole program."""
        return sum(cost.int_ops for _, cost in self.entries)

    @property
    def kernel_count(self) -> int:
        """Total kernel launches across the whole program."""
        return sum(cost.kernel_count for _, cost in self.entries)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()


class CostModelBackend:
    """Symbolic execution: level/scale tracking plus an operation-cost ledger.

    Two construction modes:

    * :meth:`from_context` (or ``context=...``) -- track scales against a
      real context's moduli chain and scale ladder, bit-identical to the
      functional evaluator (used by the backend-parity tests).
    * bare ``CostModelBackend(params)`` -- an idealised ladder where every
      level's scale is ``Δ`` and every rescale prime is ``2**scale_bits``;
      this is what paper-scale parameter sets use, since their contexts are
      too large for the functional Python backend.

    Passing ``key_inventory`` (a :class:`KeySet`, typically the server key
    set of a session) makes rotations and conjugations fail with the same
    ``KeyError`` the functional backend would raise for a missing key.
    """

    name = "costmodel"

    def __init__(
        self,
        params: CKKSParameters,
        *,
        costs: CKKSOperationCosts | None = None,
        context: Context | None = None,
        ledger: CostLedger | None = None,
        key_inventory: KeySet | None = None,
    ) -> None:
        self.params = params
        self.costs = costs if costs is not None else CKKSOperationCosts(
            params, limb_batch=params.limb_batch, fusion=True
        )
        self.context = context
        self.ledger = ledger if ledger is not None else CostLedger()
        self.key_inventory = key_inventory
        if context is not None:
            self._ladder: list[float] = list(context.scale_ladder)
            self._moduli: list = list(context.moduli)
        else:
            delta = params.scale
            self._ladder = [delta] * (params.mult_depth + 1)
            self._moduli = [float(2 ** params.first_mod_bits)] + [
                float(2 ** params.scale_bits)
            ] * params.mult_depth

    @classmethod
    def from_context(cls, context: Context, *, costs: CKKSOperationCosts | None = None,
                     key_inventory: KeySet | None = None) -> "CostModelBackend":
        """Build a backend whose scale trajectory matches ``context`` exactly."""
        return cls(context.params, context=context, costs=costs, key_inventory=key_inventory)

    @classmethod
    def for_model(cls, model) -> "CostModelBackend":
        """Build a backend sharing a perf model's cost builder (e.g. FIDESlibModel)."""
        return cls(model.params, costs=model.costs)

    # -- ladder helpers -----------------------------------------------------

    def _scale_at(self, level: int) -> float:
        if not 0 <= level <= self.params.mult_depth:
            raise ValueError(f"invalid level {level}")
        return self._ladder[level]

    def _last_modulus(self, limb_count: int):
        return self._moduli[limb_count - 1]

    def _record(self, name: str, cost: OperationCost) -> None:
        self.ledger.record(name, cost)

    # -- ciphertext sources -------------------------------------------------

    def encrypt(self, values=None, *, scale: float | None = None,
                level: int | None = None) -> SymbolicCiphertext:
        """Return a fresh symbolic ciphertext (client-side, hence cost-free)."""
        limb_count = self.params.mult_depth + 1 if level is None else level + 1
        if not 1 <= limb_count <= self.params.mult_depth + 1:
            raise ValueError(f"invalid level {level}")
        scale = self.params.scale if scale is None else float(scale)
        encoded_length = None
        if values is not None:
            encoded_length = int(np.atleast_1d(np.asarray(values)).shape[0])
        return SymbolicCiphertext(limb_count, scale, self.params.slots, encoded_length)

    # -- level and scale management (mirrors Evaluator) ----------------------

    def rescale(self, a: SymbolicCiphertext) -> SymbolicCiphertext:
        if a.limb_count < 2:
            raise ValueError("cannot rescale a level-0 ciphertext")
        self._record("Rescale", self.costs.rescale(a.limb_count))
        return SymbolicCiphertext(
            a.limb_count - 1, a.scale / self._last_modulus(a.limb_count),
            a.slots, a.encoded_length,
        )

    def at_level(self, a: SymbolicCiphertext, level: int) -> SymbolicCiphertext:
        return self._adjust(a, level)

    def _adjust(self, a: SymbolicCiphertext, target_level: int,
                target_scale: float | None = None) -> SymbolicCiphertext:
        if target_scale is None:
            target_scale = self._scale_at(target_level)
        if target_level > a.level:
            raise ValueError("cannot adjust to a higher level")
        if target_level == a.level:
            if not scales_match(a.scale, target_scale):
                raise ValueError(
                    f"cannot change scale in place ({a.scale:.6g} vs {target_scale:.6g})"
                )
            return a.copy()
        reduced_limbs = target_level + 2
        cost = OperationCost("Adjust")
        cost.extend(self.costs.scalar_mult(reduced_limbs))
        cost.extend(self.costs.rescale(reduced_limbs))
        self._record("Adjust", cost)
        return SymbolicCiphertext(target_level + 1, float(target_scale),
                                  a.slots, a.encoded_length)

    def _match(self, a: SymbolicCiphertext, b: SymbolicCiphertext
               ) -> tuple[SymbolicCiphertext, SymbolicCiphertext]:
        if a.level == b.level:
            if scales_match(a.scale, b.scale):
                return a, b
            raise ValueError(
                f"scale mismatch at equal level: {a.scale:.6g} vs {b.scale:.6g}"
            )
        if a.level > b.level:
            return self._adjust(a, b.level, b.scale), b
        return a, self._adjust(b, a.level, a.scale)

    def _match_for_product(self, a: SymbolicCiphertext, b: SymbolicCiphertext
                           ) -> tuple[SymbolicCiphertext, SymbolicCiphertext]:
        if a.level == b.level:
            return a, b
        if a.level > b.level:
            return self._adjust(a, b.level), b
        return a, self._adjust(b, a.level)

    # -- plaintext scales (mirrors Evaluator.encode_for) ----------------------

    def _plain_scale(self, a: SymbolicCiphertext, values, *, for_multiplication: bool) -> float:
        if isinstance(values, Plaintext):
            return values.scale
        if for_multiplication and a.level >= 1:
            q = self._last_modulus(a.limb_count)
            return q * self._scale_at(a.level - 1) / a.scale
        return a.scale

    # -- additions ----------------------------------------------------------

    def add(self, a: SymbolicCiphertext, b: SymbolicCiphertext) -> SymbolicCiphertext:
        a2, b2 = self._match(a, b)
        self._record("HAdd", self.costs.hadd(a2.limb_count))
        return SymbolicCiphertext(a2.limb_count, a2.scale, a2.slots, a2.encoded_length)

    def sub(self, a: SymbolicCiphertext, b: SymbolicCiphertext) -> SymbolicCiphertext:
        a2, b2 = self._match(a, b)
        self._record("HSub", self.costs.hadd(a2.limb_count))
        return SymbolicCiphertext(a2.limb_count, a2.scale, a2.slots, a2.encoded_length)

    def negate(self, a: SymbolicCiphertext) -> SymbolicCiphertext:
        cost = OperationCost("Negate")
        cost.kernels = self.costs.elementwise_kernels(
            "negate", a.limb_count, polys_read=2.0, polys_written=2.0,
            ops_per_element=1.0,
        )
        self._record("Negate", cost)
        return a.copy()

    def add_plain(self, a: SymbolicCiphertext, values) -> SymbolicCiphertext:
        pt_scale = self._plain_scale(a, values, for_multiplication=False)
        if not scales_match(a.scale, pt_scale):
            raise ValueError(
                f"plaintext scale {pt_scale:.6g} does not match ciphertext {a.scale:.6g}"
            )
        self._record("PtAdd", self.costs.ptadd(a.limb_count))
        return a.copy()

    def sub_plain(self, a: SymbolicCiphertext, values) -> SymbolicCiphertext:
        pt_scale = self._plain_scale(a, values, for_multiplication=False)
        if not scales_match(a.scale, pt_scale):
            raise ValueError("plaintext scale does not match ciphertext")
        self._record("PtSub", self.costs.ptadd(a.limb_count))
        return a.copy()

    def add_scalar(self, a: SymbolicCiphertext, value: float) -> SymbolicCiphertext:
        self._record("ScalarAdd", self.costs.scalar_add(a.limb_count))
        return a.copy()

    # -- multiplications ----------------------------------------------------

    def multiply(self, a: SymbolicCiphertext, b: SymbolicCiphertext) -> SymbolicCiphertext:
        a2, b2 = self._match_for_product(a, b)
        self._record("HMult", self.costs.hmult(a2.limb_count))
        raw = SymbolicCiphertext(a2.limb_count, a2.scale * b2.scale, a2.slots, a2.encoded_length)
        return self.rescale(raw)

    def square(self, a: SymbolicCiphertext) -> SymbolicCiphertext:
        self._record("HSquare", self.costs.hsquare(a.limb_count))
        raw = SymbolicCiphertext(a.limb_count, a.scale * a.scale, a.slots, a.encoded_length)
        return self.rescale(raw)

    def multiply_plain(self, a: SymbolicCiphertext, values, *,
                       rescale: bool = True) -> SymbolicCiphertext:
        pt_scale = self._plain_scale(a, values, for_multiplication=True)
        self._record("PtMult", self.costs.ptmult(a.limb_count))
        raw = SymbolicCiphertext(a.limb_count, a.scale * pt_scale, a.slots, a.encoded_length)
        return self.rescale(raw) if rescale else raw

    def multiply_scalar(self, a: SymbolicCiphertext, value: float) -> SymbolicCiphertext:
        if a.level == 0:
            raise ValueError(
                "multiply_scalar(..., rescale=True) on a level-0 ciphertext: there is "
                "no limb left to drop, so the result scale cannot be restored to the "
                "ladder; pass rescale=False (the result keeps scale * scalar_scale) "
                "or bootstrap the ciphertext first"
            )
        self._record("ScalarMult", self.costs.scalar_mult(a.limb_count))
        self._record("Rescale", self.costs.rescale(a.limb_count))
        return SymbolicCiphertext(
            a.limb_count - 1, self._scale_at(a.level - 1) * 1.0, a.slots, a.encoded_length
        )

    # -- rotations ----------------------------------------------------------

    def _check_rotation_key(self, steps: int) -> None:
        if self.key_inventory is not None:
            self.key_inventory.rotation_key(steps)  # raises a descriptive KeyError

    def rotate(self, a: SymbolicCiphertext, steps: int) -> SymbolicCiphertext:
        if steps % a.slots == 0:
            return a.copy()
        self._check_rotation_key(steps)
        self._record("HRotate", self.costs.hrotate(a.limb_count))
        return a.copy()

    def conjugate(self, a: SymbolicCiphertext) -> SymbolicCiphertext:
        if self.key_inventory is not None and self.key_inventory.conjugation_key is None:
            raise KeyError("no conjugation key was generated")
        self._record("HConjugate", self.costs.hrotate(a.limb_count))
        return a.copy()

    def hoisted_rotations(self, a: SymbolicCiphertext,
                          steps: Sequence[int]) -> dict[int, SymbolicCiphertext]:
        results: dict[int, SymbolicCiphertext] = {}
        effective = []
        for step in steps:
            step = int(step)
            results[step] = a.copy()
            if step % a.slots != 0:
                self._check_rotation_key(step)
                effective.append(step)
        if effective:
            self._record(
                f"HoistedRotate x{len(effective)}",
                self.costs.hoisted_rotations(a.limb_count, len(effective)),
            )
        return results

    # -- throughput plane ---------------------------------------------------

    def encrypt_batch(self, value_rows: Sequence, *, scale: float | None = None,
                      level: int | None = None) -> SymbolicCipherBatch:
        """Return a fresh symbolic batch (client-side, hence cost-free)."""
        members = [self.encrypt(row, scale=scale, level=level) for row in value_rows]
        return self.batch_from(members)

    def batch_from(self, handles: Sequence[SymbolicCiphertext]) -> SymbolicCipherBatch:
        handles = list(handles)
        if not handles:
            raise ValueError("a ciphertext batch needs at least one member")
        levels = sorted({h.level for h in handles})
        if len(levels) > 1:
            raise ValueError(
                f"cannot batch ciphertexts at mixed levels {levels}: the fused "
                f"(B*L, N) buffer needs one common shape; bring the members to "
                f"one level first (e.g. Evaluator.adjust / CipherVector.at_level)"
            )
        first = handles[0]
        for h in handles[1:]:
            if not scales_match(h.scale, first.scale):
                raise ValueError(
                    f"cannot batch ciphertexts at mixed scales "
                    f"({h.scale:.6g} vs {first.scale:.6g})"
                )
        return SymbolicCipherBatch(
            len(handles), first.limb_count, first.scale, first.slots,
            [h.encoded_length for h in handles],
        )

    def batch_split(self, batch: SymbolicCipherBatch) -> list[SymbolicCiphertext]:
        lengths = batch.encoded_lengths or [None] * batch.batch_size
        return [
            SymbolicCiphertext(batch.limb_count, batch.scale, batch.slots, lengths[i])
            for i in range(batch.batch_size)
        ]

    def _with_batch(self, batch: SymbolicCipherBatch, *, limb_count: int | None = None,
                    scale: float | None = None) -> SymbolicCipherBatch:
        return SymbolicCipherBatch(
            batch.batch_size,
            batch.limb_count if limb_count is None else limb_count,
            batch.scale if scale is None else scale,
            batch.slots,
            batch.encoded_lengths,
        )

    def _record_batched(self, name: str, batch: SymbolicCipherBatch,
                        cost: OperationCost) -> None:
        self._record(f"{name}[B={batch.batch_size}]", batched_cost(cost, batch.batch_size))

    @staticmethod
    def _check_batch_pair(a: SymbolicCipherBatch, b: SymbolicCipherBatch) -> None:
        if a.batch_size != b.batch_size:
            raise ValueError(f"batch sizes differ ({a.batch_size} vs {b.batch_size})")
        if a.level != b.level:
            raise ValueError(
                f"batched operands must share one level ({a.level} vs {b.level}); "
                f"adjust members before fusing"
            )

    def batch_add(self, a: SymbolicCipherBatch, b: SymbolicCipherBatch) -> SymbolicCipherBatch:
        self._check_batch_pair(a, b)
        if not scales_match(a.scale, b.scale):
            raise ValueError(
                f"scale mismatch at equal level: {a.scale:.6g} vs {b.scale:.6g}"
            )
        self._record_batched("HAdd", a, self.costs.hadd(a.limb_count))
        return a.copy()

    def batch_sub(self, a: SymbolicCipherBatch, b: SymbolicCipherBatch) -> SymbolicCipherBatch:
        self._check_batch_pair(a, b)
        if not scales_match(a.scale, b.scale):
            raise ValueError(
                f"scale mismatch at equal level: {a.scale:.6g} vs {b.scale:.6g}"
            )
        self._record_batched("HSub", a, self.costs.hadd(a.limb_count))
        return a.copy()

    def batch_negate(self, a: SymbolicCipherBatch) -> SymbolicCipherBatch:
        cost = OperationCost("Negate")
        cost.kernels = self.costs.elementwise_kernels(
            "negate", a.limb_count, polys_read=2.0, polys_written=2.0,
            ops_per_element=1.0,
        )
        self._record_batched("Negate", a, cost)
        return a.copy()

    def batch_add_plain(self, a: SymbolicCipherBatch, values) -> SymbolicCipherBatch:
        pt_scale = self._plain_scale(
            SymbolicCiphertext(a.limb_count, a.scale, a.slots), values,
            for_multiplication=False,
        )
        if not scales_match(a.scale, pt_scale):
            raise ValueError(
                f"plaintext scale {pt_scale:.6g} does not match ciphertext {a.scale:.6g}"
            )
        self._record_batched("PtAdd", a, self.costs.ptadd(a.limb_count))
        return a.copy()

    def batch_sub_plain(self, a: SymbolicCipherBatch, values) -> SymbolicCipherBatch:
        pt_scale = self._plain_scale(
            SymbolicCiphertext(a.limb_count, a.scale, a.slots), values,
            for_multiplication=False,
        )
        if not scales_match(a.scale, pt_scale):
            raise ValueError("plaintext scale does not match ciphertext")
        self._record_batched("PtSub", a, self.costs.ptadd(a.limb_count))
        return a.copy()

    def batch_add_scalar(self, a: SymbolicCipherBatch, value: float) -> SymbolicCipherBatch:
        self._record_batched("ScalarAdd", a, self.costs.scalar_add(a.limb_count))
        return a.copy()

    def batch_multiply(self, a: SymbolicCipherBatch, b: SymbolicCipherBatch) -> SymbolicCipherBatch:
        self._check_batch_pair(a, b)
        self._record_batched("HMult", a, self.costs.hmult(a.limb_count))
        raw = self._with_batch(a, scale=a.scale * b.scale)
        return self.batch_rescale(raw)

    def batch_square(self, a: SymbolicCipherBatch) -> SymbolicCipherBatch:
        self._record_batched("HSquare", a, self.costs.hsquare(a.limb_count))
        raw = self._with_batch(a, scale=a.scale * a.scale)
        return self.batch_rescale(raw)

    def batch_multiply_plain(self, a: SymbolicCipherBatch, values, *,
                             rescale: bool = True) -> SymbolicCipherBatch:
        pt_scale = self._plain_scale(
            SymbolicCiphertext(a.limb_count, a.scale, a.slots), values,
            for_multiplication=True,
        )
        self._record_batched("PtMult", a, self.costs.ptmult(a.limb_count))
        raw = self._with_batch(a, scale=a.scale * pt_scale)
        return self.batch_rescale(raw) if rescale else raw

    def batch_multiply_scalar(self, a: SymbolicCipherBatch, value: float) -> SymbolicCipherBatch:
        if a.level == 0:
            raise ValueError(
                "multiply_scalar(..., rescale=True) on a level-0 ciphertext: there is "
                "no limb left to drop, so the result scale cannot be restored to the "
                "ladder; pass rescale=False (the result keeps scale * scalar_scale) "
                "or bootstrap the ciphertext first"
            )
        self._record_batched("ScalarMult", a, self.costs.scalar_mult(a.limb_count))
        self._record_batched("Rescale", a, self.costs.rescale(a.limb_count))
        return self._with_batch(
            a, limb_count=a.limb_count - 1, scale=self._scale_at(a.level - 1) * 1.0
        )

    def batch_rescale(self, a: SymbolicCipherBatch) -> SymbolicCipherBatch:
        if a.limb_count < 2:
            raise ValueError("cannot rescale a level-0 batch")
        self._record_batched("Rescale", a, self.costs.rescale(a.limb_count))
        return self._with_batch(
            a, limb_count=a.limb_count - 1,
            scale=a.scale / self._last_modulus(a.limb_count),
        )

    def batch_at_level(self, a: SymbolicCipherBatch, level: int) -> SymbolicCipherBatch:
        if level > a.level:
            raise ValueError("cannot adjust to a higher level")
        target_scale = self._scale_at(level)
        if level == a.level:
            if not scales_match(a.scale, target_scale):
                raise ValueError(
                    f"cannot change scale in place "
                    f"({a.scale:.6g} vs {target_scale:.6g})"
                )
            return a.copy()
        reduced_limbs = level + 2
        cost = OperationCost("Adjust")
        cost.extend(self.costs.scalar_mult(reduced_limbs))
        cost.extend(self.costs.rescale(reduced_limbs))
        self._record_batched("Adjust", a, cost)
        return self._with_batch(a, limb_count=level + 1, scale=float(target_scale))

    def batch_rotate(self, a: SymbolicCipherBatch, steps: int) -> SymbolicCipherBatch:
        if steps % a.slots == 0:
            return a.copy()
        self._check_rotation_key(steps)
        self._record_batched("HRotate", a, self.costs.hrotate(a.limb_count))
        return a.copy()

    def batch_conjugate(self, a: SymbolicCipherBatch) -> SymbolicCipherBatch:
        if self.key_inventory is not None and self.key_inventory.conjugation_key is None:
            raise KeyError("no conjugation key was generated")
        self._record_batched("HConjugate", a, self.costs.hrotate(a.limb_count))
        return a.copy()

    def batch_hoisted_rotations(self, a: SymbolicCipherBatch, steps: Sequence[int]
                                ) -> dict[int, SymbolicCipherBatch]:
        results: dict[int, SymbolicCipherBatch] = {}
        effective = []
        for step in steps:
            step = int(step)
            results[step] = a.copy()
            if step % a.slots != 0:
                self._check_rotation_key(step)
                effective.append(step)
        if effective:
            self._record_batched(
                f"HoistedRotate x{len(effective)}", a,
                self.costs.hoisted_rotations(a.limb_count, len(effective)),
            )
        return results

    # -- fusions ------------------------------------------------------------

    def dot_product_plain(self, handles: Sequence[SymbolicCiphertext],
                          value_rows: Sequence) -> SymbolicCiphertext:
        if not handles:
            raise ValueError(
                "dot_product_plain needs at least one ciphertext/plaintext pair; "
                "got an empty ciphertext sequence"
            )
        if len(handles) != len(value_rows):
            raise ValueError(
                f"dot_product_plain needs equally many ciphertexts and plaintexts; "
                f"got {len(handles)} ciphertexts and {len(value_rows)} plaintexts"
            )
        acc = self.multiply_plain(handles[0], value_rows[0], rescale=False)
        for ct, row in zip(handles[1:], value_rows[1:]):
            acc = self.add(acc, self.multiply_plain(ct, row, rescale=False))
        return self.rescale(acc)

    # -- reporting ----------------------------------------------------------

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "parameter_set": self.params.describe(),
            "mode": "context-exact" if self.context is not None else "ideal-ladder",
            "operations_recorded": len(self.ledger),
        }


# ----------------------------------------------------------------------
# tracing backend
# ----------------------------------------------------------------------


class TracingBackend:
    """Wraps a backend and records the kernel stream of every operation.

    Each dispatched operation runs inside an execution-plane recording
    region (:meth:`repro.core.dispatch.Dispatcher.record`), so the wrapped
    backend executes unchanged -- handles, levels, scales and ciphertext
    bits are identical with and without the wrapper -- while every batched
    data-plane kernel it launches lands in :attr:`trace` with operation
    scopes and dependency edges intact across calls.

    Meaningful traces require a backend that drives the real data plane
    (:class:`FunctionalBackend`); wrapping a :class:`CostModelBackend`
    records nothing, since symbolic execution launches no kernels.
    """

    name = "tracing"

    def __init__(self, inner, *, trace: KernelTrace | None = None) -> None:
        self.inner = as_backend(inner)
        self.params: CKKSParameters = self.inner.params
        self.trace = trace if trace is not None else KernelTrace()

    def _recorded(self, method: str, *args, **kwargs):
        with get_dispatcher().record(self.trace):
            return getattr(self.inner, method)(*args, **kwargs)

    # -- delegated operation surface ----------------------------------------

    def encrypt(self, values, *, scale: float | None = None, level: int | None = None):
        return self._recorded("encrypt", values, scale=scale, level=level)

    def add(self, a, b):
        return self._recorded("add", a, b)

    def sub(self, a, b):
        return self._recorded("sub", a, b)

    def negate(self, a):
        return self._recorded("negate", a)

    def add_plain(self, a, values):
        return self._recorded("add_plain", a, values)

    def sub_plain(self, a, values):
        return self._recorded("sub_plain", a, values)

    def add_scalar(self, a, value: float):
        return self._recorded("add_scalar", a, value)

    def multiply(self, a, b):
        return self._recorded("multiply", a, b)

    def square(self, a):
        return self._recorded("square", a)

    def multiply_plain(self, a, values, *, rescale: bool = True):
        return self._recorded("multiply_plain", a, values, rescale=rescale)

    def multiply_scalar(self, a, value: float):
        return self._recorded("multiply_scalar", a, value)

    def rotate(self, a, steps: int):
        return self._recorded("rotate", a, steps)

    def conjugate(self, a):
        return self._recorded("conjugate", a)

    def hoisted_rotations(self, a, steps: Sequence[int]) -> dict:
        return self._recorded("hoisted_rotations", a, steps)

    def rescale(self, a):
        return self._recorded("rescale", a)

    def at_level(self, a, level: int):
        return self._recorded("at_level", a, level)

    def dot_product_plain(self, handles: Sequence, value_rows: Sequence):
        return self._recorded("dot_product_plain", handles, value_rows)

    # -- throughput plane ---------------------------------------------------

    def encrypt_batch(self, value_rows: Sequence, *, scale: float | None = None,
                      level: int | None = None):
        return self._recorded("encrypt_batch", value_rows, scale=scale, level=level)

    def batch_from(self, handles: Sequence):
        return self._recorded("batch_from", handles)

    def batch_split(self, batch) -> list:
        return self._recorded("batch_split", batch)

    def batch_add(self, a, b):
        return self._recorded("batch_add", a, b)

    def batch_sub(self, a, b):
        return self._recorded("batch_sub", a, b)

    def batch_negate(self, a):
        return self._recorded("batch_negate", a)

    def batch_add_plain(self, a, values):
        return self._recorded("batch_add_plain", a, values)

    def batch_sub_plain(self, a, values):
        return self._recorded("batch_sub_plain", a, values)

    def batch_add_scalar(self, a, value: float):
        return self._recorded("batch_add_scalar", a, value)

    def batch_multiply(self, a, b):
        return self._recorded("batch_multiply", a, b)

    def batch_square(self, a):
        return self._recorded("batch_square", a)

    def batch_multiply_plain(self, a, values, *, rescale: bool = True):
        return self._recorded("batch_multiply_plain", a, values, rescale=rescale)

    def batch_multiply_scalar(self, a, value: float):
        return self._recorded("batch_multiply_scalar", a, value)

    def batch_rescale(self, a):
        return self._recorded("batch_rescale", a)

    def batch_at_level(self, a, level: int):
        return self._recorded("batch_at_level", a, level)

    def batch_rotate(self, a, steps: int):
        return self._recorded("batch_rotate", a, steps)

    def batch_conjugate(self, a):
        return self._recorded("batch_conjugate", a)

    def batch_hoisted_rotations(self, a, steps: Sequence[int]) -> dict:
        return self._recorded("batch_hoisted_rotations", a, steps)

    # -- reporting ----------------------------------------------------------

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "inner": self.inner.describe(),
            "kernels_recorded": self.trace.kernel_count,
        }


__all__ = [
    "EvaluationBackend",
    "FunctionalBackend",
    "CostModelBackend",
    "CostLedger",
    "SymbolicCiphertext",
    "SymbolicCipherBatch",
    "TracingBackend",
    "as_backend",
    "batched_cost",
]
