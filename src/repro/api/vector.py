"""``CipherVector``: an operator-overloaded handle over a backend ciphertext.

Arithmetic on encrypted vectors reads like NumPy instead of nested
evaluator verbs::

    ct_poly = 2.0 * (ct_a * ct_b) + 1.0      # ScalarMult(HMult(..)) + ScalarAdd
    shifted = ct_a << 3                       # HRotate by 3 slots
    energy  = (ct_a ** 2) + (ct_b ** 2)       # HSquare + HAdd

Each operator dispatches on the operand type -- another
:class:`CipherVector` (HAdd/HMult), a pre-encoded
:class:`~repro.ckks.ciphertext.Plaintext` or a raw value array
(PtAdd/PtMult), or a real scalar (ScalarAdd/ScalarMult) -- and routes to
the vector's :class:`~repro.api.backend.EvaluationBackend`, so the same
program runs functionally or against the GPU cost model.  Scale-ladder
management stays inside the backend/evaluator: mismatched scales raise
before any polynomial arithmetic happens.
"""

from __future__ import annotations

import numbers
from typing import Sequence

import numpy as np

from repro.ckks.ciphertext import Plaintext

#: Operand kinds an operator can dispatch to.
_CT, _PLAIN, _SCALAR = "ciphertext", "plaintext", "scalar"


class CipherVector:
    """An encrypted (or symbolic) vector bound to an evaluation backend."""

    # Keep NumPy from absorbing us into object arrays; reflected operators
    # (ndarray + CipherVector) must reach __radd__ and friends.
    __array_ufunc__ = None
    __array_priority__ = 1000

    __slots__ = ("backend", "handle")

    def __init__(self, backend, handle) -> None:
        self.backend = backend
        self.handle = handle

    # -- metadata -----------------------------------------------------------

    @property
    def level(self) -> int:
        """Remaining multiplicative depth of the underlying ciphertext."""
        return self.handle.level

    @property
    def scale(self) -> float:
        """Current scaling factor."""
        return self.handle.scale

    @property
    def slots(self) -> int:
        """Number of message slots."""
        return self.handle.slots

    @property
    def limb_count(self) -> int:
        """Number of RNS limbs currently attached."""
        return self.handle.limb_count

    def __repr__(self) -> str:
        return (
            f"CipherVector(level={self.level}, scale={self.scale:.6g}, "
            f"slots={self.slots}, backend={getattr(self.backend, 'name', '?')})"
        )

    # -- dispatch helpers ---------------------------------------------------

    def _wrap(self, handle) -> "CipherVector":
        return CipherVector(self.backend, handle)

    def _classify(self, other):
        """Classify an operand, returning ``(kind, value)`` or ``None``."""
        if isinstance(other, CipherVector):
            if other.backend is not self.backend:
                raise ValueError(
                    "cannot combine CipherVectors from different backends; "
                    "re-encrypt or re-wrap the operand on one backend first"
                )
            return _CT, other.handle
        if isinstance(other, Plaintext):
            return _PLAIN, other
        if isinstance(other, (bool,)):
            return None
        if isinstance(other, numbers.Real):
            return _SCALAR, float(other)
        if isinstance(other, numbers.Complex):
            raise TypeError(
                "complex scalars are not supported as broadcast constants; "
                "encode a full slot vector instead"
            )
        if isinstance(other, (list, tuple, np.ndarray)):
            return _PLAIN, np.asarray(other)
        return None

    # -- additions ----------------------------------------------------------

    def __add__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _CT:
            return self._wrap(self.backend.add(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.add_plain(self.handle, value))
        return self._wrap(self.backend.add_scalar(self.handle, value))

    __radd__ = __add__

    def __sub__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _CT:
            return self._wrap(self.backend.sub(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.sub_plain(self.handle, value))
        return self._wrap(self.backend.add_scalar(self.handle, -value))

    def __rsub__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        negated = self.backend.negate(self.handle)
        if tag == _CT:  # pragma: no cover - ct - ct resolves via __sub__
            return self._wrap(self.backend.add(negated, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.add_plain(negated, value))
        return self._wrap(self.backend.add_scalar(negated, value))

    def __neg__(self):
        return self._wrap(self.backend.negate(self.handle))

    # -- multiplications ----------------------------------------------------

    def __mul__(self, other):
        kind = self._classify(other)
        if kind is None:
            return NotImplemented
        tag, value = kind
        if tag == _CT:
            return self._wrap(self.backend.multiply(self.handle, value))
        if tag == _PLAIN:
            return self._wrap(self.backend.multiply_plain(self.handle, value))
        return self._wrap(self.backend.multiply_scalar(self.handle, value))

    __rmul__ = __mul__

    def __pow__(self, exponent):
        if not isinstance(exponent, numbers.Integral) or exponent < 1:
            raise ValueError(
                f"only positive integer powers are supported, got {exponent!r}"
            )
        exponent = int(exponent)
        if exponent == 1:
            return self
        if exponent == 2:
            return self.square()
        # Square-and-multiply; the backend aligns mismatched levels.
        result: CipherVector | None = None
        base = self
        while exponent:
            if exponent & 1:
                result = base if result is None else result * base
            exponent >>= 1
            if exponent:
                base = base.square()
        return result

    def square(self) -> "CipherVector":
        """Homomorphic squaring (``HSquare``), cheaper than a general HMult."""
        return self._wrap(self.backend.square(self.handle))

    # -- rotations ----------------------------------------------------------

    def __lshift__(self, steps):
        if not isinstance(steps, numbers.Integral):
            return NotImplemented
        return self.rotate(int(steps))

    def __rshift__(self, steps):
        if not isinstance(steps, numbers.Integral):
            return NotImplemented
        return self.rotate(-int(steps))

    def rotate(self, steps: int) -> "CipherVector":
        """Rotate the message vector left by ``steps`` slots (``HRotate``)."""
        return self._wrap(self.backend.rotate(self.handle, steps))

    def rotate_many(self, steps: Sequence[int]) -> dict[int, "CipherVector"]:
        """Rotate by many step counts sharing one ModUp (hoisting, §III-F.6)."""
        rotated = self.backend.hoisted_rotations(self.handle, steps)
        return {step: self._wrap(handle) for step, handle in rotated.items()}

    def conj(self) -> "CipherVector":
        """Conjugate the message vector (``HConjugate``)."""
        return self._wrap(self.backend.conjugate(self.handle))

    # -- level and scale management -----------------------------------------

    def rescale(self) -> "CipherVector":
        """Drop the last limb, dividing the scale by its prime."""
        return self._wrap(self.backend.rescale(self.handle))

    def at_level(self, level: int) -> "CipherVector":
        """Return a copy adjusted down to ``level`` at the ladder scale."""
        return self._wrap(self.backend.at_level(self.handle, level))


def as_vector(backend, value) -> CipherVector:
    """Normalise a ciphertext-ish value into a :class:`CipherVector`.

    Accepts an existing vector (validating backend identity) or a raw
    backend handle (:class:`~repro.ckks.ciphertext.Ciphertext` or
    :class:`~repro.api.backend.SymbolicCiphertext`).
    """
    if isinstance(value, CipherVector):
        if value.backend is not backend:
            raise ValueError("CipherVector belongs to a different backend")
        return value
    return CipherVector(backend, value)


__all__ = ["CipherVector", "as_vector"]
