"""repro.obs: the unified observability plane.

The paper's core contribution is *explaining where GPU CKKS time goes*
(launch overhead, memory movement, fusion wins); this package turns the
runtime signals every other plane already produces into one coherent
telemetry layer.

Module map (sources -> instruments / spans / timelines -> exports)
------------------------------------------------------------------

::

    repro.serve.metrics.ServeMetrics ──┐  counters/samples re-homed via
    repro.serve.bucketing.BucketQueue ─┤  collectors (plain attributes
    repro.serve.faults.FaultInjector ──┤  stay -- zero hot-path cost)
    repro.core.memory.MemoryPool ──────┘
                │
                ▼
    repro.obs.registry.MetricsRegistry          (labeled Counter / Gauge /
        deterministic snapshot() ordering,       Histogram instruments)
        Prometheus text exposition
                │
    repro.serve.executor.Server hooks           (submit -> admission ->
                │                                queued -> fused -> drain ->
                ▼                                retry -> complete/error)
    repro.obs.spans.SpanTracer                  parent/child request spans
        on the server's SimulatedClock           with ShapeKey / batch-size /
                │                                device / error_kind attrs
                │
    repro.perf.trace_model.TraceCostModel       every priced drain feeds
        (Server._run_priced) ───────────────┐    both accumulators below
                │                           │
                ▼                           ▼
    repro.obs.rollup.ScopeRollup       repro.obs.plane.DrainTimeline
        per-scope time/bytes               ScheduleResult slots placed at
        (modeled via the schedule          the drain's simulated dispatch
        timeline, or eager wall clock      time
        via WallClockProfiler plugged
        into Dispatcher.profiling)
                │                           │
                ▼                           ▼
    obs.report() -- table / JSON       repro.obs.perfetto
        reconciles with the                Chrome-trace / Perfetto JSON:
        TraceCostModel makespan            kernel tracks (one per device /
        at <= 1%                           stream / link) + the span tree
                                           in one loadable file

:class:`Observability` (``session.observability()``) is the facade that
bundles one registry, one tracer, one rollup and the export timelines;
hand it to ``session.server(observability=...)`` and every hook above is
wired.  Instrumentation is zero-cost when disabled: a disabled facade
hands out shared no-op contexts (the :meth:`Dispatcher.scope` trick) and
every hook early-outs -- the run-quick benchmark gates the residual
hot-path overhead at <= 5%.
"""

from repro.obs.perfetto import (
    chrome_trace_document,
    chrome_trace_events,
    export_chrome_trace,
)
from repro.obs.plane import DrainTimeline, Observability
from repro.obs.registry import (
    BYTES_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.rollup import ScopeRollup, ScopeRow, WallClockProfiler, rollup_trace
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DrainTimeline",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ScopeRollup",
    "ScopeRow",
    "Span",
    "SpanTracer",
    "WallClockProfiler",
    "chrome_trace_document",
    "chrome_trace_events",
    "export_chrome_trace",
    "rollup_trace",
]
