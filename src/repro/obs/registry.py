"""Labeled metric instruments and the registry that exposes them.

A deliberately small, dependency-free take on the Prometheus client data
model: :class:`Counter` (monotonic), :class:`Gauge` (point-in-time, with
pull-style callback series) and :class:`Histogram` (bucketed samples),
all supporting label sets, owned by one :class:`MetricsRegistry`.

Two readouts, both deterministic:

* :meth:`MetricsRegistry.snapshot` -- a plain nested dict, instruments
  sorted by name and series sorted by label set, so two identical seeded
  runs produce byte-identical JSON;
* :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` lines, ``name{k="v"} v``
  samples, histograms expanded to ``_bucket{le=...}`` / ``_sum`` /
  ``_count``).

Collectors (:meth:`MetricsRegistry.register_collector`) run immediately
before either readout.  They are the re-homing seam: existing sources of
truth (:class:`~repro.serve.metrics.ServeMetrics` counters, live
:class:`~repro.serve.bucketing.BucketQueue` depths,
:class:`~repro.serve.faults.FaultInjector` fire logs, memory-pool
accounting) keep their plain attributes as before -- zero hot-path cost
-- and a collector folds them into registry instruments at read time.
Because collectors may *re-state* a source's current totals,
:meth:`Counter.set_total` and :meth:`Histogram.reset` exist for their
use; application code incrementing counters directly should stick to
:meth:`Counter.inc`.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-ish magnitudes, Prometheus style).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for byte-valued histograms (powers of four).
BYTES_BUCKETS = tuple(float(4 ** k) for k in range(5, 18))


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of one label set."""
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


class _Instrument:
    """Shared name/help/series plumbing of the three instrument kinds."""

    kind = ""

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def clear(self) -> None:
        """Drop every series (collectors rebuilding from scratch)."""
        self._series.clear()

    def series(self) -> list[tuple[tuple[tuple[str, str], ...], float]]:
        """All (label key, value) pairs, deterministically sorted."""
        return sorted(self._series.items())

    def value(self, **labels) -> float:
        """Current value of one series (0.0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)


class Counter(_Instrument):
    """A monotonically increasing count (requests served, faults fired)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be non-negative) to one series."""
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(amount)

    def set_total(self, total: float, **labels) -> None:
        """Restate one series' running total (collector re-homing only).

        The underlying source (a ``ServeMetrics`` field, a fault log
        length) is itself monotonic; the collector copies its current
        total rather than replaying increments.
        """
        self._series[_label_key(labels)] = float(total)


class Gauge(_Instrument):
    """A point-in-time value (queue depth, bytes in use, availability)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._functions: dict[tuple[tuple[str, str], ...], Callable[[], float]] = {}

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Pull-style series: ``fn()`` is evaluated at every readout."""
        self._functions[_label_key(labels)] = fn

    def collect(self) -> None:
        """Fold function-backed series into the stored values."""
        for key, fn in self._functions.items():
            self._series[key] = float(fn())

    def value(self, **labels) -> float:
        key = _label_key(labels)
        fn = self._functions.get(key)
        if fn is not None:
            return float(fn())
        return self._series.get(key, 0.0)


class _HistogramSeries:
    """Bucket counts plus sum/count of one labeled histogram series."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Bucketed samples (latencies, fused batch sizes, drain peak bytes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] | None = None) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.buckets = tuple(bounds)
        self._series: dict[tuple[tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.counts[i] += 1
                break
        series.sum += value
        series.count += 1

    def reset(self) -> None:
        """Drop all samples (collectors rebuilding from a sample list)."""
        self._series.clear()

    def value(self, **labels):  # pragma: no cover - guard only
        raise TypeError("histograms have no scalar value; use snapshot()")


class MetricsRegistry:
    """Owns a set of named instruments and renders them deterministically.

    Instruments are get-or-create: asking twice for the same name returns
    the same object (so collectors are idempotent); asking for the same
    name with a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- instrument factories ------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` before every readout (the re-homing seam)."""
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run all collectors and refresh function-backed gauges."""
        for fn in self._collectors:
            fn()
        for instrument in self._instruments.values():
            if isinstance(instrument, Gauge):
                instrument.collect()

    # -- readouts ------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """One series' current value, collectors included (0.0 if absent)."""
        self.collect()
        instrument = self._instruments.get(name)
        if instrument is None:
            return 0.0
        return instrument.value(**labels)

    def snapshot(self) -> dict:
        """Deterministic nested-dict readout of every instrument."""
        self.collect()
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry: dict = {"type": instrument.kind, "help": instrument.help}
            if isinstance(instrument, Histogram):
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "count": series.count,
                        "sum": series.sum,
                        "buckets": [
                            [_format_value(bound), count]
                            for bound, count in zip(
                                instrument.buckets, series.counts
                            )
                        ],
                    }
                    for key, series in sorted(instrument._series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in instrument.series()
                ]
            out[name] = entry
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one big string)."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, series in sorted(instrument._series.items()):
                    cumulative = 0
                    for bound, count in zip(instrument.buckets, series.counts):
                        cumulative += count
                        bucket_key = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_key)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(series.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {series.count}"
                    )
            else:
                for key, value in instrument.series():
                    lines.append(
                        f"{name}{_render_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
