"""Per-scope profiling rollups: where the time and bytes actually go.

The paper's profiling methodology attributes GPU time to CKKS operations
(HMult, ModUp, key-switch inner product, ModDown, rescale, ...); the
execution plane already tags every recorded kernel with an operation
scope.  :class:`ScopeRollup` folds either signal into one table:

* **modeled** -- from a priced trace: each
  :class:`~repro.gpu.stream.ScheduledKernel` slot of the schedule
  timeline contributes its execution interval *plus* its launch interval
  to the slot's leaf scope.  On a single-stream schedule the scheduler's
  closed form (makespan = total launch + execution) makes the attributed
  total reconcile with the :class:`~repro.perf.trace_model.TraceCostModel`
  makespan exactly -- :meth:`ScopeRollup.reconciliation` reports the
  relative gap, which the acceptance criteria pin at <= 1%.
* **eager wall clock** -- :class:`WallClockProfiler` plugs into
  :meth:`repro.core.dispatch.Dispatcher.profiling` and accumulates
  *exclusive* ``perf_counter`` time per scope while the real data plane
  executes (no trace needed).

Use :func:`rollup_trace` for the one-shot "price this trace and show me
the table" path; :class:`~repro.obs.Observability` accumulates rollups
across every drain of a serving run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class ScopeRow:
    """Accumulated attribution of one leaf scope (hmult, modup, ...)."""

    scope: str
    kernels: int = 0
    bytes_moved: float = 0.0
    int_ops: float = 0.0
    #: Modeled device-execution seconds (schedule slot intervals).
    execution_s: float = 0.0
    #: Modeled host launch seconds (launch slot intervals).
    launch_s: float = 0.0
    #: Eager wall-clock seconds (exclusive, from WallClockProfiler).
    wall_s: float = 0.0

    @property
    def modeled_s(self) -> float:
        """Total modeled seconds attributed to this scope."""
        return self.execution_s + self.launch_s

    def to_json(self) -> dict:
        return {
            "scope": self.scope,
            "kernels": self.kernels,
            "bytes_moved": self.bytes_moved,
            "int_ops": self.int_ops,
            "execution_s": self.execution_s,
            "launch_s": self.launch_s,
            "modeled_s": self.modeled_s,
            "wall_s": self.wall_s,
        }


class ScopeRollup:
    """Time and bytes attributed by scope tag, across any number of traces."""

    def __init__(self) -> None:
        self.rows: dict[str, ScopeRow] = {}
        #: Sum of the makespans of every priced trace folded in -- the
        #: figure the attributed modeled total must reconcile with.
        self.makespan_total: float = 0.0

    def _row(self, scope: str) -> ScopeRow:
        row = self.rows.get(scope)
        if row is None:
            row = self.rows[scope] = ScopeRow(scope)
        return row

    def add_report(self, trace, report) -> None:
        """Fold one priced trace (``TraceCostModel.price`` output) in.

        Attribution walks the schedule timeline, not the scope-cost
        segments: each slot's execution and launch intervals land on the
        leaf scope of the trace event the slot's ``index`` points back to,
        so launch overhead -- which the segment view does not carry -- is
        attributed too, and the totals close against the makespan.
        """
        events = trace.events
        for slot in report.schedule.timeline:
            scope = ""
            if 0 <= slot.index < len(events):
                full = events[slot.index].scope
                scope = full.rsplit("/", 1)[-1] if full else ""
            row = self._row(scope or slot.name)
            row.execution_s += slot.end - slot.start
            row.launch_s += slot.launch_end - slot.launch_start
            if 0 <= slot.index < len(events):
                kernel = events[slot.index].kernel
                row.kernels += int(round(kernel.launches))
                row.bytes_moved += kernel.bytes_moved
                row.int_ops += kernel.int_ops
            else:  # pragma: no cover - defensive
                row.kernels += 1
        self.makespan_total += report.makespan

    def add_wall(self, scope: str, seconds: float) -> None:
        """Fold eager wall-clock seconds into one scope row."""
        self._row(scope).wall_s += float(seconds)

    # -- readouts ------------------------------------------------------------

    @property
    def modeled_total(self) -> float:
        """Sum of modeled seconds attributed across all rows."""
        return sum(row.modeled_s for row in self.rows.values())

    @property
    def wall_total(self) -> float:
        return sum(row.wall_s for row in self.rows.values())

    def reconciliation(self) -> float:
        """Relative gap between attributed modeled time and the makespans.

        Zero on single-stream schedules (the scheduler's closed form);
        the acceptance criteria gate this at <= 1% for serve drains.
        """
        if self.makespan_total <= 0.0:
            return 0.0
        return abs(self.modeled_total - self.makespan_total) / self.makespan_total

    def sorted_rows(self) -> list[ScopeRow]:
        """Rows heaviest-first (modeled time, then wall time, then name)."""
        return sorted(
            self.rows.values(),
            key=lambda row: (-row.modeled_s, -row.wall_s, row.scope),
        )

    def to_json(self) -> dict:
        """Deterministic JSON form (rows sorted by scope name)."""
        return {
            "rows": [
                self.rows[scope].to_json() for scope in sorted(self.rows)
            ],
            "modeled_total_s": self.modeled_total,
            "makespan_total_s": self.makespan_total,
            "reconciliation": self.reconciliation(),
            "wall_total_s": self.wall_total,
        }

    def to_text(self) -> str:
        """Fixed-width table, heaviest scope first."""
        headers = ("scope", "kernels", "bytes", "exec_ms", "launch_ms",
                   "modeled_ms", "share", "wall_ms")
        rows = []
        total = self.modeled_total
        wall_total = self.wall_total
        for row in self.sorted_rows():
            if total > 0:
                share = row.modeled_s / total
            elif wall_total > 0:
                share = row.wall_s / wall_total
            else:
                share = 0.0
            rows.append((
                row.scope or "(unscoped)",
                str(row.kernels),
                f"{row.bytes_moved:.3g}",
                f"{row.execution_s * 1e3:.4f}",
                f"{row.launch_s * 1e3:.4f}",
                f"{row.modeled_s * 1e3:.4f}",
                f"{share * 100.0:.1f}%",
                f"{row.wall_s * 1e3:.3f}",
            ))
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for r in rows:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
        lines.append(
            f"total modeled {total * 1e3:.4f} ms over "
            f"{self.makespan_total * 1e3:.4f} ms of makespan "
            f"(reconciliation gap {self.reconciliation() * 100.0:.3f}%)"
        )
        return "\n".join(lines)


class WallClockProfiler:
    """Attributes eager ``perf_counter`` time to dispatcher scopes.

    Installed with :meth:`repro.core.dispatch.Dispatcher.profiling`; the
    dispatcher's scope guards call :meth:`enter` / :meth:`exit` around
    every tagged operation.  Time is *exclusive*: a parent scope is not
    double-charged for its children (``hmult`` excludes the nested
    ``keyswitch``), so the per-scope totals sum to the profiled region's
    scoped time.
    """

    def __init__(self) -> None:
        self.exclusive: dict[str, float] = {}
        self.inclusive: dict[str, float] = {}
        self._stack: list[list] = []  # [name, start, child_seconds]

    def enter(self, name: str) -> None:
        self._stack.append([name, perf_counter(), 0.0])

    def exit(self, name: str) -> None:
        record = self._stack.pop()
        elapsed = perf_counter() - record[1]
        self.exclusive[name] = (
            self.exclusive.get(name, 0.0) + elapsed - record[2]
        )
        self.inclusive[name] = self.inclusive.get(name, 0.0) + elapsed
        if self._stack:
            self._stack[-1][2] += elapsed

    def fold_into(self, rollup: ScopeRollup) -> None:
        """Add the exclusive per-scope seconds to a rollup's wall column."""
        for name in sorted(self.exclusive):
            rollup.add_wall(name, self.exclusive[name])


def rollup_trace(trace, model, *, streams: int = 1) -> ScopeRollup:
    """Price ``trace`` with ``model`` and return its per-scope rollup.

    The one-shot path: ``print(rollup_trace(trace, TraceCostModel(
    GPU_RTX_4090)).to_text())``.
    """
    rollup = ScopeRollup()
    rollup.add_report(trace, model.price(trace, streams=streams))
    return rollup


__all__ = ["ScopeRollup", "ScopeRow", "WallClockProfiler", "rollup_trace"]
