"""Parent/child spans on the simulated clock: the request-lifecycle trace.

The serving plane resolves every admitted request through a small state
machine (``submit -> admission -> queued -> fused -> drain -> retry ->
complete/error``).  :class:`SpanTracer` records that lifecycle as a tree
of :class:`Span` objects stamped on the server's
:class:`~repro.serve.policy.SimulatedClock`, so a chaos replay yields a
fully deterministic trace: same seeds, same spans, same timestamps.

Spans cross function boundaries (a request span opens at ``submit`` and
closes when the drain loop resolves it), so the primary API is explicit
:meth:`SpanTracer.begin` / :meth:`SpanTracer.finish` with an explicit
parent.  :meth:`SpanTracer.span` is the context-manager convenience for
code-shaped scopes (implicit parent via a stack).

:meth:`SpanTracer.validate` asserts structural integrity -- every parent
exists and every finished child lies inside its finished parent's
interval -- which the test suite runs over recorded serve traces.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed, attributed node of the request-lifecycle tree."""

    span_id: int
    name: str
    start: float
    parent_id: int | None = None
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span duration in simulated seconds (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class SpanTracer:
    """Records spans against a clock object exposing ``now()``.

    ``clock`` may be ``None`` (timestamps then default to 0.0 unless
    passed explicitly via ``at=``); the serving plane installs its
    simulated clock when an :class:`~repro.obs.Observability` object is
    attached to a server.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self._stack: list[int] = []

    def _now(self, at: float | None) -> float:
        if at is not None:
            return float(at)
        if self.clock is not None:
            return float(self.clock.now())
        return 0.0

    def begin(self, name: str, *, parent: Span | None = None,
              at: float | None = None, **attributes) -> Span:
        """Open a span; the caller keeps the handle and finishes it later."""
        if parent is None and self._stack:
            parent_id: int | None = self._stack[-1]
        else:
            parent_id = None if parent is None else parent.span_id
        span = Span(
            span_id=len(self.spans),
            name=name,
            start=self._now(at),
            parent_id=parent_id,
            attributes=dict(attributes),
        )
        self.spans.append(span)
        return span

    def finish(self, span: Span, *, at: float | None = None,
               **attributes) -> Span:
        """Close a span, merging any final attributes (e.g. the outcome)."""
        span.end = self._now(at)
        if attributes:
            span.attributes.update(attributes)
        return span

    def event(self, name: str, *, parent: Span | None = None,
              at: float | None = None, **attributes) -> Span:
        """A zero-duration span (instantaneous lifecycle transitions)."""
        span = self.begin(name, parent=parent, at=at, **attributes)
        return self.finish(span, at=span.start)

    @contextmanager
    def span(self, name: str, *, at: float | None = None,
             **attributes) -> Iterator[Span]:
        """Context-manager form with implicit parenting via a stack."""
        opened = self.begin(name, at=at, **attributes)
        self._stack.append(opened.span_id)
        try:
            yield opened
        finally:
            self._stack.pop()
            if opened.end is None:
                self.finish(opened)

    # -- views ---------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Top-level spans (request roots, drain roots) in start order."""
        return [span for span in self.spans if span.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def validate(self) -> None:
        """Assert structural integrity of the recorded span tree.

        Checks: span ids are dense and ordered, parents exist and were
        opened no later than their children, and every finished child's
        interval lies within its finished parent's interval.
        """
        for index, span in enumerate(self.spans):
            if span.span_id != index:
                raise AssertionError(
                    f"span id {span.span_id} at position {index}: ids must "
                    f"be dense and ordered"
                )
            if span.parent_id is None:
                continue
            if not 0 <= span.parent_id < index:
                raise AssertionError(
                    f"span {span.span_id} ({span.name!r}) references "
                    f"parent {span.parent_id}, which does not precede it"
                )
            parent = self.spans[span.parent_id]
            if span.start < parent.start:
                raise AssertionError(
                    f"span {span.span_id} ({span.name!r}) starts at "
                    f"{span.start} before its parent {parent.name!r} "
                    f"at {parent.start}"
                )
            if (span.end is not None and parent.end is not None
                    and span.end > parent.end):
                raise AssertionError(
                    f"span {span.span_id} ({span.name!r}) ends at "
                    f"{span.end} after its parent {parent.name!r} "
                    f"at {parent.end}"
                )


__all__ = ["Span", "SpanTracer"]
