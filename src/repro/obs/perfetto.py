"""Chrome-trace-event / Perfetto JSON export of kernels and spans.

One loadable file (open it at https://ui.perfetto.dev or
``chrome://tracing``) renders both halves of a serving run on a shared
simulated-time axis:

* **kernel tracks** -- every recorded drain's
  :class:`~repro.gpu.stream.ScheduleResult` timeline, one process per
  GPU device with one thread per stream (plus a ``host launch`` thread
  for the kernel-launch intervals of §III-F.1 and an ``interconnect``
  process with one thread per link for cross-device transfers).  Slice
  names are the kernel names; the operation scope tag rides in ``args``.
* **request spans** -- the :class:`~repro.obs.spans.SpanTracer` tree
  (submit/admission/queued/drain/fused/retry), one thread per root span,
  nested by time containment.

Events use the complete-event form (``"ph": "X"``) with microsecond
timestamps; metadata events (``"ph": "M"``) name the processes and
threads.  Every event carries the full required key set
(``ph/ts/dur/pid/tid/name``) and the ``X`` events are emitted in
non-decreasing timestamp order, which the exporter tests pin down.
"""

from __future__ import annotations

import json

#: Process-id bases of the three track families.
PID_SPANS = 1
PID_DEVICE_BASE = 100
PID_LINKS = 900

#: Thread id of each device's host-side launch track.
TID_LAUNCH = 99

#: Simulated seconds -> trace microseconds.
_US = 1e6


def _meta(pid: int, tid: int, kind: str, name: str) -> dict:
    return {
        "ph": "M", "ts": 0, "dur": 0, "pid": pid, "tid": tid,
        "name": kind, "args": {"name": name},
    }


def _slice(name: str, ts: float, dur: float, pid: int, tid: int,
           args: dict) -> dict:
    return {
        "ph": "X",
        "ts": round(ts * _US, 3),
        "dur": round(max(dur, 0.0) * _US, 3),
        "pid": pid,
        "tid": tid,
        "name": name,
        "args": args,
    }


def chrome_trace_events(*, timelines=(), spans=()) -> list[dict]:
    """Build the flat event list (metadata first, slices by timestamp).

    ``timelines`` is an iterable of drain records, each exposing
    ``offset`` (simulated start time of the drain), ``schedule`` (a
    :class:`~repro.gpu.stream.ScheduleResult`), ``scopes`` (leaf scope
    per trace-event index) and ``label``; ``spans`` is an iterable of
    :class:`~repro.obs.spans.Span` (unfinished spans are skipped).
    """
    slices: list[dict] = []
    devices: set[int] = set()
    streams: set[tuple[int, int]] = set()
    launch_tracks: set[int] = set()
    links: dict[tuple[int, int], int] = {}

    for record in timelines:
        offset = float(record.offset)
        scopes = record.scopes
        label = record.label
        for slot in record.schedule.timeline:
            scope = (
                scopes[slot.index]
                if 0 <= slot.index < len(scopes) else ""
            )
            args = {"scope": scope, "drain": label, "index": slot.index}
            if slot.link is not None:
                tid = links.setdefault(slot.link, len(links))
                slices.append(_slice(
                    slot.name, offset + slot.start, slot.end - slot.start,
                    PID_LINKS, tid, args,
                ))
                continue
            devices.add(slot.device)
            streams.add((slot.device, slot.stream))
            slices.append(_slice(
                slot.name, offset + slot.start, slot.end - slot.start,
                PID_DEVICE_BASE + slot.device, slot.stream, args,
            ))
            if slot.launch_end > slot.launch_start:
                launch_tracks.add(slot.device)
                slices.append(_slice(
                    f"launch {slot.name}",
                    offset + slot.launch_start,
                    slot.launch_end - slot.launch_start,
                    PID_DEVICE_BASE + slot.device, TID_LAUNCH, args,
                ))

    # Serve spans: one thread per root tree, nesting by containment.
    root_tid: dict[int, int] = {}
    span_list = [span for span in spans if span.finished]
    by_id = {span.span_id: span for span in span_list}
    for span in span_list:
        top = span
        while top.parent_id is not None and top.parent_id in by_id:
            top = by_id[top.parent_id]
        tid = root_tid.setdefault(top.span_id, len(root_tid))
        args = {str(k): v for k, v in span.attributes.items()}
        slices.append(_slice(span.name, span.start, span.duration,
                             PID_SPANS, tid, args))

    metadata: list[dict] = []
    if root_tid:
        metadata.append(_meta(PID_SPANS, 0, "process_name", "serve spans"))
        for root_id, tid in sorted(root_tid.items(), key=lambda kv: kv[1]):
            metadata.append(_meta(
                PID_SPANS, tid, "thread_name",
                f"{by_id[root_id].name} #{root_id}",
            ))
    for device in sorted(devices):
        pid = PID_DEVICE_BASE + device
        metadata.append(_meta(pid, 0, "process_name", f"GPU device {device}"))
        for dev, stream in sorted(streams):
            if dev == device:
                metadata.append(_meta(pid, stream, "thread_name",
                                      f"stream {stream}"))
        if device in launch_tracks:
            metadata.append(_meta(pid, TID_LAUNCH, "thread_name",
                                  "host launch"))
    if links:
        metadata.append(_meta(PID_LINKS, 0, "process_name", "interconnect"))
        for pair, tid in sorted(links.items(), key=lambda kv: kv[1]):
            metadata.append(_meta(PID_LINKS, tid, "thread_name",
                                  f"link {pair[0]}-{pair[1]}"))

    slices.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], -e["dur"]))
    return metadata + slices


def chrome_trace_document(*, timelines=(), spans=()) -> dict:
    """The full Chrome-trace JSON document."""
    return {
        "traceEvents": chrome_trace_events(timelines=timelines, spans=spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.perfetto",
            "time_unit": "simulated microseconds",
        },
    }


def export_chrome_trace(path=None, *, timelines=(), spans=()) -> dict:
    """Build the document and (when ``path`` is given) write it to disk."""
    document = chrome_trace_document(timelines=timelines, spans=spans)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
    return document


__all__ = [
    "chrome_trace_document",
    "chrome_trace_events",
    "export_chrome_trace",
]
