"""The observability facade: one object wiring metrics, spans and traces.

:class:`Observability` is what :meth:`repro.api.session.CKKSSession.observability`
returns and what :class:`~repro.serve.executor.Server` accepts via its
``observability=`` parameter.  It bundles:

* a :class:`~repro.obs.registry.MetricsRegistry` (instruments re-homed
  from every plane via collectors -- ``watch_*`` methods);
* a :class:`~repro.obs.spans.SpanTracer` on the server's simulated clock
  (the request-lifecycle trace the server's hooks feed);
* a :class:`~repro.obs.rollup.ScopeRollup` accumulating per-scope
  modeled time/bytes from every priced drain;
* the drain timeline records the Perfetto exporter renders.

**Zero cost when disabled.**  ``Observability(enabled=False)`` is inert:
every hook early-outs, :meth:`span` hands back a shared no-op context
(the same trick as :meth:`repro.core.dispatch.Dispatcher.scope`), and a
server given a disabled object behaves exactly as one given ``None`` --
the run-quick benchmark gates the residual overhead of the hot-path
seam at <= 5%.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.core.dispatch import get_dispatcher
from repro.obs.perfetto import export_chrome_trace
from repro.obs.registry import BYTES_BUCKETS, MetricsRegistry
from repro.obs.rollup import ScopeRollup, WallClockProfiler
from repro.obs.spans import SpanTracer


class _NullContext:
    """Shared no-op context (the disabled-observability hot path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()


@dataclass(frozen=True)
class DrainTimeline:
    """One priced drain, positioned on the simulated clock.

    ``offset`` is the drain's dispatch time, so its modeled kernel
    schedule (which starts at 0) lands at the right spot on the shared
    export axis; ``scopes`` maps trace-event index -> leaf scope tag.
    """

    offset: float
    label: str
    schedule: object
    scopes: tuple[str, ...]


class Observability:
    """Unified observability plane: registry + spans + timelines + rollups."""

    def __init__(self, *, enabled: bool = True,
                 registry: MetricsRegistry | None = None,
                 clock=None) -> None:
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = SpanTracer(clock=clock)
        self.rollup = ScopeRollup()
        self.timelines: list[DrainTimeline] = []
        self._watched: set[int] = set()
        self._pools: dict[str, object] = {}

    # -- clock ---------------------------------------------------------------

    def adopt_clock(self, clock) -> None:
        """Stamp spans on ``clock`` unless a clock was set explicitly."""
        if self.tracer.clock is None:
            self.tracer.clock = clock

    # -- ad-hoc spans --------------------------------------------------------

    def span(self, name: str, **attributes):
        """A user-facing span context; shared no-op when disabled."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self.tracer.span(name, **attributes)

    # -- watchers (collector re-homing) --------------------------------------

    def _watch_once(self, source) -> bool:
        """True the first time ``source`` is watched (idempotence guard)."""
        key = id(source)
        if key in self._watched:
            return False
        self._watched.add(key)
        return True

    def watch_pool(self, pool, name: str = "default") -> None:
        """Publish a memory pool's accounting as function-backed gauges."""
        if not self.enabled or not self._watch_once(pool):
            return
        self._pools[name] = pool
        registry = self.registry
        registry.gauge(
            "memory_pool_bytes_in_use", "Live allocated bytes in the pool",
        ).set_function(lambda: pool.bytes_in_use, pool=name)
        registry.gauge(
            "memory_pool_peak_bytes",
            "High-water mark of pool usage (reset_peak() rewinds it)",
        ).set_function(lambda: pool.peak_bytes, pool=name)
        registry.gauge(
            "memory_pool_internal_fragmentation",
            "Fraction of live allocated bytes lost to granularity rounding",
        ).set_function(lambda: pool.internal_fragmentation(), pool=name)
        registry.gauge(
            "memory_pool_utilization",
            "Fraction of pool capacity in use (0.0 when unbounded)",
        ).set_function(lambda: pool.utilization(), pool=name)
        registry.gauge(
            "memory_pool_allocations", "Allocations admitted by the pool",
        ).set_function(lambda: pool.allocation_count, pool=name)

    def watch_queue(self, queue) -> None:
        """Publish a bucket queue's live depths (one series per bucket)."""
        if not self.enabled or not self._watch_once(queue):
            return
        depth_gauge = self.registry.gauge(
            "serve_bucket_depth", "Queued requests per shape bucket",
        )
        total_gauge = self.registry.gauge(
            "serve_queue_depth", "Total queued requests across all buckets",
        )

        def collect() -> None:
            # Rebuild from scratch so drained buckets drop their series.
            depth_gauge.clear()
            for key, size in queue.sizes().items():
                depth_gauge.set(size, bucket=repr(key))
            total_gauge.set(queue.depth)

        self.registry.register_collector(collect)

    def watch_injector(self, injector) -> None:
        """Publish fault-injector fire counts from its append-only log."""
        if not self.enabled or not self._watch_once(injector):
            return
        counter = self.registry.counter(
            "faults_fired_total", "Fault-injector events by kind",
        )

        def collect() -> None:
            counts: dict[str, int] = {}
            for entry in injector.log:
                kind = str(entry[0])
                counts[kind] = counts.get(kind, 0) + 1
            for kind, count in counts.items():
                counter.set_total(count, kind=kind)

        self.registry.register_collector(collect)

    def watch_metrics(self, metrics) -> None:
        """Re-home a server's :class:`ServeMetrics` onto the registry."""
        if not self.enabled or not self._watch_once(metrics):
            return
        metrics.bind_registry(self.registry)

    # -- server hooks --------------------------------------------------------

    def record_drain(self, trace, report, *, offset: float,
                     label: str = "") -> None:
        """Fold one priced drain into the rollup and the export timeline."""
        if not self.enabled:
            return
        self.rollup.add_report(trace, report)
        scopes = tuple(
            event.scope.rsplit("/", 1)[-1] if event.scope else ""
            for event in trace.events
        )
        self.timelines.append(DrainTimeline(
            offset=float(offset), label=label,
            schedule=report.schedule, scopes=scopes,
        ))

    def reset_drain_peaks(self) -> None:
        """Rewind every watched pool's high-water mark (drain start)."""
        if not self.enabled:
            return
        for pool in self._pools.values():
            pool.reset_peak()

    def observe_drain_peaks(self) -> None:
        """Sample every watched pool's per-drain peak (drain end)."""
        if not self.enabled or not self._pools:
            return
        histogram = self.registry.histogram(
            "serve_drain_peak_bytes",
            "Peak pool bytes reached within one drain",
            buckets=BYTES_BUCKETS,
        )
        for name, pool in self._pools.items():
            histogram.observe(pool.peak_bytes, pool=name)

    # -- eager profiling -----------------------------------------------------

    @contextmanager
    def profile(self) -> Iterator[WallClockProfiler | None]:
        """Attribute eager wall-clock time to dispatcher scopes.

        Folds the profiler's exclusive per-scope seconds into
        :attr:`rollup` (the ``wall_s`` column) on exit.  No-op when
        disabled (yields ``None``; the dispatcher hot path stays on the
        shared null context).
        """
        if not self.enabled:
            yield None
            return
        profiler = WallClockProfiler()
        with get_dispatcher().profiling(profiler):
            yield profiler
        profiler.fold_into(self.rollup)

    # -- readouts ------------------------------------------------------------

    def report(self) -> ScopeRollup:
        """The accumulated per-scope rollup (``obs.report()``)."""
        return self.rollup

    def to_prometheus(self) -> str:
        """Prometheus text dump of the registry (collectors included)."""
        return self.registry.to_prometheus()

    def snapshot(self) -> dict:
        """Deterministic registry snapshot (collectors included)."""
        return self.registry.snapshot()

    def export_chrome_trace(self, path=None) -> dict:
        """Write/return the Perfetto JSON covering kernels and spans."""
        return export_chrome_trace(
            path, timelines=self.timelines, spans=self.tracer.spans,
        )


__all__ = ["DrainTimeline", "Observability"]
