"""Recorded-arrival replay: drive a server through a traffic trace.

Chaos testing needs load that looks like production -- bursts, lulls,
diurnal swings -- but replays *identically* in CI.  Everything here is
seeded and runs on the server's simulated clock, so one
``(arrival seed, fault seed)`` pair pins the entire run: the same
requests arrive at the same times, the same fault events fire, the same
drains degrade, and the same responses come back bit-for-bit.

Arrival generators (all return a sorted ``numpy`` array of absolute
simulated timestamps):

* :func:`poisson_arrivals` -- memoryless open-loop traffic at a fixed
  rate (exponential gaps);
* :func:`burst_arrivals` -- ``bursts`` near-simultaneous clumps spaced
  ``burst_gap`` apart (the admission controller's stress case);
* :func:`diurnal_arrivals` -- a sinusoidally-modulated Poisson process
  (time-rescaled through the numerically-inverted cumulative intensity),
  the day/night load curve.

:class:`ReplayDriver` feeds a trace through one
:class:`~repro.serve.executor.Server`: before each arrival it services
every pending drain whose policy timeout falls due (so no request ever
waits past its deadline just because the trace was quiet), then advances
the clock to the arrival and submits.  After the last arrival it drains
the server dry and folds the responses plus
:class:`~repro.serve.metrics.ServeMetrics` into a :class:`ReplayReport`
-- availability, shed rate, retry/degradation counts, p95 latency and
the deadline-violation count the acceptance gate pins at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.serve.executor import Server
from repro.serve.request import OpProgram, Request


def poisson_arrivals(count: int, *, rate: float, seed: int,
                     start: float = 0.0) -> np.ndarray:
    """``count`` Poisson arrivals at ``rate`` requests per simulated second."""
    if count < 1:
        raise ValueError("an arrival trace needs at least one request")
    if rate <= 0:
        raise ValueError("the arrival rate must be positive")
    rng = np.random.default_rng(seed)
    return float(start) + np.cumsum(rng.exponential(1.0 / rate, int(count)))


def burst_arrivals(count: int, *, bursts: int, burst_gap: float,
                   jitter: float = 1e-5, seed: int = 0,
                   start: float = 0.0) -> np.ndarray:
    """``count`` arrivals in ``bursts`` clumps spaced ``burst_gap`` apart.

    Within a burst the arrivals land at seeded offsets inside ``jitter``
    simulated seconds -- effectively simultaneous relative to any
    realistic ``max_wait``, which is exactly what exercises admission
    control and the fused-batch policy at once.
    """
    if count < 1:
        raise ValueError("an arrival trace needs at least one request")
    if bursts < 1:
        raise ValueError("at least one burst is required")
    if burst_gap <= 0:
        raise ValueError("bursts must be spaced a positive gap apart")
    rng = np.random.default_rng(seed)
    base, extra = divmod(int(count), int(bursts))
    times: list[float] = []
    for burst in range(int(bursts)):
        size = base + (1 if burst < extra else 0)
        if size == 0:
            continue
        offsets = np.sort(rng.uniform(0.0, jitter, size))
        times.extend(float(start) + burst * float(burst_gap) + offsets)
    return np.asarray(times)


def diurnal_arrivals(count: int, *, period: float, seed: int,
                     peak_ratio: float = 4.0, start: float = 0.0) -> np.ndarray:
    """``count`` arrivals over one ``period`` with a day/night intensity swing.

    The intensity is ``1 + (peak_ratio - 1)·(1 + sin)/2`` (so the peak is
    ``peak_ratio`` times the trough); arrivals are drawn by time-rescaling
    uniform variates through the numerically-inverted cumulative
    intensity, which keeps the whole trace a pure function of the seed.
    """
    if count < 1:
        raise ValueError("an arrival trace needs at least one request")
    if period <= 0:
        raise ValueError("the diurnal period must be positive")
    if peak_ratio < 1.0:
        raise ValueError("peak_ratio is peak/trough intensity, at least 1.0")
    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, float(period), 4097)
    intensity = 1.0 + (peak_ratio - 1.0) * 0.5 * (
        1.0 + np.sin(2.0 * np.pi * grid / period)
    )
    cumulative = np.concatenate(([0.0], np.cumsum(
        0.5 * (intensity[1:] + intensity[:-1]) * np.diff(grid)
    )))
    cumulative /= cumulative[-1]
    quantiles = np.sort(rng.random(int(count)))
    return float(start) + np.interp(quantiles, cumulative, grid)


@dataclass
class ReplayReport:
    """Availability/robustness readout of one replayed trace."""

    submitted: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    availability: float = 1.0
    retries: int = 0
    degraded_drains: int = 0
    deadline_misses: int = 0
    device_losses: int = 0
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    #: Responses per typed error class name (empty on a clean run).
    error_kinds: dict = field(default_factory=dict)
    #: OK responses dispatched strictly after their deadline -- the
    #: acceptance invariant pins this at zero.
    deadline_violations: int = 0

    def summary(self) -> dict:
        """Machine-readable report (benchmark artifacts embed this)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "availability": self.availability,
            "retries": self.retries,
            "degraded_drains": self.degraded_drains,
            "deadline_misses": self.deadline_misses,
            "device_losses": self.device_losses,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "error_kinds": dict(sorted(self.error_kinds.items())),
            "deadline_violations": self.deadline_violations,
        }

    def publish(self, registry) -> None:
        """Restate this report through a ``MetricsRegistry``.

        The one-source-of-truth seam ``benchmarks/bench_faults.py`` reads:
        every availability/shed/retry/latency figure lands on labeled
        ``replay_*`` instruments, so downstream consumers need no
        hand-folding of :class:`~repro.serve.metrics.ServeMetrics`
        counters.  ``registry`` is duck-typed
        (:class:`repro.obs.registry.MetricsRegistry`).
        """
        requests = registry.counter(
            "replay_requests_total", "Replayed requests by outcome",
        )
        requests.set_total(self.submitted, outcome="submitted")
        requests.set_total(self.admitted, outcome="admitted")
        requests.set_total(self.shed, outcome="shed")
        requests.set_total(self.completed, outcome="completed")
        requests.set_total(self.failed, outcome="failed")
        registry.gauge(
            "replay_availability",
            "completed / admitted over the replayed trace",
        ).set(self.availability)
        events = registry.counter(
            "replay_events_total", "Control-plane events during the replay",
        )
        events.set_total(self.retries, kind="retry")
        events.set_total(self.degraded_drains, kind="degraded_drain")
        events.set_total(self.deadline_misses, kind="deadline_miss")
        events.set_total(self.device_losses, kind="device_loss")
        events.set_total(self.deadline_violations, kind="deadline_violation")
        latency = registry.gauge(
            "replay_latency_seconds",
            "Queueing latency percentiles of the replayed trace",
        )
        latency.set(self.p50_latency, quantile="0.5")
        latency.set(self.p95_latency, quantile="0.95")
        errors = registry.counter(
            "replay_errors_total", "Failed responses by typed error kind",
        )
        for kind, count in sorted(self.error_kinds.items()):
            errors.set_total(count, kind=kind)


class ReplayDriver:
    """Feeds an arrival trace through one server on the simulated clock.

    ``vector_factory`` is called with the arrival index and must return a
    fresh input for that request (a :class:`~repro.api.vector.CipherVector`
    or raw backend handle).  ``deadline_offset``, when set, gives every
    request the absolute deadline ``arrival + deadline_offset``.

    Between arrivals the driver services every pending policy timeout
    that falls due -- the same loop :meth:`Server.drain` runs, stopped at
    the next arrival -- so a lull in the trace never silently parks
    queued requests past their deadlines.  All submitted requests are
    kept on :attr:`requests` for response-level assertions (bit-identity,
    deadline checks).
    """

    def __init__(self, server: Server, program: OpProgram,
                 vector_factory: Callable[[int], object], *,
                 deadline_offset: float | None = None,
                 registry=None) -> None:
        self.server = server
        self.program = program
        self.vector_factory = vector_factory
        self.deadline_offset = (
            None if deadline_offset is None else float(deadline_offset)
        )
        #: Optional MetricsRegistry the final report is published through
        #: (defaults to the server's observability registry when wired).
        self.registry = registry
        if self.registry is None and getattr(server, "obs", None) is not None:
            self.registry = server.obs.registry
        self.requests: list[Request] = []

    def run(self, arrivals: Sequence[float]) -> ReplayReport:
        """Replay the trace to completion and report."""
        server = self.server
        for index, arrival in enumerate(arrivals):
            arrival = float(arrival)
            # Service every drain obligation that falls due before this
            # arrival (partial batches whose wait budget expires mid-lull).
            while server.pending:
                timeout = server.next_timeout()
                if timeout is None or timeout > arrival:
                    break
                server.clock.advance_to(timeout)
                server.poll()
            server.clock.advance_to(arrival)
            deadline = (
                None if self.deadline_offset is None
                else arrival + self.deadline_offset
            )
            self.requests.append(
                server.submit(self.program, self.vector_factory(index),
                              deadline=deadline)
            )
        server.drain()
        report = self.report()
        if self.registry is not None:
            report.publish(self.registry)
        return report

    def report(self) -> ReplayReport:
        """Fold responses and server metrics into a :class:`ReplayReport`."""
        metrics = self.server.metrics
        error_kinds: dict[str, int] = {}
        deadline_violations = 0
        for request in self.requests:
            response = request.response()
            if response.ok:
                if (request.deadline is not None
                        and response.dispatch_time > request.deadline):
                    deadline_violations += 1
            else:
                kind = response.error_kind
                error_kinds[kind] = error_kinds.get(kind, 0) + 1
        return ReplayReport(
            submitted=metrics.submitted,
            admitted=metrics.admitted,
            shed=metrics.shed_requests,
            completed=metrics.completed,
            failed=metrics.failed,
            availability=metrics.availability,
            retries=metrics.retries,
            degraded_drains=metrics.degraded_drains,
            deadline_misses=metrics.deadline_misses,
            device_losses=metrics.device_losses,
            p50_latency=metrics.p50_latency,
            p95_latency=metrics.p95_latency,
            error_kinds=error_kinds,
            deadline_violations=deadline_violations,
        )


__all__ = [
    "ReplayDriver",
    "ReplayReport",
    "poisson_arrivals",
    "burst_arrivals",
    "diurnal_arrivals",
]
