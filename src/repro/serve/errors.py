"""Typed failure semantics of the serving plane.

Every way a request can fail in production maps to one class here, so a
client never sees a bare traceback from deep inside the data plane: a
:class:`~repro.serve.request.Response` either carries a result or one of
these typed errors (read it through ``response().error`` /
``response().error_kind``).  The taxonomy:

* :class:`RequestRejected` -- the request never entered the queue:
  admission control shed it (queue bound or memory high watermark) or the
  vector failed shape validation at :meth:`~repro.serve.executor.Server.submit`.
* :class:`DeadlineExceeded` -- the request was admitted but its absolute
  simulated-clock deadline passed before a drain could serve it (e.g. the
  drain loop spent the slack in retry backoff).
* :class:`TransientFault` -- a retryable drain failure (injected by a
  :class:`~repro.serve.faults.FaultInjector` or a recoverable device
  hiccup).  Clients never see this directly: the server retries with
  backoff and only surfaces :class:`DrainFailed` once the budget is spent.
* :class:`DrainFailed` -- a drain kept failing past the
  :class:`~repro.serve.policy.RetryPolicy` budget; the last underlying
  error is chained as ``__cause__``.
* :class:`DeviceLost` -- the cluster has no surviving device to run the
  drain on (every device is marked down on the
  :class:`~repro.cluster.topology.ClusterTopology`).

All of these derive from :class:`ServeError`, which is what the top-level
``repro`` package exports for catch-all handling.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every typed serving-plane failure."""


class RequestRejected(ServeError):
    """The request was refused at submission (admission control/validation).

    ``reason`` is a stable machine-readable tag: ``"queue-full"``,
    ``"memory-pressure"``, ``"invalid-shape"``, ``"invalid-level"`` or
    ``"invalid-scale"``.
    """

    def __init__(self, message: str, *, reason: str = "rejected") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceeded(ServeError):
    """An admitted request's absolute deadline passed before execution."""


class TransientFault(ServeError):
    """A retryable drain failure (the server retries with backoff)."""


class DrainFailed(ServeError):
    """A drain exhausted its retry budget; the last error is ``__cause__``."""


class DeviceLost(ServeError):
    """No surviving cluster device can run the drain."""


__all__ = [
    "ServeError",
    "RequestRejected",
    "DeadlineExceeded",
    "TransientFault",
    "DrainFailed",
    "DeviceLost",
]
