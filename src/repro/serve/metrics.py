"""Serving-plane observability: queue depth, batch sizes, latency, GPU model.

The metrics a dynamic-batching deployment is tuned by:

* **queue depth** samples (taken at every submit and drain);
* the **fused-batch-size histogram** -- the direct readout of how well the
  policy converts offered load into launch amortisation;
* **p50/p95 queueing latency** on the simulated clock (deterministic
  nearest-rank percentiles, no wall-clock flakiness);
* **modeled GPU throughput**: when the server is given a
  :class:`~repro.perf.trace_model.TraceCostModel`, every drained batch's
  recorded kernel stream is priced and accumulated here, so
  ``completed / modeled_seconds`` is the requests-per-modeled-GPU-second
  figure the serve benchmark gates on;
* the **robustness counters** of the fault-tolerant control plane:
  ``shed_requests`` (admission control), ``degraded_drains`` (the
  footprint/retry degradation cascade), ``retries``, ``deadline_misses``
  and ``device_losses``, rolled up into the ``availability`` figure
  (completed / admitted) the chaos-replay benchmark gates at >= 99%.

All fields stay plain attributes (the back-compat surface every caller
already reads); :meth:`ServeMetrics.bind_registry` re-homes them onto a
:class:`repro.obs.registry.MetricsRegistry` through a read-time
collector, so publishing costs nothing on the serving hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class ServeMetrics:
    """Counters and samples accumulated by one :class:`~repro.serve.executor.Server`."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    footprint_fallbacks: int = 0
    #: Requests shed by admission control (queue bound / memory watermark).
    shed_requests: int = 0
    #: Drains that completed at reduced fused size (footprint cascade or
    #: retry-driven halving) instead of failing their requests.
    degraded_drains: int = 0
    #: Drain retry attempts actually scheduled (transient faults / OOM).
    retries: int = 0
    #: Admitted requests resolved with :class:`DeadlineExceeded`.
    deadline_misses: int = 0
    #: Cluster devices lost (``device_down`` fault events handled).
    device_losses: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    queue_depth_samples: list[tuple[float, int]] = field(default_factory=list)
    modeled_seconds: float = 0.0
    modeled_kernels: int = 0
    #: Modeled GPU seconds attributed to each cluster device ({0: total}
    #: when serving single-device).
    device_seconds: dict[int, float] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------

    def observe_queue_depth(self, now: float, depth: int) -> None:
        """Sample the total queue depth at a simulated timestamp."""
        self.queue_depth_samples.append((float(now), int(depth)))

    def record_batch(self, size: int, latencies: list[float], *,
                     failed: bool = False) -> None:
        """Record one drained batch and its members' queueing latencies."""
        self.batch_sizes.append(int(size))
        if failed:
            self.failed += size
        else:
            self.completed += size
        self.latencies.extend(float(v) for v in latencies)

    def record_modeled(self, seconds: float, kernels: int, *,
                       devices: tuple[int, ...] = (0,)) -> None:
        """Accumulate one priced trace (modeled GPU time of a drain).

        ``devices`` are the cluster devices the drain occupied -- each is
        charged the full drain time, since a sharded drain holds all of
        its devices for its makespan.  With the default the metrics behave
        exactly as before (everything on device 0).  Devices drain
        concurrently, so the cluster-wide modeled makespan is the
        *maximum* per-device total, not the sum.
        """
        self.modeled_seconds += float(seconds)
        self.modeled_kernels += int(kernels)
        for device in devices:
            self.device_seconds[device] = (
                self.device_seconds.get(device, 0.0) + float(seconds)
            )

    # -- readouts ------------------------------------------------------------

    @property
    def admitted(self) -> int:
        """Requests that entered the queue (submitted minus shed)."""
        return self.submitted - self.shed_requests

    @property
    def availability(self) -> float:
        """Fraction of *admitted* requests that completed successfully.

        The chaos-replay figure ``benchmarks/bench_faults.py`` gates:
        shed requests are excluded (load shedding is the admission
        controller doing its job), so this measures whether every request
        the server *accepted* was actually served.  1.0 before any
        admission (vacuously available).
        """
        admitted = self.admitted
        if admitted <= 0:
            return 1.0
        return self.completed / admitted

    def batch_histogram(self) -> dict[int, int]:
        """How many drains ran at each fused batch size."""
        histogram: dict[int, int] = {}
        for size in self.batch_sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def mean_batch_size(self) -> float:
        """Average fused batch size across all drains (0.0 before any)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def max_queue_depth(self) -> int:
        """Deepest the queue ever got (0 before any sample)."""
        if not self.queue_depth_samples:
            return 0
        return max(depth for _, depth in self.queue_depth_samples)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the queueing latencies (deterministic)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50_latency(self) -> float:
        """Median queueing latency (simulated seconds)."""
        return self.latency_percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile queueing latency (simulated seconds)."""
        return self.latency_percentile(0.95)

    @property
    def modeled_makespan(self) -> float:
        """Modeled wall time of all drains: max per-device total.

        Buckets on different devices drain concurrently; equal to
        :attr:`modeled_seconds` when everything ran on one device.
        """
        if not self.device_seconds:
            return self.modeled_seconds
        return max(self.device_seconds.values())

    def device_utilization(self) -> dict[int, float]:
        """Per-device busy fraction of the modeled cluster makespan."""
        makespan = self.modeled_makespan
        if makespan <= 0.0:
            return {}
        return {
            device: seconds / makespan
            for device, seconds in sorted(self.device_seconds.items())
        }

    def modeled_throughput(self) -> float:
        """Completed requests per modeled second of serving wall time.

        Uses the cluster makespan (max per-device busy time), which for a
        single device is exactly the old completed/modeled_seconds.
        """
        makespan = self.modeled_makespan
        if makespan <= 0.0:
            return 0.0
        return self.completed / makespan

    # -- registry re-homing --------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Publish these metrics through a ``MetricsRegistry`` collector.

        Registers a collector that restates the current totals into
        labeled instruments at every registry readout -- the plain
        attributes above remain the source of truth (and the back-compat
        surface), so recording stays free of registry calls.  Idempotent
        per registry.  ``registry`` is duck-typed
        (:class:`repro.obs.registry.MetricsRegistry`).
        """
        bound = getattr(self, "_bound_registries", None)
        if bound is None:
            bound = self._bound_registries = set()
        if id(registry) in bound:
            return
        bound.add(id(registry))

        requests = registry.counter(
            "serve_requests_total", "Requests by lifecycle outcome",
        )
        drains = registry.counter(
            "serve_drains_total", "Bucket drains executed",
        )
        robustness = registry.counter(
            "serve_faults_handled_total",
            "Control-plane events by kind (retry/shed/degrade/...)",
        )
        availability = registry.gauge(
            "serve_availability", "completed / admitted (1.0 pre-admission)",
        )
        mean_batch = registry.gauge(
            "serve_mean_batch_size", "Average fused batch size over all drains",
        )
        max_depth = registry.gauge(
            "serve_max_queue_depth", "Deepest the queue ever got",
        )
        latency = registry.gauge(
            "serve_queue_latency_seconds",
            "Queueing latency percentiles on the simulated clock",
        )
        modeled = registry.gauge(
            "serve_modeled_gpu_seconds",
            "Modeled GPU seconds by cluster device (priced drains)",
        )
        modeled_kernels = registry.counter(
            "serve_modeled_kernels_total", "Kernel launches in priced drains",
        )
        batch_hist = registry.histogram(
            "serve_fused_batch_size", "Fused batch size per drain",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )

        def collect() -> None:
            requests.set_total(self.submitted, outcome="submitted")
            requests.set_total(self.admitted, outcome="admitted")
            requests.set_total(self.completed, outcome="completed")
            requests.set_total(self.failed, outcome="failed")
            drains.set_total(len(self.batch_sizes))
            robustness.set_total(self.shed_requests, kind="shed")
            robustness.set_total(self.degraded_drains, kind="degraded_drain")
            robustness.set_total(self.retries, kind="retry")
            robustness.set_total(self.deadline_misses, kind="deadline_miss")
            robustness.set_total(self.device_losses, kind="device_loss")
            robustness.set_total(
                self.footprint_fallbacks, kind="footprint_fallback"
            )
            availability.set(self.availability)
            mean_batch.set(self.mean_batch_size)
            max_depth.set(self.max_queue_depth)
            latency.set(self.p50_latency, quantile="0.5")
            latency.set(self.p95_latency, quantile="0.95")
            modeled.set(self.modeled_seconds, device="all")
            for device, seconds in sorted(self.device_seconds.items()):
                modeled.set(seconds, device=str(device))
            modeled_kernels.set_total(self.modeled_kernels)
            batch_hist.reset()
            for size in self.batch_sizes:
                batch_hist.observe(size)

        registry.register_collector(collect)

    def summary(self) -> dict:
        """Machine-readable snapshot (benchmark artifacts embed this)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "availability": self.availability,
            "shed_requests": self.shed_requests,
            "degraded_drains": self.degraded_drains,
            "retries": self.retries,
            "deadline_misses": self.deadline_misses,
            "device_losses": self.device_losses,
            "footprint_fallbacks": self.footprint_fallbacks,
            "batches": len(self.batch_sizes),
            "batch_histogram": self.batch_histogram(),
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "modeled_seconds": self.modeled_seconds,
            "modeled_kernels": self.modeled_kernels,
            "modeled_requests_per_sec": self.modeled_throughput(),
            "modeled_makespan_s": self.modeled_makespan,
            "device_seconds": {
                str(device): seconds
                for device, seconds in sorted(self.device_seconds.items())
            },
            "device_utilization": {
                str(device): fraction
                for device, fraction in self.device_utilization().items()
            },
        }


__all__ = ["ServeMetrics"]
