"""Dynamic-batching policies and the deterministic simulated clock.

A serving deployment trades latency against launch-overhead amortisation:
waiting longer fills bigger fused batches (fewer kernel launches per
request, §III-F.1) but delays early arrivals.  :class:`BatchingPolicy`
expresses that trade-off with three knobs --

* ``max_batch_size``: drain as soon as a bucket can fill a full fused
  batch (the throughput knob);
* ``max_wait``: never hold a request longer than this before dispatch,
  even in a partial batch (the latency knob);
* ``memory_budget_bytes``: cap the fused ``2·B·L·N`` footprint so a drain
  can never trip :class:`~repro.core.memory.FusedFootprintError`
  (the capacity knob) -- the budget arithmetic here mirrors the pre-check
  in :meth:`~repro.ckks.batch.CiphertextBatch.from_ciphertexts` exactly.

Two further policies make the server failure-first (PR 9):

* :class:`AdmissionPolicy` -- when to *refuse* work: a queue-depth bound
  and a :class:`~repro.core.memory.MemoryPool` utilisation high watermark,
  consulted by :meth:`~repro.serve.executor.Server.submit` so overload
  resolves to typed :class:`~repro.serve.errors.RequestRejected`
  responses (load shedding) instead of unbounded queues;
* :class:`RetryPolicy` -- bounded retry-with-backoff for transient drain
  failures on the simulated clock, optionally halving the fused batch
  size each retry (the degradation cascade's retry arm).

All timing runs on :class:`SimulatedClock`, a deterministic virtual clock
the caller advances explicitly, so policy behaviour -- and every serving
test -- is reproducible with no wall-clock flakiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.memory import MemoryPool, default_pool
from repro.serve.bucketing import ShapeKey
from repro.serve.request import Request

#: Bytes per residue element in the fused stacks (the uint64 fast path).
ELEMENT_BYTES = 8


class SimulatedClock:
    """A deterministic virtual clock (seconds, monotone, caller-driven)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (negative steps are rejected)."""
        if seconds < 0:
            raise ValueError("the simulated clock cannot run backwards")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        self._now = max(self._now, float(timestamp))
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.6g})"


@dataclass(frozen=True)
class BatchingPolicy:
    """When to drain a bucket and how many requests one drain may fuse."""

    max_batch_size: int = 8
    max_wait: float = 1e-3
    memory_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive when set")

    # -- capacity ------------------------------------------------------------

    def drain_limit(self, key: ShapeKey) -> int:
        """Most members one drain of this bucket may fuse.

        The memory budget divides by the fused per-member footprint
        (``2·L·N`` elements: both ciphertext components).  The limit never
        drops below 1 -- a singleton drain bypasses fusing entirely (the
        executor runs it on the sequential evaluator), so it needs no
        fused allocation at all.
        """
        limit = self.max_batch_size
        if self.memory_budget_bytes is not None:
            member_bytes = 2 * (key.level + 1) * key.ring_degree * ELEMENT_BYTES
            limit = min(limit, max(1, self.memory_budget_bytes // member_bytes))
        return limit

    # -- timing --------------------------------------------------------------

    def timeout_of(self, request: Request) -> float:
        """Latest simulated time this request may wait for more batching."""
        timeout = request.arrival_time + self.max_wait
        if request.deadline is not None:
            timeout = min(timeout, request.deadline)
        return timeout

    def earliest_timeout(self, requests: Sequence[Request]) -> float:
        """Soonest dispatch obligation across one bucket's queued requests.

        Arrival order is FIFO but per-request ``deadline`` overrides can
        make a *newer* request the most urgent, so the whole bucket is
        consulted, not just its oldest member.
        """
        if not requests:
            raise ValueError("a bucket timeout needs at least one request")
        return min(self.timeout_of(request) for request in requests)

    def ready(self, *, size: int, target: int, earliest_timeout: float,
              now: float) -> bool:
        """Whether a bucket should drain now.

        Either the bucket can fill a full fused batch (``size >= target``)
        or some member has exhausted its wait budget.
        """
        return size >= target or now >= earliest_timeout


@dataclass(frozen=True)
class AdmissionPolicy:
    """When :meth:`~repro.serve.executor.Server.submit` refuses work.

    ``max_queue_depth`` bounds the total queued requests across all
    buckets; ``memory_high_watermark`` is a pool-utilisation fraction in
    ``(0, 1]`` above which new requests are shed (``pool`` defaults to the
    process-wide :data:`repro.core.memory.default_pool`; an unbounded pool
    never trips the watermark).  A shed request resolves immediately with
    a typed :class:`~repro.serve.errors.RequestRejected` response -- load
    shedding is normal operation, not an exception.
    """

    max_queue_depth: int | None = None
    memory_high_watermark: float | None = None
    pool: MemoryPool | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 when set")
        if self.memory_high_watermark is not None and \
                not 0.0 < self.memory_high_watermark <= 1.0:
            raise ValueError(
                "memory_high_watermark is a pool-utilisation fraction in (0, 1]"
            )

    def rejection_reason(self, *, queue_depth: int) -> tuple[str, str] | None:
        """``(reason_tag, message)`` when a request must be shed, else None."""
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            return (
                "queue-full",
                f"queue depth {queue_depth} is at the admission bound "
                f"{self.max_queue_depth}; request shed",
            )
        if self.memory_high_watermark is not None:
            pool = self.pool if self.pool is not None else default_pool
            utilization = pool.utilization()
            if utilization >= self.memory_high_watermark:
                return (
                    "memory-pressure",
                    f"pool utilisation {utilization:.3f} is at the "
                    f"{self.memory_high_watermark:.3f} high watermark "
                    f"({pool.bytes_in_use}/{pool.capacity_bytes} bytes); "
                    f"request shed",
                )
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient drain failures.

    After a :class:`~repro.serve.errors.TransientFault` or a (non-fused)
    :class:`~repro.core.memory.OutOfDeviceMemory`, the server advances the
    simulated clock by :meth:`delay` and retries the drain, at most
    ``max_retries`` times before resolving the survivors with
    :class:`~repro.serve.errors.DrainFailed`.  With ``degrade_on_retry``
    each retry also halves the maximum fused batch size (``B -> B/2 ->
    ... -> singleton``), so repeated capacity pressure converges on the
    allocation-free sequential path.
    """

    max_retries: int = 3
    backoff: float = 1e-4
    backoff_factor: float = 2.0
    degrade_on_retry: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff < 0:
            raise ValueError("backoff cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1.0")

    def delay(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("retry attempts are numbered from 1")
        return self.backoff * self.backoff_factor ** (attempt - 1)


__all__ = [
    "AdmissionPolicy",
    "BatchingPolicy",
    "RetryPolicy",
    "SimulatedClock",
    "ELEMENT_BYTES",
]
