"""``repro.serve`` -- the serving plane: dynamic batching over fused kernels.

The throughput plane (PR 4) made ``B`` same-shape ciphertexts walk a
circuit on fused ``(B·L, N)`` kernels, but nothing *produced* batches: every
caller hand-assembled same-shape ciphertexts.  This package is the missing
layer between ``encrypt_batch`` and live traffic -- a shape-bucketed
request queue that turns an arbitrary arrival stream into fused batches:

    submit --> bucket by (N, level, scale, program) --> policy drains
          --> fuse --> one kernel stream per batch --> futures resolve

Module map
----------

``request``
    :class:`OpProgram` (a named circuit written once against the shared
    ``CipherVector``/``CipherBatch`` operator surface),
    :class:`Request`/:class:`Response` with future-style completion.
``bucketing``
    :class:`ShapeKey` ``(ring_degree, level, scale, op_program)`` and the
    FIFO :class:`BucketQueue` -- only fuse-compatible requests share a
    bucket, so drains always satisfy ``CiphertextBatch.from_ciphertexts``.
``policy``
    :class:`BatchingPolicy` (``max_batch_size`` / ``max_wait`` /
    ``memory_budget_bytes`` -- the throughput, latency and capacity knobs)
    and the deterministic :class:`SimulatedClock` every test and benchmark
    runs on.
``executor``
    :class:`BatchExecutor` (fused drains through the backend's
    ``batch_from`` seam; singleton drains on the sequential evaluator;
    :class:`~repro.core.memory.FusedFootprintError` triggers the
    degradation cascade ``B -> B/2 -> ... -> singleton``) and
    :class:`Server`, the front door
    :meth:`~repro.api.session.CKKSSession.server` returns -- now with
    admission control, per-request deadlines, retry-with-backoff and
    device-loss recovery.
``metrics``
    :class:`ServeMetrics`: queue depth, fused-batch-size histogram,
    deterministic p50/p95 latency, modeled GPU throughput from priced
    per-drain traces, and the robustness counters behind the
    ``availability`` figure.
``errors``
    The typed :class:`ServeError` taxonomy every failed
    :class:`Response` carries: :class:`RequestRejected`,
    :class:`DeadlineExceeded`, :class:`TransientFault`,
    :class:`DrainFailed`, :class:`DeviceLost`.
``faults``
    Deterministic fault injection: seed-derived :class:`FaultPlan`
    schedules of OOM windows, transient drain failures and device
    losses, fired by a :class:`FaultInjector` on the simulated clock.
``replay``
    Seeded arrival traces (Poisson / burst / diurnal) and the
    :class:`ReplayDriver` that feeds them through a server under a fault
    plan, reporting availability, shed rate and deadline compliance.

Responses are **bit-identical to sequential execution**: fused drains
inherit the throughput plane's member-by-member bit-identity contract, and
singleton drains literally *are* the sequential path.  The server speaks
only the :class:`~repro.api.backend.EvaluationBackend` surface, so the
same serving loop runs functionally, symbolically (cost model) or traced.

The cluster plane (:mod:`repro.cluster`) extends the server past one GPU:
pass ``cluster=`` a :class:`~repro.cluster.topology.ClusterTopology` and
buckets are placed round-robin across devices (drains record and are
priced under their home device; :class:`ServeMetrics` reports per-device
utilisation and a cluster-makespan throughput), or ``shard_drains=True``
to member-shard each drain across all devices -- still bit-identical,
since every shard runs the same fused execution on its member slice.
"""

from repro.serve.bucketing import (
    BucketQueue,
    ShapeKey,
    shape_key_of,
    validate_handle,
)
from repro.serve.errors import (
    DeadlineExceeded,
    DeviceLost,
    DrainFailed,
    RequestRejected,
    ServeError,
    TransientFault,
)
from repro.serve.executor import BatchExecutor, Server
from repro.serve.faults import FaultEvent, FaultInjector, FaultPlan, InjectedOOM
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import (
    AdmissionPolicy,
    BatchingPolicy,
    RetryPolicy,
    SimulatedClock,
)
from repro.serve.replay import (
    ReplayDriver,
    ReplayReport,
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.serve.request import OpProgram, Request, Response

__all__ = [
    "AdmissionPolicy",
    "BatchExecutor",
    "BatchingPolicy",
    "BucketQueue",
    "DeadlineExceeded",
    "DeviceLost",
    "DrainFailed",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedOOM",
    "OpProgram",
    "ReplayDriver",
    "ReplayReport",
    "Request",
    "RequestRejected",
    "Response",
    "RetryPolicy",
    "ServeError",
    "ServeMetrics",
    "Server",
    "ShapeKey",
    "SimulatedClock",
    "TransientFault",
    "burst_arrivals",
    "diurnal_arrivals",
    "poisson_arrivals",
    "shape_key_of",
    "validate_handle",
]
