"""Deterministic fault injection for the serve + cluster planes.

Module map
----------

``FaultEvent``
    One scheduled fault: an ``"oom"`` window (fused allocations denied for
    ``duration`` simulated seconds, and -- when the injector is installed
    on a :class:`~repro.core.memory.MemoryPool` -- pool charges of at
    least ``min_bytes`` denied), a one-shot ``"transient"`` drain failure
    (armed at ``time``, fired at the next drain attempt), or a
    ``"device_down"`` event marking one cluster device lost.
``FaultPlan``
    An immutable, time-sorted schedule of events.  :meth:`FaultPlan.generate`
    derives a plan from a seed -- OOM windows covering a target fraction of
    the timeline, ``transients`` one-shot failures at seeded times, and
    explicit ``(time, device)`` loss pairs -- so the same seed always
    yields the identical plan (the chaos-replay determinism the tests and
    ``benchmarks/bench_faults.py`` pin).
``FaultInjector``
    The runtime: the :class:`~repro.serve.executor.Server` advances it on
    the simulated clock and it fires due events, keeping an append-only
    :attr:`~FaultInjector.log` (the deterministic event log).  Injection
    hooks:

    * :meth:`~FaultInjector.check_fuse` -- consulted by
      :class:`~repro.serve.executor.BatchExecutor` before every fused
      allocation; raises :class:`InjectedOOM` (a
      :class:`~repro.core.memory.FusedFootprintError`) inside an OOM
      window, which triggers the executor's degradation cascade
      (``B -> B/2 -> ... -> singleton``).
    * :meth:`~FaultInjector.check_drain` -- consulted at every drain
      attempt; fires pending transients as
      :class:`~repro.serve.errors.TransientFault`, which the server
      retries with backoff.
    * ``MemoryPool.charge_hook`` -- installed via ``attach(pool=...)``;
      denies real pool charges during OOM windows with a bare
      :class:`~repro.core.memory.OutOfDeviceMemory` (also retried).
    * ``device_down`` events mark the device on the attached
      :class:`~repro.cluster.topology.ClusterTopology` and notify the
      server, which re-places the dead device's buckets round-robin on
      the survivors and re-plans subsequent sharded drains.

Everything runs on the caller-driven simulated clock, so a chaos replay
is bit-reproducible in CI: same seed, same request stream, same event
log, same responses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.memory import FusedFootprintError, MemoryPool, OutOfDeviceMemory
from repro.serve.errors import TransientFault

#: The three fault kinds a plan can schedule.
FAULT_OOM = "oom"
FAULT_TRANSIENT = "transient"
FAULT_DEVICE_DOWN = "device_down"

_FAULT_KINDS = frozenset({FAULT_OOM, FAULT_TRANSIENT, FAULT_DEVICE_DOWN})


class InjectedOOM(FusedFootprintError):
    """An injected fused-allocation denial (degrades, never fails, a drain)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulated clock."""

    time: float
    kind: str
    #: OOM window length in simulated seconds (``oom`` events only).
    duration: float = 0.0
    #: Device index lost (``device_down`` events only).
    device: int | None = None
    #: Smallest pool charge the OOM window denies (``oom`` + pool hook).
    min_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(_FAULT_KINDS)}"
            )
        if self.time < 0:
            raise ValueError("fault times are simulated seconds >= 0")
        if self.duration < 0:
            raise ValueError("fault durations cannot be negative")
        if self.kind == FAULT_DEVICE_DOWN and self.device is None:
            raise ValueError("a device_down event needs a device index")

    def sort_key(self) -> tuple:
        """Total deterministic ordering (time first, then structure)."""
        return (self.time, self.kind,
                -1 if self.device is None else self.device,
                self.duration, self.min_bytes)


class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=FaultEvent.sort_key)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return f"FaultPlan({kinds})"

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        duration: float,
        oom_fraction: float = 0.0,
        oom_window: float | None = None,
        oom_min_bytes: int = 0,
        transients: int = 0,
        device_loss: Sequence | None = None,
    ) -> "FaultPlan":
        """Derive a plan from a seed (same seed => identical plan).

        ``oom_fraction`` is the fraction of the ``duration`` timeline
        covered by OOM windows (each ``oom_window`` long, default
        ``duration / 20``) placed at seeded offsets; ``transients``
        one-shot drain failures are armed at seeded times; ``device_loss``
        is a ``(time, device)`` pair or a sequence of such pairs
        (device losses are explicit, not random -- a chaos plan should
        name which device dies when).
        """
        if duration <= 0:
            raise ValueError("a fault plan needs a positive timeline duration")
        if not 0.0 <= oom_fraction <= 1.0:
            raise ValueError("oom_fraction is a timeline fraction in [0, 1]")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        if oom_fraction > 0.0:
            window = duration / 20.0 if oom_window is None else float(oom_window)
            window = min(window, duration)
            count = max(1, int(round(oom_fraction * duration / window)))
            span = max(duration - window, 0.0)
            for start in np.sort(rng.uniform(0.0, span, count)):
                events.append(FaultEvent(float(start), FAULT_OOM,
                                         duration=window,
                                         min_bytes=int(oom_min_bytes)))
        if transients:
            for time in np.sort(rng.uniform(0.0, duration, int(transients))):
                events.append(FaultEvent(float(time), FAULT_TRANSIENT))
        if device_loss is not None:
            pairs = list(device_loss)
            if pairs and not isinstance(pairs[0], (tuple, list)):
                pairs = [tuple(pairs)]
            for time, device in pairs:
                events.append(FaultEvent(float(time), FAULT_DEVICE_DOWN,
                                         device=int(device)))
        return cls(events)

    def describe(self) -> dict:
        """Machine-readable plan summary (benchmark artifacts)."""
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return {
            "events": len(self.events),
            "by_kind": dict(sorted(kinds.items())),
            "first_time": self.events[0].time if self.events else None,
            "last_time": self.events[-1].time if self.events else None,
        }


class FaultInjector:
    """Fires a :class:`FaultPlan` as simulated time advances.

    One injector serves one :class:`~repro.serve.executor.Server` (the
    server attaches its clock, cluster topology and device-loss callback
    at construction).  The append-only :attr:`log` records every fired
    event and every injection -- ``("oom-window", start, until)``,
    ``("fuse-denied", now, batch)``, ``("transient-fired", now, batch)``,
    ``("pool-oom", now, nbytes)``, ``("device-down", time, device)`` --
    and is byte-for-byte reproducible for the same plan and request
    stream (the seeded-chaos determinism contract).
    """

    def __init__(self, plan: FaultPlan | Iterable[FaultEvent], *,
                 clock=None, pool: MemoryPool | None = None) -> None:
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan(plan)
        self.clock = clock
        self.topology = None
        self.pool: MemoryPool | None = None
        self._on_device_down: Callable[[int], None] | None = None
        self._cursor = 0
        #: Active OOM windows as ``(start, until, min_bytes)`` triples.
        self._windows: list[tuple[float, float, int]] = []
        #: Armed one-shot transients (arm times, FIFO).
        self._transients: deque[float] = deque()
        #: Deterministic event log (see class docstring).
        self.log: list[tuple] = []
        if pool is not None:
            self.install_pool_hook(pool)

    # -- wiring --------------------------------------------------------------

    def attach(self, *, clock=None, topology=None, pool: MemoryPool | None = None,
               on_device_down: Callable[[int], None] | None = None) -> "FaultInjector":
        """Bind the runtime surfaces faults act on; returns ``self``."""
        if clock is not None:
            self.clock = clock
        if topology is not None:
            self.topology = topology
        if on_device_down is not None:
            self._on_device_down = on_device_down
        if pool is not None:
            self.install_pool_hook(pool)
        return self

    def install_pool_hook(self, pool: MemoryPool) -> None:
        """Deny pool charges during OOM windows (``MemoryPool.charge_hook``)."""
        pool.charge_hook = self._charge_hook
        self.pool = pool

    def remove_pool_hook(self) -> None:
        """Uninstall the pool charge hook (idempotent)."""
        if self.pool is not None:
            self.pool.charge_hook = None
            self.pool = None

    # -- clock-driven event firing -------------------------------------------

    def advance(self, now: float) -> None:
        """Fire every scheduled event with ``time <= now`` (in plan order)."""
        events = self.plan.events
        while self._cursor < len(events) and events[self._cursor].time <= now:
            event = events[self._cursor]
            self._cursor += 1
            if event.kind == FAULT_OOM:
                until = event.time + event.duration
                self._windows.append((event.time, until, event.min_bytes))
                self.log.append(("oom-window", event.time, until))
            elif event.kind == FAULT_TRANSIENT:
                self._transients.append(event.time)
                self.log.append(("transient-armed", event.time))
            else:  # device_down
                self.log.append(("device-down", event.time, event.device))
                if self.topology is not None:
                    self.topology.mark_down(event.device)
                if self._on_device_down is not None:
                    self._on_device_down(event.device)

    def oom_active(self, now: float, nbytes: int | None = None) -> bool:
        """Whether an OOM window covers ``now`` (and ``nbytes``, if given)."""
        for start, until, min_bytes in self._windows:
            if start <= now < until and (nbytes is None or nbytes >= min_bytes):
                return True
        return False

    # -- injection hooks -----------------------------------------------------

    def check_fuse(self, now: float, batch_size: int) -> None:
        """Deny a fused ``B >= 2`` allocation inside an OOM window.

        Raises :class:`InjectedOOM`, a
        :class:`~repro.core.memory.FusedFootprintError`, so the executor's
        degradation cascade handles it exactly like a real footprint miss.
        """
        if batch_size > 1 and self.oom_active(now):
            self.log.append(("fuse-denied", now, batch_size))
            raise InjectedOOM(
                f"injected OOM window active at t={now:.6g}: fused "
                f"B={batch_size} allocation denied"
            )

    def check_drain(self, now: float, batch_size: int) -> None:
        """Fire one armed transient per drain attempt (FIFO by arm time)."""
        if self._transients and self._transients[0] <= now:
            armed = self._transients.popleft()
            self.log.append(("transient-fired", now, batch_size))
            raise TransientFault(
                f"injected transient drain failure (armed t={armed:.6g}, "
                f"fired t={now:.6g})"
            )

    def _charge_hook(self, pool: MemoryPool, nbytes: int, tag: str) -> None:
        now = self.clock.now() if self.clock is not None else 0.0
        if self.oom_active(now, nbytes):
            self.log.append(("pool-oom", now, int(nbytes)))
            raise OutOfDeviceMemory(
                f"injected device OOM at t={now:.6g}: charge of {nbytes} "
                f"bytes ({tag or 'untagged'}) denied"
            )


__all__ = [
    "FAULT_OOM",
    "FAULT_TRANSIENT",
    "FAULT_DEVICE_DOWN",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InjectedOOM",
]
