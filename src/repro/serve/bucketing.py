"""Shape-keyed request buckets: the grouping stage of the serving plane.

Every batched kernel downstream requires one common shape -- one ring
degree, one level (hence one RNS basis) and one scale -- and fusing only
makes sense for requests walking the *same* circuit.  The
:class:`ShapeKey` captures exactly that ``(ring_degree, level, scale,
op_program)`` tuple, and the :class:`BucketQueue` groups incoming
requests by it in FIFO order, so a drain hands the executor a list that
:meth:`~repro.ckks.batch.CiphertextBatch.from_ciphertexts` is guaranteed
to accept.

Scales are compared exactly (they come off one session's deterministic
scale ladder, so equal levels imply bit-equal scales); a near-miss scale
lands in its own bucket, which is conservative but always correct.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterable

from repro.serve.errors import RequestRejected
from repro.serve.request import OpProgram, Request


@dataclass(frozen=True)
class ShapeKey:
    """The fuse-compatibility class of a request."""

    ring_degree: int
    level: int
    scale: float
    program: OpProgram

    def __repr__(self) -> str:
        return (
            f"ShapeKey(N={self.ring_degree}, level={self.level}, "
            f"scale={self.scale:.6g}, program={self.program.name!r})"
        )


def shape_key_of(request: Request, *, default_ring_degree: int) -> ShapeKey:
    """Compute a request's bucket key from its handle metadata.

    Symbolic (cost-model) handles carry no ring degree of their own, so the
    backend's parameter set supplies ``default_ring_degree``.
    """
    handle = request.vector.handle
    return ShapeKey(
        ring_degree=int(getattr(handle, "ring_degree", default_ring_degree)),
        level=int(handle.level),
        scale=float(handle.scale),
        program=request.program,
    )


def validate_handle(handle, params) -> None:
    """Reject a handle whose shape cannot serve under ``params`` -- at submit.

    Checks ring degree, level range, slot count and scale against the
    backend's parameter set and raises a descriptive typed
    :class:`~repro.serve.errors.RequestRejected` on mismatch, so a
    foreign-session or corrupted handle fails loudly at
    :meth:`~repro.serve.executor.Server.submit` instead of deep inside
    ``CiphertextBatch.from_ciphertexts`` at drain time.  Symbolic
    (cost-model) handles carry no ring degree; attributes a handle lacks
    are skipped.
    """
    ring_degree = getattr(handle, "ring_degree", None)
    if ring_degree is not None and int(ring_degree) != params.ring_degree:
        raise RequestRejected(
            f"cannot serve a ring-degree N={ring_degree} vector on a "
            f"N={params.ring_degree} backend; re-encrypt under this "
            f"session's parameters",
            reason="invalid-shape",
        )
    level = getattr(handle, "level", None)
    if level is None:
        raise RequestRejected(
            f"{type(handle).__name__} carries no level metadata; submit a "
            f"CipherVector handle (or a backend ciphertext)",
            reason="invalid-shape",
        )
    if not 0 <= int(level) <= params.mult_depth:
        raise RequestRejected(
            f"vector level {level} is outside this backend's moduli chain "
            f"(0..{params.mult_depth})",
            reason="invalid-level",
        )
    slots = getattr(handle, "slots", None)
    if slots is not None and int(slots) != params.slots:
        raise RequestRejected(
            f"cannot serve a {slots}-slot vector on a {params.slots}-slot "
            f"backend (ring degree N={params.ring_degree})",
            reason="invalid-shape",
        )
    scale = getattr(handle, "scale", None)
    if scale is None or not float(scale) > 0.0:
        raise RequestRejected(
            f"vector scale {scale!r} is not a positive encoding scale",
            reason="invalid-scale",
        )


class BucketQueue:
    """FIFO queues of same-shape requests, one per :class:`ShapeKey`.

    Buckets appear on first push and disappear when drained empty; iteration
    order is bucket creation order, which keeps draining deterministic for
    the simulated-clock tests.
    """

    def __init__(self) -> None:
        self._buckets: "OrderedDict[ShapeKey, deque[Request]]" = OrderedDict()

    # -- producers -----------------------------------------------------------

    def push(self, key: ShapeKey, request: Request) -> None:
        """Append a request to its shape bucket."""
        self._buckets.setdefault(key, deque()).append(request)

    # -- introspection -------------------------------------------------------

    def keys(self) -> list[ShapeKey]:
        """Live bucket keys, oldest bucket first."""
        return list(self._buckets)

    def size(self, key: ShapeKey) -> int:
        """Number of queued requests in one bucket (0 for unknown keys)."""
        bucket = self._buckets.get(key)
        return len(bucket) if bucket is not None else 0

    def sizes(self) -> dict[ShapeKey, int]:
        """Queue depth per live bucket."""
        return {key: len(bucket) for key, bucket in self._buckets.items()}

    @property
    def depth(self) -> int:
        """Total number of queued requests across all buckets."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def __len__(self) -> int:
        return self.depth

    def requests(self, key: ShapeKey) -> list[Request]:
        """Snapshot of one bucket's queued requests, FIFO order."""
        bucket = self._buckets.get(key)
        return list(bucket) if bucket is not None else []

    def oldest(self, key: ShapeKey) -> Request:
        """The longest-waiting request of one bucket."""
        bucket = self._buckets.get(key)
        if not bucket:
            raise KeyError(f"bucket {key} is empty")
        return bucket[0]

    def __iter__(self) -> Iterable[Request]:
        for bucket in self._buckets.values():
            yield from bucket

    # -- consumers -----------------------------------------------------------

    def prune(self, key: ShapeKey, predicate) -> list[Request]:
        """Remove and return every queued request matching ``predicate``.

        FIFO order is preserved among the survivors; an emptied bucket is
        dropped like :meth:`take` drops it.  The server's deadline sweep
        uses this to expire requests whose deadlines passed while the
        clock sat in retry backoff.
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return []
        kept: deque[Request] = deque()
        removed: list[Request] = []
        for request in bucket:
            (removed if predicate(request) else kept).append(request)
        if removed:
            if kept:
                self._buckets[key] = kept
            else:
                del self._buckets[key]
        return removed

    def take(self, key: ShapeKey, count: int) -> list[Request]:
        """Pop up to ``count`` requests from one bucket, FIFO order.

        Empty buckets are dropped from the queue so :meth:`keys` only ever
        names buckets with work in them.
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return []
        drained = [bucket.popleft() for _ in range(min(count, len(bucket)))]
        if not bucket:
            del self._buckets[key]
        return drained


__all__ = ["ShapeKey", "BucketQueue", "shape_key_of", "validate_handle"]
