"""Bucket draining and fused execution: the serving plane's engine room.

:class:`BatchExecutor` turns one drained bucket into ciphertext results:
singleton drains run the program directly on the request's
:class:`~repro.api.vector.CipherVector` (the sequential
:class:`~repro.ckks.evaluator.Evaluator` path -- no fused allocation at
all), while larger drains fuse the members through the backend's
``batch_from`` seam into a :class:`~repro.api.batch.CipherBatch` and run
the *same program once* over the fused ``(B·L, N)`` kernels.  Because the
batched operations are bit-identical member by member to the sequential
evaluator (the throughput-plane contract PR 4 established and the test
suite asserts), every response is bit-identical to running that request
alone -- batching is invisible to clients except in latency.

:class:`Server` is the front door :meth:`repro.api.session.CKKSSession.server`
returns: a shape-bucketed request queue (:mod:`repro.serve.bucketing`)
driven by a dynamic-batching policy (:mod:`repro.serve.policy`) on a
deterministic simulated clock, with metrics (:mod:`repro.serve.metrics`)
and optional per-drain GPU pricing through a
:class:`~repro.perf.trace_model.TraceCostModel`.  It works unchanged on
all three backends -- functional, cost-model and tracing -- since it only
speaks the :class:`~repro.api.backend.EvaluationBackend` surface.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.api.backend import as_backend
from repro.api.batch import CipherBatch
from repro.api.vector import CipherVector, as_vector
from repro.core.dispatch import get_dispatcher
from repro.core.memory import FusedFootprintError
from repro.serve.bucketing import BucketQueue, ShapeKey, shape_key_of
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import BatchingPolicy, SimulatedClock
from repro.serve.request import OpProgram, Request


class BatchExecutor:
    """Runs one drained bucket, fused when possible, sequential when not."""

    def __init__(self, backend) -> None:
        self.backend = as_backend(backend)

    def execute(self, program: OpProgram,
                vectors: Sequence[CipherVector]) -> tuple[list[CipherVector], bool]:
        """Evaluate ``program`` on all vectors; returns ``(results, fell_back)``.

        A drain of one runs sequentially by design.  A fused drain that
        still trips :class:`FusedFootprintError` (the pool filled up after
        the policy sized the drain) degrades to the sequential path rather
        than failing the requests -- correctness is identical either way.
        """
        vectors = list(vectors)
        if len(vectors) == 1:
            return [program(vectors[0])], False
        try:
            batch = CipherBatch(
                self.backend, self.backend.batch_from([v.handle for v in vectors])
            )
            return program(batch).split(), False
        except FusedFootprintError:
            return [program(v) for v in vectors], True

    def execute_sharded(
        self,
        program: OpProgram,
        vectors: Sequence[CipherVector],
        device_count: int,
    ) -> tuple[list[CipherVector], bool, tuple[int, ...]]:
        """Member-shard one drain across ``device_count`` devices.

        The members are partitioned contiguously
        (:func:`~repro.cluster.sharding.member_partition`) and each shard
        runs the normal fused/sequential path under the shard's device tag,
        so a recorded trace carries real placement.  Results come back in
        submission order; because every shard is the same bit-identical
        batched execution, the concatenation is bit-identical to a
        single-device drain.  Returns ``(results, fell_back, devices)``
        with the devices that received members.
        """
        from repro.cluster.sharding import member_partition

        vectors = list(vectors)
        members = member_partition(len(vectors), device_count)
        dispatcher = get_dispatcher()
        results: list[CipherVector] = []
        fell_back = False
        devices: list[int] = []
        offset = 0
        for device, count in enumerate(members):
            if count == 0:
                continue
            shard = vectors[offset:offset + count]
            offset += count
            devices.append(device)
            with dispatcher.on_device(device):
                shard_results, shard_fell_back = self.execute(program, shard)
            results.extend(shard_results)
            fell_back = fell_back or shard_fell_back
        return results, fell_back, tuple(devices)


class Server:
    """A shape-bucketed, dynamically-batched front end over one backend.

    Lifecycle: clients :meth:`submit` requests (stamped on the simulated
    clock) and hold the returned :class:`Request` as a future; the driver
    advances the clock and calls :meth:`poll`, which drains every bucket
    the policy deems ready -- full fused batches immediately, partial ones
    when their oldest member's wait budget expires.  :meth:`drain` runs
    that loop to completion, visiting each pending timeout exactly.

    Pass ``trace_costs`` (a :class:`~repro.perf.trace_model.TraceCostModel`)
    to record each drain's kernel stream from the execution plane and
    accumulate its modeled GPU time in :attr:`metrics` -- only meaningful
    on backends that drive the real data plane.

    Pass ``cluster`` (a :class:`~repro.cluster.topology.ClusterTopology`)
    to serve on a device cluster: buckets get home devices round-robin in
    creation order (the planner's whole-bucket placement), drains record
    under their bucket's device tag, modeled time is attributed per device
    and :attr:`metrics` reports per-device utilisation.  With
    ``shard_drains=True`` each multi-request drain is additionally
    member-sharded across all devices (still bit-identical -- every shard
    is the same fused execution over a slice of the members).
    """

    def __init__(self, backend, policy: BatchingPolicy | None = None, *,
                 clock: SimulatedClock | None = None,
                 metrics: ServeMetrics | None = None,
                 trace_costs=None,
                 cluster=None,
                 shard_drains: bool = False) -> None:
        self.backend = as_backend(backend)
        self.policy = policy if policy is not None else BatchingPolicy()
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        if (
            cluster is not None
            and trace_costs is not None
            and getattr(trace_costs, "topology", None) is None
        ):
            # Pricing a multi-device serving trace needs the interconnect;
            # shallow-copy so the caller's model keeps its configuration.
            trace_costs = copy.copy(trace_costs)
            trace_costs.topology = cluster
        self.trace_costs = trace_costs
        self.cluster = cluster
        self.shard_drains = shard_drains and (
            cluster is not None and cluster.device_count > 1
        )
        self.queue = BucketQueue()
        self.executor = BatchExecutor(self.backend)
        #: Bucket home devices, assigned round-robin in bucket-creation
        #: order (the planner's whole-bucket placement).
        self.placements: dict[ShapeKey, int] = {}

    # -- intake --------------------------------------------------------------

    def submit(self, program: OpProgram, vector, *,
               deadline: float | None = None) -> Request:
        """Queue one request; returns its future-style handle.

        ``vector`` may be a :class:`CipherVector` bound to this server's
        backend or a raw backend handle (it is wrapped).  ``deadline`` is
        an absolute simulated time that tightens the policy's ``max_wait``
        for this request only.
        """
        vector = as_vector(self.backend, vector)
        now = self.clock.now()
        request = Request(program, vector, arrival_time=now, deadline=deadline)
        key = shape_key_of(
            request, default_ring_degree=self.backend.params.ring_degree
        )
        if self.cluster is not None and key not in self.placements:
            self.placements[key] = len(self.placements) % self.cluster.device_count
        self.queue.push(key, request)
        self.metrics.submitted += 1
        self.metrics.observe_queue_depth(now, self.queue.depth)
        return request

    # -- introspection -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued (not yet dispatched) requests."""
        return self.queue.depth

    def next_timeout(self) -> float | None:
        """Earliest simulated time any queued request must dispatch by.

        Considers every queued request, not just each bucket's oldest: a
        per-request ``deadline`` can make a newer arrival the most urgent.
        """
        timeouts = [
            self.policy.earliest_timeout(self.queue.requests(key))
            for key in self.queue.keys()
        ]
        return min(timeouts) if timeouts else None

    # -- drivers -------------------------------------------------------------

    def poll(self) -> list[Request]:
        """Drain every bucket the policy deems ready at the current time.

        Returns the requests completed by this call (already resolved;
        read them through ``request.result()`` / ``request.response()``).
        """
        now = self.clock.now()
        completed: list[Request] = []
        for key in self.queue.keys():
            target = self.policy.drain_limit(key)
            while True:
                size = self.queue.size(key)
                if size == 0 or not self.policy.ready(
                    size=size, target=target, now=now,
                    earliest_timeout=self.policy.earliest_timeout(
                        self.queue.requests(key)
                    ),
                ):
                    break
                completed.extend(
                    self._execute(key, self.queue.take(key, target), now)
                )
        if completed:
            self.metrics.observe_queue_depth(now, self.queue.depth)
        return completed

    def flush(self) -> list[Request]:
        """Drain everything immediately, ignoring readiness (still respecting
        the policy's per-drain size and memory caps)."""
        now = self.clock.now()
        completed: list[Request] = []
        for key in self.queue.keys():
            target = self.policy.drain_limit(key)
            while self.queue.size(key):
                completed.extend(
                    self._execute(key, self.queue.take(key, target), now)
                )
        if completed:
            self.metrics.observe_queue_depth(now, self.queue.depth)
        return completed

    def drain(self) -> list[Request]:
        """Advance the clock through every pending timeout until idle.

        The canonical driver loop: poll now, then repeatedly jump the
        simulated clock to the next bucket timeout and poll again, so no
        request ever waits past its policy deadline.
        """
        completed = self.poll()
        while self.queue.depth:
            self.clock.advance_to(self.next_timeout())
            completed.extend(self.poll())
        return completed

    # -- execution -----------------------------------------------------------

    def _run(self, program: OpProgram, vectors: list[CipherVector],
             home: int) -> tuple[list[CipherVector], bool, tuple[int, ...]]:
        """Execute one drain on its home device (or member-sharded)."""
        if self.shard_drains and len(vectors) > 1:
            return self.executor.execute_sharded(
                program, vectors, self.cluster.device_count
            )
        with get_dispatcher().on_device(home):
            results, fell_back = self.executor.execute(program, vectors)
        return results, fell_back, (home,)

    def _execute(self, key: ShapeKey, requests: list[Request],
                 now: float) -> list[Request]:
        """Run one drained bucket, resolve its requests, update metrics."""
        vectors = [request.vector for request in requests]
        size = len(requests)
        home = self.placements.get(key, 0)
        results: list[CipherVector] | None = None
        fell_back = False
        error: Exception | None = None
        try:
            if self.trace_costs is not None:
                with get_dispatcher().record() as trace:
                    results, fell_back, devices = self._run(
                        key.program, vectors, home
                    )
                report = self.trace_costs.price(trace, streams=1)
                self.metrics.record_modeled(
                    report.makespan, report.kernel_count, devices=devices
                )
            else:
                results, fell_back, _ = self._run(key.program, vectors, home)
        except Exception as exc:  # program errors fail the drain, not the server
            error = exc
        latencies = [now - request.arrival_time for request in requests]
        if error is None:
            for request, result in zip(requests, results):
                request.resolve(result, batch_size=size, dispatch_time=now)
            self.metrics.record_batch(size, latencies)
        else:
            for request in requests:
                request.resolve(None, batch_size=size, dispatch_time=now, error=error)
            self.metrics.record_batch(size, latencies, failed=True)
        if fell_back:
            self.metrics.footprint_fallbacks += 1
        return requests

    def describe(self) -> dict:
        """Server configuration plus a metrics snapshot."""
        return {
            "backend": self.backend.describe(),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_wait": self.policy.max_wait,
                "memory_budget_bytes": self.policy.memory_budget_bytes,
            },
            "clock": self.clock.now(),
            "pending": self.pending,
            "cluster": (
                self.cluster.describe() if self.cluster is not None else None
            ),
            "shard_drains": self.shard_drains,
            "metrics": self.metrics.summary(),
        }


__all__ = ["BatchExecutor", "Server"]
