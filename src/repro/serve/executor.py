"""Bucket draining and fused execution: the serving plane's engine room.

:class:`BatchExecutor` turns one drained bucket into ciphertext results:
singleton drains run the program directly on the request's
:class:`~repro.api.vector.CipherVector` (the sequential
:class:`~repro.ckks.evaluator.Evaluator` path -- no fused allocation at
all), while larger drains fuse the members through the backend's
``batch_from`` seam into a :class:`~repro.api.batch.CipherBatch` and run
the *same program once* over the fused ``(B·L, N)`` kernels.  Because the
batched operations are bit-identical member by member to the sequential
evaluator (the throughput-plane contract PR 4 established and the test
suite asserts), every response is bit-identical to running that request
alone -- batching is invisible to clients except in latency.

When a fused allocation is denied -- a real
:class:`~repro.core.memory.FusedFootprintError` or an injected OOM window
from a :class:`~repro.serve.faults.FaultInjector` -- the executor runs the
**degradation cascade**: the drain is split in half and each half retried
fused, recursively, ``B -> B/2 -> ... -> singleton``.  Singleton leaves
need no fused allocation at all, so the cascade always terminates with
every member served, bit-identical, just in smaller (eventually
sequential) pieces.  The first degradation emits a one-time
:class:`RuntimeWarning` naming the bucket and the denial; after that the
cascade is silent and counted in
:attr:`~repro.serve.metrics.ServeMetrics.degraded_drains`.

:class:`Server` is the front door :meth:`repro.api.session.CKKSSession.server`
returns: a shape-bucketed request queue (:mod:`repro.serve.bucketing`)
driven by a dynamic-batching policy (:mod:`repro.serve.policy`) on a
deterministic simulated clock, with metrics (:mod:`repro.serve.metrics`)
and optional per-drain GPU pricing through a
:class:`~repro.perf.trace_model.TraceCostModel`.  It works unchanged on
all three backends -- functional, cost-model and tracing -- since it only
speaks the :class:`~repro.api.backend.EvaluationBackend` surface.

The failure-first layer (PR 9) threads through both classes: requests are
shape-validated and admission-controlled at :meth:`Server.submit`,
per-request deadlines are enforced by the drain loop, transient drain
failures retry with bounded backoff on the simulated clock
(:class:`~repro.serve.policy.RetryPolicy`), and a lost cluster device's
buckets are re-placed round-robin on the survivors with sharded drains
re-planned over the alive set.  Every admitted request therefore resolves
-- bit-identical result or typed :class:`~repro.serve.errors.ServeError`
-- and successful responses never dispatch past their deadline.
"""

from __future__ import annotations

import copy
import warnings
from typing import Sequence

from repro.api.backend import as_backend
from repro.api.batch import CipherBatch
from repro.api.vector import CipherVector, as_vector
from repro.core.dispatch import get_dispatcher
from repro.core.memory import FusedFootprintError, OutOfDeviceMemory
from repro.serve.bucketing import (
    BucketQueue,
    ShapeKey,
    shape_key_of,
    validate_handle,
)
from repro.serve.errors import (
    DeadlineExceeded,
    DeviceLost,
    DrainFailed,
    RequestRejected,
    TransientFault,
)
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import (
    AdmissionPolicy,
    BatchingPolicy,
    RetryPolicy,
    SimulatedClock,
)
from repro.serve.request import OpProgram, Request

#: Drain failures the server retries with backoff (everything else fails
#: the drain immediately).  ``OutOfDeviceMemory`` covers real pool
#: exhaustion and injected pool denials; fused-footprint denials are its
#: subclass but never reach the server -- the executor cascade absorbs
#: them.
RETRYABLE_FAULTS = (TransientFault, OutOfDeviceMemory)


class BatchExecutor:
    """Runs one drained bucket, fused when possible, degraded when not."""

    def __init__(self, backend, *, injector: FaultInjector | None = None) -> None:
        self.backend = as_backend(backend)
        self.injector = injector
        self._warned_degradation = False

    def execute(
        self,
        program: OpProgram,
        vectors: Sequence[CipherVector],
        *,
        key: ShapeKey | None = None,
        now: float = 0.0,
        max_fuse: int | None = None,
    ) -> tuple[list[CipherVector], int]:
        """Evaluate ``program`` on all vectors; returns ``(results, degradations)``.

        ``degradations`` counts the cascade splits this drain needed (0 for
        a clean fused or singleton drain).  ``max_fuse`` caps the fused
        chunk size below the drain size -- the retry policy's degradation
        arm -- by pre-chunking the members before the cascade runs.  A
        drain of one runs sequentially by design; a fused drain that trips
        :class:`FusedFootprintError` (real, or injected by the fault
        plan's OOM window) is split in half and retried, recursively down
        to singletons, so capacity pressure degrades throughput instead of
        failing requests -- correctness is identical on every path.
        """
        vectors = list(vectors)
        if max_fuse is not None and max_fuse >= 1 and max_fuse < len(vectors):
            results: list[CipherVector] = []
            degradations = 0
            for start in range(0, len(vectors), max_fuse):
                chunk_results, chunk_degradations = self._attempt(
                    program, vectors[start:start + max_fuse], key, now
                )
                results.extend(chunk_results)
                degradations += chunk_degradations
            return results, degradations
        return self._attempt(program, vectors, key, now)

    def _attempt(
        self,
        program: OpProgram,
        vectors: list[CipherVector],
        key: ShapeKey | None,
        now: float,
    ) -> tuple[list[CipherVector], int]:
        """One cascade level: fuse whole, or halve on footprint denial."""
        if len(vectors) == 1:
            return [program(vectors[0])], 0
        try:
            if self.injector is not None:
                self.injector.check_fuse(now, len(vectors))
            batch = CipherBatch(
                self.backend, self.backend.batch_from([v.handle for v in vectors])
            )
            return program(batch).split(), 0
        except FusedFootprintError as exc:
            self._warn_degradation(key, exc)
            half = (len(vectors) + 1) // 2
            left, left_degradations = self._attempt(program, vectors[:half], key, now)
            right, right_degradations = self._attempt(program, vectors[half:], key, now)
            return left + right, left_degradations + right_degradations + 1

    def _warn_degradation(self, key: ShapeKey | None, exc: Exception) -> None:
        """One-time heads-up that fused drains are degrading (then silent)."""
        if self._warned_degradation:
            return
        self._warned_degradation = True
        bucket = f"bucket {key}" if key is not None else "unkeyed drain"
        warnings.warn(
            f"fused drain degraded for {bucket}: {exc}; splitting "
            f"B -> B/2 -> ... -> singleton (results stay bit-identical). "
            f"Further degradations are counted in "
            f"ServeMetrics.degraded_drains without this warning.",
            RuntimeWarning,
            stacklevel=2,
        )

    def execute_sharded(
        self,
        program: OpProgram,
        vectors: Sequence[CipherVector],
        devices: Sequence[int],
        *,
        key: ShapeKey | None = None,
        now: float = 0.0,
        max_fuse: int | None = None,
    ) -> tuple[list[CipherVector], int, tuple[int, ...]]:
        """Member-shard one drain across an explicit device set.

        The members are partitioned contiguously over ``devices``
        (:func:`~repro.cluster.sharding.member_partition_over` -- after a
        device loss this is the surviving alive set, not ``range(D)``) and
        each shard runs the normal fused/cascade path under the shard's
        device tag, so a recorded trace carries real placement.  Results
        come back in submission order; because every shard is the same
        bit-identical batched execution, the concatenation is bit-identical
        to a single-device drain.  Returns ``(results, degradations,
        devices_used)``.
        """
        from repro.cluster.sharding import member_partition_over

        vectors = list(vectors)
        members = member_partition_over(len(vectors), list(devices))
        dispatcher = get_dispatcher()
        results: list[CipherVector] = []
        degradations = 0
        used: list[int] = []
        offset = 0
        for device in sorted(members):
            count = members[device]
            if count == 0:
                continue
            shard = vectors[offset:offset + count]
            offset += count
            used.append(device)
            with dispatcher.on_device(device):
                shard_results, shard_degradations = self.execute(
                    program, shard, key=key, now=now, max_fuse=max_fuse
                )
            results.extend(shard_results)
            degradations += shard_degradations
        return results, degradations, tuple(used)


class Server:
    """A shape-bucketed, dynamically-batched front end over one backend.

    Lifecycle: clients :meth:`submit` requests (stamped on the simulated
    clock) and hold the returned :class:`Request` as a future; the driver
    advances the clock and calls :meth:`poll`, which drains every bucket
    the policy deems ready -- full fused batches immediately, partial ones
    when their oldest member's wait budget expires.  :meth:`drain` runs
    that loop to completion, visiting each pending timeout exactly.

    Pass ``trace_costs`` (a :class:`~repro.perf.trace_model.TraceCostModel`)
    to record each drain's kernel stream from the execution plane and
    accumulate its modeled GPU time in :attr:`metrics` -- only meaningful
    on backends that drive the real data plane.

    Pass ``cluster`` (a :class:`~repro.cluster.topology.ClusterTopology`)
    to serve on a device cluster: buckets get home devices round-robin in
    creation order (the planner's whole-bucket placement), drains record
    under their bucket's device tag, modeled time is attributed per device
    and :attr:`metrics` reports per-device utilisation.  With
    ``shard_drains=True`` each multi-request drain is additionally
    member-sharded across the alive devices (still bit-identical -- every
    shard is the same fused execution over a slice of the members).

    The failure-first knobs (PR 9):

    * ``admission`` -- an :class:`~repro.serve.policy.AdmissionPolicy`;
      overload resolves new requests immediately with typed
      :class:`~repro.serve.errors.RequestRejected` responses (load
      shedding) instead of queueing unboundedly.
    * ``retry`` -- a :class:`~repro.serve.policy.RetryPolicy` governing
      transient-fault / OOM retry with simulated-clock backoff (defaults
      to ``RetryPolicy()``: 3 retries, exponential backoff, halving the
      fused size each retry).
    * ``fault_plan`` -- a :class:`~repro.serve.faults.FaultPlan` (or a
      ready :class:`~repro.serve.faults.FaultInjector`); the server
      attaches its clock, topology and device-loss recovery and advances
      the injector as simulated time moves.

    Pass ``observability`` (a :class:`repro.obs.Observability`, see
    :meth:`repro.api.session.CKKSSession.observability`) to wire the
    unified observability plane: the request lifecycle is recorded as
    parent/child spans on the simulated clock, the queue/metrics/fault
    state is re-homed onto the metrics registry, and (with
    ``trace_costs``) every priced drain feeds the per-scope rollup and
    the Perfetto timeline export.  A disabled facade (or ``None``) costs
    one ``is not None`` check per hook.
    """

    def __init__(self, backend, policy: BatchingPolicy | None = None, *,
                 clock: SimulatedClock | None = None,
                 metrics: ServeMetrics | None = None,
                 trace_costs=None,
                 cluster=None,
                 shard_drains: bool = False,
                 admission: AdmissionPolicy | None = None,
                 retry: RetryPolicy | None = None,
                 fault_plan=None,
                 observability=None) -> None:
        self.backend = as_backend(backend)
        self.policy = policy if policy is not None else BatchingPolicy()
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        if (
            cluster is not None
            and trace_costs is not None
            and getattr(trace_costs, "topology", None) is None
        ):
            # Pricing a multi-device serving trace needs the interconnect;
            # shallow-copy so the caller's model keeps its configuration.
            trace_costs = copy.copy(trace_costs)
            trace_costs.topology = cluster
        self.trace_costs = trace_costs
        self.cluster = cluster
        self.shard_drains = shard_drains and (
            cluster is not None and cluster.device_count > 1
        )
        self.admission = admission
        self.retry = retry if retry is not None else RetryPolicy()
        if fault_plan is None:
            self.injector: FaultInjector | None = None
        elif isinstance(fault_plan, FaultInjector):
            self.injector = fault_plan
        else:
            self.injector = FaultInjector(fault_plan)
        if self.injector is not None:
            self.injector.attach(
                clock=self.clock,
                topology=self.cluster,
                on_device_down=self._handle_device_down,
            )
        self.queue = BucketQueue()
        self.executor = BatchExecutor(self.backend, injector=self.injector)
        # The observability plane (repro.obs.Observability): a disabled or
        # absent facade leaves self.obs None, so every hook below is one
        # `is not None` check -- the zero-cost-when-disabled contract.
        self.obs = None
        if observability is not None and getattr(observability, "enabled", False):
            self.obs = observability
            observability.adopt_clock(self.clock)
            observability.watch_queue(self.queue)
            observability.watch_metrics(self.metrics)
            if self.injector is not None:
                observability.watch_injector(self.injector)
        #: request.id -> (root span, queued child) of in-flight requests.
        self._request_spans: dict = {}
        #: Bucket home devices, assigned round-robin in bucket-creation
        #: order (the planner's whole-bucket placement).
        self.placements: dict[ShapeKey, int] = {}
        #: Round-robin cursor for re-placing buckets after device loss.
        self._replacements = 0

    # -- intake --------------------------------------------------------------

    def submit(self, program: OpProgram, vector, *,
               deadline: float | None = None) -> Request:
        """Queue one request; returns its future-style handle.

        ``vector`` may be a :class:`CipherVector` bound to this server's
        backend or a raw backend handle (it is wrapped).  ``deadline`` is
        an absolute simulated time that tightens the policy's ``max_wait``
        for this request only.

        A vector whose shape cannot serve under this backend's parameters
        **raises** :class:`~repro.serve.errors.RequestRejected` here (a
        client bug should fail loudly at the call site, not deep inside
        ``from_ciphertexts`` at drain time).  A request shed by the
        admission policy instead **returns already resolved** with a
        ``RequestRejected`` response -- load shedding is normal operation,
        accounted in :attr:`~repro.serve.metrics.ServeMetrics.shed_requests`.
        """
        vector = as_vector(self.backend, vector)
        validate_handle(vector.handle, self.backend.params)
        now = self.clock.now()
        self._advance_faults()
        request = Request(program, vector, arrival_time=now, deadline=deadline)
        self.metrics.submitted += 1
        root = None
        if self.obs is not None:
            root = self.obs.tracer.begin(
                "request", at=now, request_id=request.id,
                program=program.name, deadline=deadline,
            )
        if self.admission is not None:
            rejection = self.admission.rejection_reason(
                queue_depth=self.queue.depth
            )
            if rejection is not None:
                reason, message = rejection
                self.metrics.shed_requests += 1
                request.resolve(
                    None, batch_size=0, dispatch_time=now,
                    error=RequestRejected(message, reason=reason),
                )
                if root is not None:
                    tracer = self.obs.tracer
                    tracer.event("admission", parent=root, at=now,
                                 outcome=f"shed:{reason}")
                    tracer.finish(root, at=now, outcome="shed",
                                  error_kind="RequestRejected")
                return request
        if deadline is not None and deadline < now:
            # Admitted but born expired: resolve immediately, counted as a
            # deadline miss (availability failure), never queued.
            self.metrics.deadline_misses += 1
            self.metrics.failed += 1
            request.resolve(
                None, batch_size=0, dispatch_time=now,
                error=DeadlineExceeded(
                    f"request deadline t={deadline:.6g} already passed at "
                    f"submission (t={now:.6g})"
                ),
            )
            if root is not None:
                tracer = self.obs.tracer
                tracer.event("admission", parent=root, at=now,
                             outcome="expired-at-submit")
                tracer.finish(root, at=now, outcome="error",
                              error_kind="DeadlineExceeded")
            return request
        key = shape_key_of(
            request, default_ring_degree=self.backend.params.ring_degree
        )
        if self.cluster is not None and key not in self.placements:
            self.placements[key] = self._place_new_bucket()
        self.queue.push(key, request)
        self.metrics.observe_queue_depth(now, self.queue.depth)
        if root is not None:
            tracer = self.obs.tracer
            tracer.event("admission", parent=root, at=now, outcome="admitted")
            queued = tracer.begin("queued", parent=root, at=now,
                                  bucket=repr(key))
            self._request_spans[request.id] = (root, queued)
        return request

    def _place_new_bucket(self) -> int:
        """Home device of a new bucket: round-robin over alive devices."""
        alive = self._alive_devices()
        if not alive:
            # Every device is down; keep the placement slot -- the drain
            # will resolve the requests with DeviceLost.
            return 0
        return alive[len(self.placements) % len(alive)]

    # -- fault plumbing ------------------------------------------------------

    def _advance_faults(self) -> None:
        """Fire every fault event scheduled at or before the current time."""
        if self.injector is not None:
            self.injector.advance(self.clock.now())

    def _alive_devices(self) -> list[int]:
        """Cluster devices not marked down ([0] without a cluster)."""
        if self.cluster is None:
            return [0]
        return self.cluster.alive_devices()

    def _handle_device_down(self, device: int) -> None:
        """Recovery: re-place the dead device's buckets on the survivors.

        Buckets homed on the lost device move round-robin over the alive
        set (deterministic: bucket-creation order, one shared cursor);
        subsequent sharded drains re-plan over the survivors in
        :meth:`_run`.  With no survivors the placements stand and drains
        resolve their requests with :class:`DeviceLost`.
        """
        self.metrics.device_losses += 1
        if self.cluster is None:
            return
        alive = self.cluster.alive_devices()
        if not alive:
            return
        for key, home in list(self.placements.items()):
            if home == device:
                self.placements[key] = alive[self._replacements % len(alive)]
                self._replacements += 1

    def _expire(self, now: float) -> list[Request]:
        """Resolve every queued request whose deadline has already passed.

        Under the normal drain loop deadlines are met exactly (timeouts
        cap at the deadline), so this only fires when retry backoff moved
        the clock past other requests' deadlines.
        """
        expired: list[Request] = []
        for key in self.queue.keys():
            expired.extend(self.queue.prune(
                key,
                lambda request: request.deadline is not None
                and request.deadline < now,
            ))
        for request in expired:
            self.metrics.deadline_misses += 1
            self.metrics.failed += 1
            request.resolve(
                None, batch_size=0, dispatch_time=now,
                error=DeadlineExceeded(
                    f"deadline t={request.deadline:.6g} passed while queued "
                    f"(resolved t={now:.6g})"
                ),
            )
        if expired:
            for request in expired:
                self._finish_request_span(request, now)
            self.metrics.observe_queue_depth(now, self.queue.depth)
        return expired

    def _finish_request_span(self, request: Request, now: float) -> None:
        """Close a resolved request's queued/root spans with its outcome."""
        if self.obs is None:
            return
        spans = self._request_spans.pop(request.id, None)
        if spans is None:
            return
        root, queued = spans
        tracer = self.obs.tracer
        response = request.response()
        tracer.finish(queued, at=now)
        tracer.finish(
            root, at=now,
            outcome="ok" if response.ok else "error",
            error_kind=response.error_kind,
            batch_size=response.batch_size,
        )

    # -- introspection -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued (not yet dispatched) requests."""
        return self.queue.depth

    def next_timeout(self) -> float | None:
        """Earliest simulated time any queued request must dispatch by.

        Considers every queued request, not just each bucket's oldest: a
        per-request ``deadline`` can make a newer arrival the most urgent.
        """
        timeouts = [
            self.policy.earliest_timeout(self.queue.requests(key))
            for key in self.queue.keys()
        ]
        return min(timeouts) if timeouts else None

    # -- drivers -------------------------------------------------------------

    def poll(self) -> list[Request]:
        """Drain every bucket the policy deems ready at the current time.

        Returns the requests completed by this call (already resolved;
        read them through ``request.result()`` / ``request.response()``).
        """
        now = self.clock.now()
        self._advance_faults()
        completed: list[Request] = self._expire(now)
        for key in self.queue.keys():
            target = self.policy.drain_limit(key)
            while True:
                size = self.queue.size(key)
                if size == 0 or not self.policy.ready(
                    size=size, target=target, now=now,
                    earliest_timeout=self.policy.earliest_timeout(
                        self.queue.requests(key)
                    ),
                ):
                    break
                completed.extend(
                    self._execute(key, self.queue.take(key, target), now)
                )
        if completed:
            self.metrics.observe_queue_depth(self.clock.now(), self.queue.depth)
        return completed

    def flush(self) -> list[Request]:
        """Drain everything immediately, ignoring readiness (still respecting
        the policy's per-drain size and memory caps)."""
        now = self.clock.now()
        self._advance_faults()
        completed: list[Request] = []
        for key in self.queue.keys():
            target = self.policy.drain_limit(key)
            while self.queue.size(key):
                completed.extend(
                    self._execute(key, self.queue.take(key, target), now)
                )
        if completed:
            self.metrics.observe_queue_depth(self.clock.now(), self.queue.depth)
        return completed

    def drain(self) -> list[Request]:
        """Advance the clock through every pending timeout until idle.

        The canonical driver loop: poll now, then repeatedly jump the
        simulated clock to the next bucket timeout and poll again, so no
        request ever waits past its policy deadline.
        """
        completed = self.poll()
        while self.queue.depth:
            self.clock.advance_to(self.next_timeout())
            completed.extend(self.poll())
        return completed

    # -- execution -----------------------------------------------------------

    def _home_of(self, key: ShapeKey) -> int | None:
        """Resolve a bucket's home device, re-placing off dead devices.

        Returns ``None`` when every cluster device is down (the drain then
        resolves its requests with :class:`DeviceLost`).
        """
        if self.cluster is None:
            return 0
        home = self.placements.get(key, 0)
        if self.cluster.is_down(home):
            alive = self.cluster.alive_devices()
            if not alive:
                return None
            home = alive[self._replacements % len(alive)]
            self._replacements += 1
            self.placements[key] = home
        return home

    def _run(self, key: ShapeKey, vectors: list[CipherVector], home: int,
             now: float, max_fuse: int | None
             ) -> tuple[list[CipherVector], int, tuple[int, ...]]:
        """Execute one drain attempt on its home device (or member-sharded)."""
        if self.shard_drains and len(vectors) > 1:
            devices = self._alive_devices()
            if len(devices) > 1:
                return self.executor.execute_sharded(
                    key.program, vectors, devices,
                    key=key, now=now, max_fuse=max_fuse,
                )
        with get_dispatcher().on_device(home):
            results, degradations = self.executor.execute(
                key.program, vectors, key=key, now=now, max_fuse=max_fuse
            )
        return results, degradations, (home,)

    def _run_priced(self, key: ShapeKey, vectors: list[CipherVector],
                    home: int, now: float, max_fuse: int | None
                    ) -> tuple[list[CipherVector], int]:
        """One drain attempt, with the kernel stream priced when configured."""
        if self.trace_costs is not None:
            with get_dispatcher().record() as trace:
                results, degradations, devices = self._run(
                    key, vectors, home, now, max_fuse
                )
            report = self.trace_costs.price(trace, streams=1)
            self.metrics.record_modeled(
                report.makespan, report.kernel_count, devices=devices
            )
            if self.obs is not None:
                self.obs.record_drain(
                    trace, report, offset=now,
                    label=f"{key.program.name} B={len(vectors)}",
                )
            return results, degradations
        results, degradations, _ = self._run(key, vectors, home, now, max_fuse)
        return results, degradations

    def _execute(self, key: ShapeKey, requests: list[Request],
                 now: float) -> list[Request]:
        """Run one drained bucket with retry, resolve requests, update metrics.

        The retry loop: a :class:`TransientFault` or a bare
        :class:`OutOfDeviceMemory` advances the simulated clock by the
        retry policy's backoff and tries again (halving the fused cap each
        retry when ``degrade_on_retry``), up to ``max_retries``; then the
        survivors resolve with :class:`DrainFailed` chaining the last
        error.  Requests whose deadlines pass during backoff resolve with
        :class:`DeadlineExceeded` instead of retrying.  Footprint denials
        never reach this loop -- the executor's cascade absorbs them.
        """
        drained_size = len(requests)
        results: list[CipherVector] | None = None
        error: Exception | None = None
        degradations = 0
        max_fuse: int | None = None
        attempts = 0
        resolved: list[Request] = []
        obs = self.obs
        drain_span = None
        if obs is not None:
            drain_span = obs.tracer.begin(
                "drain", at=now, bucket=repr(key), batch_size=drained_size,
            )
            obs.reset_drain_peaks()
        while True:
            home = self._home_of(key)
            if home is None:
                error = DeviceLost(
                    f"every device of cluster {self.cluster.name!r} is down; "
                    f"drain of {len(requests)} requests cannot run"
                )
                break
            attempt_span = None
            try:
                if self.injector is not None:
                    self.injector.check_drain(now, len(requests))
                if drain_span is not None:
                    attempt_span = obs.tracer.begin(
                        "fused", parent=drain_span, at=now,
                        batch_size=len(requests), device=home,
                    )
                results, degradations = self._run_priced(
                    key, [r.vector for r in requests], home, now, max_fuse
                )
                if attempt_span is not None:
                    obs.tracer.finish(attempt_span, at=now,
                                      degradations=degradations)
                break
            except RETRYABLE_FAULTS as exc:
                if attempt_span is not None:
                    obs.tracer.finish(attempt_span, at=now,
                                      error_kind=type(exc).__name__)
                attempts += 1
                if attempts > self.retry.max_retries:
                    error = DrainFailed(
                        f"drain of {len(requests)} requests failed after "
                        f"{self.retry.max_retries} retries: {exc}"
                    )
                    error.__cause__ = exc
                    break
                self.metrics.retries += 1
                backoff_start = now
                self.clock.advance(self.retry.delay(attempts))
                now = self.clock.now()
                if drain_span is not None:
                    backoff = obs.tracer.begin(
                        "retry", parent=drain_span, at=backoff_start,
                        attempt=attempts, error_kind=type(exc).__name__,
                    )
                    obs.tracer.finish(backoff, at=now)
                self._advance_faults()
                if self.retry.degrade_on_retry and len(requests) > 1:
                    cap = max_fuse if max_fuse is not None else len(requests)
                    max_fuse = max(1, cap // 2)
                # Backoff moved the clock: requests whose deadline passed
                # must not retry -- they resolve as deadline misses now.
                overdue = [
                    r for r in requests
                    if r.deadline is not None and r.deadline < now
                ]
                if overdue:
                    requests = [r for r in requests if r not in overdue]
                    for request in overdue:
                        self.metrics.deadline_misses += 1
                        self.metrics.failed += 1
                        request.resolve(
                            None, batch_size=drained_size, dispatch_time=now,
                            error=DeadlineExceeded(
                                f"deadline t={request.deadline:.6g} passed "
                                f"during retry backoff (t={now:.6g})"
                            ),
                        )
                        self._finish_request_span(request, now)
                    resolved.extend(overdue)
                    if not requests:
                        if drain_span is not None:
                            obs.tracer.finish(
                                drain_span, at=now, outcome="error",
                                error_kind="DeadlineExceeded",
                                retries=attempts,
                            )
                            obs.observe_drain_peaks()
                        return resolved
            except Exception as exc:  # program errors fail the drain, not the server
                if attempt_span is not None:
                    obs.tracer.finish(attempt_span, at=now,
                                      error_kind=type(exc).__name__)
                error = exc
                break
        latencies = [now - request.arrival_time for request in requests]
        if error is None:
            for request, result in zip(requests, results):
                request.resolve(
                    result, batch_size=drained_size, dispatch_time=now
                )
            self.metrics.record_batch(len(requests), latencies)
            if degradations > 0 or (max_fuse is not None and drained_size > 1):
                self.metrics.degraded_drains += 1
            if degradations > 0:
                self.metrics.footprint_fallbacks += 1
        else:
            for request in requests:
                request.resolve(
                    None, batch_size=drained_size, dispatch_time=now,
                    error=error,
                )
            self.metrics.record_batch(len(requests), latencies, failed=True)
        if obs is not None:
            obs.observe_drain_peaks()
            obs.tracer.finish(
                drain_span, at=now,
                outcome="ok" if error is None else "error",
                error_kind=None if error is None else type(error).__name__,
                retries=attempts,
            )
            for request in requests:
                self._finish_request_span(request, now)
        resolved.extend(requests)
        return resolved

    def describe(self) -> dict:
        """Server configuration plus a metrics snapshot."""
        return {
            "backend": self.backend.describe(),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_wait": self.policy.max_wait,
                "memory_budget_bytes": self.policy.memory_budget_bytes,
            },
            "admission": (
                {
                    "max_queue_depth": self.admission.max_queue_depth,
                    "memory_high_watermark": self.admission.memory_high_watermark,
                }
                if self.admission is not None
                else None
            ),
            "retry": {
                "max_retries": self.retry.max_retries,
                "backoff": self.retry.backoff,
                "backoff_factor": self.retry.backoff_factor,
                "degrade_on_retry": self.retry.degrade_on_retry,
            },
            "fault_plan": (
                self.injector.plan.describe()
                if self.injector is not None
                else None
            ),
            "clock": self.clock.now(),
            "pending": self.pending,
            "cluster": (
                self.cluster.describe() if self.cluster is not None else None
            ),
            "shard_drains": self.shard_drains,
            "metrics": self.metrics.summary(),
        }


__all__ = ["BatchExecutor", "Server", "RETRYABLE_FAULTS"]
