"""Requests, responses and op programs of the serving plane.

A serving request wraps one encrypted input (a
:class:`~repro.api.vector.CipherVector`) together with the
:class:`OpProgram` to evaluate on it -- "score with LR model M",
"evaluate polynomial P" -- plus a future-style completion handle the
submitting client polls.  Requests carrying the *same* program and the
same ciphertext shape are what the bucket queue fuses into one
``(B·L, N)`` kernel stream.

Programs are written once against the operator surface shared by
:class:`~repro.api.vector.CipherVector` and
:class:`~repro.api.batch.CipherBatch` (``+ - * **`` ``<< >>``
``square/rescale/at_level/conj``), so the executor can run the identical
op sequence either per request (singleton buckets, sequential
:class:`~repro.ckks.evaluator.Evaluator`) or fused across a drained
bucket -- which is exactly why batched responses are bit-identical to
sequential execution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.api.vector import CipherVector

#: Process-wide request id source (ids only need to be unique per server,
#: but a shared counter keeps logs unambiguous across servers).
_REQUEST_IDS = itertools.count()


class OpProgram:
    """A named homomorphic program applied uniformly to every request.

    ``fn`` receives one handle -- a :class:`CipherVector` for singleton
    buckets, a :class:`CipherBatch` for fused ones -- and must issue the
    *same* operation sequence on either (the shared operator surface
    guarantees this when the program is written once).  Because batched
    operands never adjust levels implicitly, programs mixing levels must
    align explicitly with ``.at_level(...)``, which both handle types
    support.

    Program identity (``key``) is part of the serving shape key: two
    requests fuse only when their programs compare equal.  The default key
    is the name, so two differently-parameterised programs must carry
    distinct names or explicit keys.
    """

    __slots__ = ("name", "fn", "key")

    def __init__(self, name: str, fn: Callable, *, key: tuple | None = None) -> None:
        self.name = str(name)
        self.fn = fn
        self.key = key if key is not None else (self.name,)

    def __call__(self, handle):
        return self.fn(handle)

    def __eq__(self, other) -> bool:
        return isinstance(other, OpProgram) and self.key == other.key

    def __hash__(self) -> int:
        return hash(("OpProgram", self.key))

    def __repr__(self) -> str:
        return f"OpProgram({self.name!r})"

    @classmethod
    def polynomial(cls, coeffs, *, name: str | None = None) -> "OpProgram":
        """Evaluate ``c0 + c1·x + ... + cd·x^d`` under encryption.

        Powers are built by a level-aligned product chain and every term is
        brought to the common (deepest) level before the additions, so the
        program runs unchanged on fused batches.  Consumes ``degree``
        multiplicative levels (plus the scalar multiplications' rescales).
        """
        coeffs = [float(c) for c in coeffs]
        if len(coeffs) < 2 or all(c == 0.0 for c in coeffs[1:]):
            raise ValueError(
                "a serving polynomial needs at least one non-zero "
                "non-constant coefficient (a constant program has no "
                "ciphertext input)"
            )
        label = name if name is not None else f"poly-deg{len(coeffs) - 1}"

        def evaluate(x):
            terms = []
            power = None
            for degree, c in enumerate(coeffs[1:], start=1):
                if power is None:
                    power = x
                else:
                    power = power * x.at_level(power.level)
                if c == 0.0:
                    continue
                terms.append(power if c == 1.0 else power * c)
            floor = min(term.level for term in terms)
            result = None
            for term in terms:
                term = term.at_level(floor)
                result = term if result is None else result + term
            if coeffs[0] != 0.0:
                result = result + coeffs[0]
            return result

        return cls(label, evaluate, key=("polynomial", tuple(coeffs)))


@dataclass
class Response:
    """Completion record of one request: the result plus timing metadata.

    ``latency`` is simulated queueing delay (dispatch minus arrival on the
    server's deterministic clock); modeled GPU execution time lives in the
    server's :class:`~repro.serve.metrics.ServeMetrics` instead, because it
    is a property of the fused batch, not of one member.
    """

    request_id: int
    vector: CipherVector | None
    batch_size: int
    arrival_time: float
    dispatch_time: float
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        """True when the program completed without raising."""
        return self.error is None

    @property
    def error_kind(self) -> str | None:
        """Structured error tag: the typed error's class name, None when ok.

        Stable values are the :mod:`repro.serve.errors` taxonomy
        (``"RequestRejected"``, ``"DeadlineExceeded"``, ``"DrainFailed"``,
        ``"DeviceLost"``); program bugs surface their own exception class
        name.  Replay drivers and benchmarks aggregate on this instead of
        string-matching messages.
        """
        return None if self.error is None else type(self.error).__name__

    @property
    def latency(self) -> float:
        """Simulated queueing latency (seconds on the server clock)."""
        return self.dispatch_time - self.arrival_time


class Request:
    """A queued serving request with a future-style completion handle."""

    __slots__ = ("id", "program", "vector", "arrival_time", "deadline", "_response")

    def __init__(self, program: OpProgram, vector: CipherVector, *,
                 arrival_time: float, deadline: float | None = None) -> None:
        if not isinstance(program, OpProgram):
            raise TypeError(
                f"expected an OpProgram, got {type(program).__name__}; wrap "
                f"callables with OpProgram(name, fn) so bucketing has a "
                f"program identity to key on"
            )
        self.id = next(_REQUEST_IDS)
        self.program = program
        self.vector = vector
        self.arrival_time = float(arrival_time)
        self.deadline = None if deadline is None else float(deadline)
        self._response: Response | None = None

    # -- future surface ------------------------------------------------------

    def done(self) -> bool:
        """Whether the request has been executed (successfully or not)."""
        return self._response is not None

    def response(self) -> Response:
        """The completion record; raises while the request is still queued."""
        if self._response is None:
            raise RuntimeError(
                f"request {self.id} ({self.program.name}) is still queued; "
                f"drive the server (poll/flush) before reading the response"
            )
        return self._response

    def result(self) -> CipherVector:
        """The result handle; re-raises the program's error if it failed."""
        response = self.response()
        if response.error is not None:
            raise response.error
        return response.vector

    def resolve(self, vector: CipherVector | None, *, batch_size: int,
                dispatch_time: float, error: Exception | None = None) -> Response:
        """Attach the completion record (called by the executor once)."""
        if self._response is not None:
            raise RuntimeError(f"request {self.id} was already resolved")
        self._response = Response(
            request_id=self.id,
            vector=vector,
            batch_size=batch_size,
            arrival_time=self.arrival_time,
            dispatch_time=float(dispatch_time),
            error=error,
        )
        return self._response

    def __repr__(self) -> str:
        state = "done" if self.done() else "queued"
        return f"Request(id={self.id}, program={self.program.name!r}, {state})"


__all__ = ["OpProgram", "Request", "Response"]
