"""``OpenFHEClient``: the trusted client-side library.

Plays the role OpenFHE plays in the paper: it owns the secret key, does
key generation, encoding, encryption, decryption and serialization on the
"CPU side", and exchanges only raw adapter structures and public key
material with the server (:class:`repro.ckks.evaluator.Evaluator`).  The
paper's integration tests compare every server-side operation against this
client; :mod:`tests.integration` reproduces that methodology.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import Context
from repro.ckks.encryption import Decryptor, Encryptor, decode, encode
from repro.ckks.keys import KeyGenerator, KeySet
from repro.ckks.noise import measured_precision_bits
from repro.ckks.params import CKKSParameters
from repro.openfhe.adapter import (
    RawCiphertext,
    export_ciphertext,
    import_ciphertext,
)


class OpenFHEClient:
    """Client-side CKKS operations (KeyGen, Encode, Encrypt, Decrypt).

    Parameters
    ----------
    params:
        CKKS parameter set shared with the server.
    seed:
        Seed for key generation and encryption randomness (tests use fixed
        seeds for reproducibility).
    """

    def __init__(self, params: CKKSParameters, seed: int | None = None) -> None:
        self.params = params
        self.context = Context(params)
        self._seed = seed
        self._keygen = KeyGenerator(self.context, seed)
        self._keys: KeySet | None = None
        self._encryptor: Encryptor | None = None
        self._decryptor: Decryptor | None = None

    # ------------------------------------------------------------------
    # key management
    # ------------------------------------------------------------------

    def key_gen(self, rotations: list[int] | tuple[int, ...] = (),
                *, conjugation: bool = False) -> KeySet:
        """Generate the key material and return the server-safe key set.

        The returned :class:`KeySet` has its secret key stripped -- it is
        what gets shipped to the (untrusted) server together with the
        evaluation keys.
        """
        self._keys = self._keygen.generate(rotations, conjugation=conjugation)
        encryption_seed = None if self._seed is None else self._seed + 1
        self._encryptor = Encryptor(self.context, self._keys.public_key, seed=encryption_seed)
        self._decryptor = Decryptor(self.context, self._keys.secret_key)
        return self._keys.without_secret()

    def add_rotation_keys(self, rotations: list[int]) -> KeySet:
        """Generate additional rotation keys (e.g. for bootstrapping)."""
        keys = self._require_keys()
        for step in rotations:
            if step not in keys.rotation_keys:
                keys.rotation_keys[int(step)] = self._keygen.generate_rotation_key(
                    keys.secret_key, int(step)
                )
        return keys.without_secret()

    def add_conjugation_key(self) -> KeySet:
        """Generate the conjugation key if it is missing."""
        keys = self._require_keys()
        if keys.conjugation_key is None:
            keys.conjugation_key = self._keygen.generate_conjugation_key(keys.secret_key)
        return keys.without_secret()

    @property
    def has_keys(self) -> bool:
        """True once :meth:`key_gen` has run."""
        return self._keys is not None

    @property
    def keys(self) -> KeySet:
        """Return the full key set (secret included); client-side only."""
        return self._require_keys()

    @property
    def encryptor(self) -> Encryptor:
        """The public-key encryptor (available after :meth:`key_gen`)."""
        self._require_keys()
        return self._encryptor

    @property
    def decryptor(self) -> Decryptor:
        """The secret-key decryptor (available after :meth:`key_gen`)."""
        self._require_keys()
        return self._decryptor

    # ------------------------------------------------------------------
    # encode / encrypt / decrypt
    # ------------------------------------------------------------------

    def encrypt(self, values, *, scale: float | None = None,
                limb_count: int | None = None) -> RawCiphertext:
        """Encode and encrypt a message, returning the raw exchange object."""
        self._require_keys()
        plaintext = encode(self.context, values, scale=scale, limb_count=limb_count)
        ciphertext = self._encryptor.encrypt(plaintext)
        return export_ciphertext(ciphertext, parameter_tag=self.params.describe())

    def upload(self, raw: RawCiphertext, server_context: Context | None = None) -> Ciphertext:
        """Convert a raw ciphertext into a server-side ciphertext object."""
        return import_ciphertext(server_context or self.context, raw)

    def decrypt(self, ciphertext: Ciphertext | RawCiphertext,
                length: int | None = None) -> np.ndarray:
        """Decrypt a (raw or server) ciphertext back into message values."""
        self._require_keys()
        if isinstance(ciphertext, RawCiphertext):
            ciphertext = import_ciphertext(self.context, ciphertext)
        return self._decryptor.decrypt_values(ciphertext, length)

    def decode(self, plaintext, length: int | None = None) -> np.ndarray:
        """Decode an encoded plaintext."""
        return decode(self.context, plaintext, length)

    def precision_bits(self, ciphertext: Ciphertext | RawCiphertext, expected) -> float:
        """Measured message precision of a server result, in bits.

        This is the quantity Table VI reports as the achieved message
        precision of bootstrapping.
        """
        expected = np.asarray(expected)
        actual = self.decrypt(ciphertext, length=len(expected))
        return measured_precision_bits(expected, actual)

    # ------------------------------------------------------------------

    def _require_keys(self) -> KeySet:
        if self._keys is None:
            raise RuntimeError("call key_gen() before using the client")
        return self._keys


__all__ = ["OpenFHEClient"]
