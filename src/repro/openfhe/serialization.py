"""Serialization of adapter exchange objects.

OpenFHE handles serialization on the client side (Figure 1); the adapter
structures defined in :mod:`repro.openfhe.adapter` are the objects that
actually travel between client and server, so they are what gets
serialized here.  The format is a compact JSON envelope with hexadecimal
residue payloads -- simple, portable, and byte-for-byte reproducible,
which is what the round-trip unit tests assert.
"""

from __future__ import annotations

import json

import numpy as np

from repro.openfhe.adapter import RawCiphertext, RawPlaintext, RawPolynomial

_FORMAT_VERSION = 1


def _encode_polynomial(poly: RawPolynomial) -> dict:
    return {
        "moduli": [str(q) for q in poly.moduli],
        "fmt": poly.fmt,
        "limbs": [
            "".join(f"{int(x):016x}" for x in limb) for limb in poly.limbs
        ],
    }


def _decode_polynomial(payload: dict) -> RawPolynomial:
    moduli = [int(q) for q in payload["moduli"]]
    limbs = []
    for blob in payload["limbs"]:
        values = [int(blob[i : i + 16], 16) for i in range(0, len(blob), 16)]
        limbs.append(np.array(values, dtype=object))
    return RawPolynomial(moduli=moduli, limbs=limbs, fmt=payload["fmt"])


def serialize_ciphertext(raw: RawCiphertext) -> bytes:
    """Serialize a raw ciphertext into bytes."""
    payload = {
        "version": _FORMAT_VERSION,
        "type": "ciphertext",
        "scale": raw.scale,
        "slots": raw.slots,
        "noise_bits": raw.noise_bits,
        "encoded_length": raw.encoded_length,
        "parameter_tag": raw.parameter_tag,
        "c0": _encode_polynomial(raw.c0),
        "c1": _encode_polynomial(raw.c1),
    }
    return json.dumps(payload).encode("utf-8")


def deserialize_ciphertext(blob: bytes) -> RawCiphertext:
    """Deserialize bytes produced by :func:`serialize_ciphertext`."""
    payload = json.loads(blob.decode("utf-8"))
    if payload.get("type") != "ciphertext":
        raise ValueError("blob does not contain a ciphertext")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported serialization version {payload.get('version')}")
    return RawCiphertext(
        c0=_decode_polynomial(payload["c0"]),
        c1=_decode_polynomial(payload["c1"]),
        scale=float(payload["scale"]),
        slots=int(payload["slots"]),
        noise_bits=float(payload["noise_bits"]),
        encoded_length=payload["encoded_length"],
        parameter_tag=payload.get("parameter_tag", ""),
    )


def serialize_plaintext(raw: RawPlaintext) -> bytes:
    """Serialize a raw plaintext into bytes."""
    payload = {
        "version": _FORMAT_VERSION,
        "type": "plaintext",
        "scale": raw.scale,
        "slots": raw.slots,
        "encoded_length": raw.encoded_length,
        "parameter_tag": raw.parameter_tag,
        "poly": _encode_polynomial(raw.poly),
    }
    return json.dumps(payload).encode("utf-8")


def deserialize_plaintext(blob: bytes) -> RawPlaintext:
    """Deserialize bytes produced by :func:`serialize_plaintext`."""
    payload = json.loads(blob.decode("utf-8"))
    if payload.get("type") != "plaintext":
        raise ValueError("blob does not contain a plaintext")
    return RawPlaintext(
        poly=_decode_polynomial(payload["poly"]),
        scale=float(payload["scale"]),
        slots=int(payload["slots"]),
        encoded_length=payload["encoded_length"],
        parameter_tag=payload.get("parameter_tag", ""),
    )


__all__ = [
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_plaintext",
    "deserialize_plaintext",
]
