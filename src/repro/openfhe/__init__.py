"""Client-side reference library and adapter layer (paper §III-B).

In the paper, client-side operations (key generation, encoding,
encryption, decryption, serialization) run inside OpenFHE on the CPU and
the FIDESlib server communicates with it through a thin adapter layer that
exchanges simplified raw data structures.  This subpackage reproduces that
architecture:

* :mod:`repro.openfhe.client` -- ``OpenFHEClient``: the trusted client
  that owns the secret key and performs every client-side operation.
* :mod:`repro.openfhe.adapter` -- the adapter layer: raw exchange objects
  and the conversions between client objects and the server-side
  (:mod:`repro.ckks`) classes, including the noise metadata round trip.
* :mod:`repro.openfhe.serialization` -- byte-level serialization of the
  raw exchange objects.
"""

from repro.openfhe.client import OpenFHEClient
from repro.openfhe.adapter import (
    RawCiphertext,
    RawPlaintext,
    export_ciphertext,
    import_ciphertext,
    export_plaintext,
    import_plaintext,
)

__all__ = [
    "OpenFHEClient",
    "RawCiphertext",
    "RawPlaintext",
    "export_ciphertext",
    "import_ciphertext",
    "export_plaintext",
    "import_plaintext",
]
