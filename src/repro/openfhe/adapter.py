"""The thin adapter layer between the client and the GPU-style server.

The paper decouples OpenFHE from FIDESlib by exchanging *simplified data
structures that retain essential data and metadata fields* instead of
sharing rich library objects.  :class:`RawCiphertext` / :class:`RawPlaintext`
are those structures here: plain residue arrays plus the metadata CKKS
needs (moduli, scale, slot count, format, noise estimate).  The export
functions flatten server objects into raw structures; the import functions
rebuild server objects from them.  The ciphertext round trip also carries
the static noise estimate back to the client, as described in §III-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import Context
from repro.core.limb import LimbFormat
from repro.core.rns_poly import RNSPoly


@dataclass
class RawPolynomial:
    """A polynomial as exchanged across the adapter: one array per limb."""

    moduli: list[int]
    limbs: list[np.ndarray]
    fmt: str = "eval"

    def to_rns_poly(self, ring_degree: int) -> RNSPoly:
        """Rebuild an :class:`RNSPoly` from the raw arrays."""
        fmt = LimbFormat.EVALUATION if self.fmt == "eval" else LimbFormat.COEFFICIENT
        return RNSPoly.from_limb_arrays(ring_degree, self.moduli, self.limbs, fmt)

    @classmethod
    def from_rns_poly(cls, poly: RNSPoly) -> "RawPolynomial":
        fmt = "eval" if poly.fmt is LimbFormat.EVALUATION else "coeff"
        return cls(
            moduli=list(poly.moduli),
            limbs=[np.array([int(x) for x in limb.data], dtype=object) for limb in poly.limbs],
            fmt=fmt,
        )


@dataclass
class RawCiphertext:
    """Ciphertext exchange structure (data plus essential metadata)."""

    c0: RawPolynomial
    c1: RawPolynomial
    scale: float
    slots: int
    noise_bits: float = 0.0
    encoded_length: int | None = None
    parameter_tag: str = ""


@dataclass
class RawPlaintext:
    """Plaintext exchange structure."""

    poly: RawPolynomial
    scale: float
    slots: int
    encoded_length: int | None = None
    parameter_tag: str = ""


def export_ciphertext(ciphertext: Ciphertext, *, parameter_tag: str = "") -> RawCiphertext:
    """Flatten a server ciphertext into the raw exchange structure."""
    return RawCiphertext(
        c0=RawPolynomial.from_rns_poly(ciphertext.c0),
        c1=RawPolynomial.from_rns_poly(ciphertext.c1),
        scale=ciphertext.scale,
        slots=ciphertext.slots,
        noise_bits=ciphertext.noise_bits,
        encoded_length=ciphertext.encoded_length,
        parameter_tag=parameter_tag,
    )


def import_ciphertext(context: Context, raw: RawCiphertext) -> Ciphertext:
    """Rebuild a server ciphertext from the raw exchange structure.

    Validates that the moduli the client sent are a prefix of the context's
    moduli chain (the same check FIDESlib's adapter performs before copying
    data to the GPU).
    """
    _validate_moduli(context, raw.c0.moduli)
    _validate_moduli(context, raw.c1.moduli)
    return Ciphertext(
        c0=raw.c0.to_rns_poly(context.ring_degree),
        c1=raw.c1.to_rns_poly(context.ring_degree),
        scale=raw.scale,
        slots=raw.slots,
        noise_bits=raw.noise_bits,
        encoded_length=raw.encoded_length,
    )


def export_plaintext(plaintext: Plaintext, *, parameter_tag: str = "") -> RawPlaintext:
    """Flatten a plaintext into the raw exchange structure."""
    return RawPlaintext(
        poly=RawPolynomial.from_rns_poly(plaintext.poly),
        scale=plaintext.scale,
        slots=plaintext.slots,
        encoded_length=plaintext.encoded_length,
        parameter_tag=parameter_tag,
    )


def import_plaintext(context: Context, raw: RawPlaintext) -> Plaintext:
    """Rebuild a plaintext from the raw exchange structure."""
    _validate_moduli(context, raw.poly.moduli)
    return Plaintext(
        poly=raw.poly.to_rns_poly(context.ring_degree),
        scale=raw.scale,
        slots=raw.slots,
        encoded_length=raw.encoded_length,
    )


def _validate_moduli(context: Context, moduli: list[int]) -> None:
    expected = context.moduli[: len(moduli)]
    if list(moduli) != expected:
        raise ValueError(
            "raw object moduli do not match the server context "
            f"(got {len(moduli)} limbs)"
        )


__all__ = [
    "RawPolynomial",
    "RawCiphertext",
    "RawPlaintext",
    "export_ciphertext",
    "import_ciphertext",
    "export_plaintext",
    "import_plaintext",
]
