"""Calibration constants and the trace-vs-model reconciliation report.

The execution model's structural parameters (bytes moved, operation
counts, kernel decomposition, cache behaviour) come from the algorithm
descriptions in the paper and from the functional implementation in
:mod:`repro.ckks`.  The constants here are the remaining free parameters
-- arithmetic cost of a modular multiplication, roofline efficiencies,
backend-specific overheads -- chosen once so that the reproduced
Table V/VI headline numbers land in the right range on the RTX 4090 and
Ryzen 9 7900.  They are *not* tuned per experiment; every table and figure
uses the same constants, so the trends (the paper's "shape") emerge from
the model structure rather than from per-point fitting.

Since the execution-plane refactor there are *two* producers of kernel
decompositions: the hand-built :mod:`repro.perf.costmodel` workload math
and the traces recorded from the real data plane by
:mod:`repro.core.dispatch`.  :func:`reconcile_trace` cross-validates them
-- kernel counts, bytes and int ops, per kernel kind -- and reports the
deltas, so drift between what the model charges and what the code
actually executes fails loudly instead of silently skewing every figure.

See EXPERIMENTS.md for the calibration discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernel import (
    BASECONV_MAC_OPS,
    BUTTERFLY_OPS,
    MODADD_OPS,
    MODMUL_OPS,
    SHOUP_MUL_OPS,
)


@dataclass(frozen=True)
class ArithmeticCosts:
    """Integer-operation counts of the modular primitives (Table III).

    Defaults come from :mod:`repro.gpu.kernel`, the shared formula layer,
    so the cost model and the execution-plane dispatcher price arithmetic
    identically.
    """

    #: int ops of one modular multiplication with Barrett reduction
    #: (2 wide + 1 low multiplications plus correction).
    modmul_ops: float = MODMUL_OPS
    #: int ops of one Shoup modular multiplication (1 wide + 2 low).
    shoup_mul_ops: float = SHOUP_MUL_OPS
    #: int ops of one modular addition/subtraction.
    modadd_ops: float = MODADD_OPS
    #: int ops of one NTT butterfly (Shoup multiply + add + sub).
    butterfly_ops: float = BUTTERFLY_OPS
    #: int ops of one multiply-accumulate in the base-conversion kernel
    #: (128-bit accumulation, single reduction amortised away).
    baseconv_mac_ops: float = BASECONV_MAC_OPS


@dataclass(frozen=True)
class GPUModelCalibration:
    """Roofline and scheduling constants for the GPU backends."""

    compute_efficiency: float = 0.35
    bandwidth_efficiency: float = 0.80
    #: Streams used by FIDESlib's limb-batched execution.
    fideslib_streams: int = 8
    #: Phantom issues its kernels on a single stream.
    phantom_streams: int = 1
    #: Extra data volume Phantom pays because element-wise steps are not
    #: fused into its NTT kernels (Rescale/ModDown/HMult fusions, §III-F.5).
    phantom_fusion_penalty: float = 1.15
    #: Extra arithmetic per butterfly of Phantom's radix-8 NTT relative to
    #: the radix-2 formulation the paper found cheaper.
    phantom_ntt_compute_penalty: float = 1.12


@dataclass(frozen=True)
class CPUModelCalibration:
    """Constants of the OpenFHE CPU baselines."""

    #: Modular-arithmetic operations retired per cycle by one core running
    #: the generic (non-HEXL) OpenFHE backend.
    baseline_ops_per_cycle: float = 1.10
    #: Effective parallel speedup of the 24-thread HEXL configuration
    #: (OpenFHE's abstraction layers and allocator serialise most of the
    #: gain, which is why the paper measures only 2-3.5x on large ops).
    hexl_parallel_speedup: float = 2.2
    #: Additional vector speedup HEXL provides on NTT/element-wise compute.
    hexl_vector_speedup: float = 1.2
    #: Fraction of peak DRAM bandwidth the multithreaded run achieves.
    hexl_bandwidth_efficiency: float = 0.35
    #: Fixed per-operation software overhead (allocation, layer dispatch),
    #: in seconds, for the baseline and HEXL configurations.
    baseline_op_overhead: float = 8.0e-4
    hexl_op_overhead: float = 1.0e-4


ARITHMETIC = ArithmeticCosts()
GPU_CALIBRATION = GPUModelCalibration()
CPU_CALIBRATION = CPUModelCalibration()


# ---------------------------------------------------------------------------
# Trace-vs-costmodel reconciliation
# ---------------------------------------------------------------------------

#: Kernel kinds the reconciliation aggregates over.  Classification is by
#: kernel-name substring so both producers' tag vocabularies map onto the
#: same buckets (``rescale-intt`` and ``intt`` are both inverse NTTs,
#: ``modup``/``moddown-conv``/``baseconv`` are all Equation-1 kernels).
KERNEL_KINDS = ("intt", "ntt", "baseconv", "automorphism", "copy", "elementwise")


def kernel_kind(name: str) -> str:
    """Classify a kernel name into one of :data:`KERNEL_KINDS`."""
    base = name.split("[", 1)[0]
    if "intt" in base:
        return "intt"
    if "ntt" in base:
        return "ntt"
    # Equation-1 kernels carry a "[source->target]" shape suffix.
    if "baseconv" in base or "->" in name:
        return "baseconv"
    if "automorph" in base:
        return "automorphism"
    if "copy" in base:
        return "copy"
    return "elementwise"


@dataclass
class KindDelta:
    """Per-kind totals of the trace and the model side by side."""

    kind: str
    trace_kernels: float = 0.0
    model_kernels: float = 0.0
    trace_bytes: float = 0.0
    model_bytes: float = 0.0
    trace_int_ops: float = 0.0
    model_int_ops: float = 0.0

    @property
    def kernel_delta(self) -> float:
        """Relative kernel-count divergence of this kind."""
        return _relative_delta(self.trace_kernels, self.model_kernels)


def _relative_delta(measured: float, reference: float) -> float:
    baseline = max(abs(reference), abs(measured))
    if baseline == 0:
        return 0.0
    return abs(measured - reference) / baseline


@dataclass
class TraceReconciliation:
    """Deltas between a recorded trace and a hand-built operation cost."""

    name: str
    kinds: list[KindDelta] = field(default_factory=list)

    @property
    def kernel_count_trace(self) -> float:
        """Total kernel launches recorded in the trace."""
        return sum(k.trace_kernels for k in self.kinds)

    @property
    def kernel_count_model(self) -> float:
        """Total kernel launches the cost model charges."""
        return sum(k.model_kernels for k in self.kinds)

    @property
    def bytes_trace(self) -> float:
        """Total bytes moved according to the trace."""
        return sum(k.trace_bytes for k in self.kinds)

    @property
    def bytes_model(self) -> float:
        """Total bytes moved according to the cost model."""
        return sum(k.model_bytes for k in self.kinds)

    @property
    def int_ops_trace(self) -> float:
        """Total integer operations according to the trace."""
        return sum(k.trace_int_ops for k in self.kinds)

    @property
    def int_ops_model(self) -> float:
        """Total integer operations according to the cost model."""
        return sum(k.model_int_ops for k in self.kinds)

    @property
    def kernel_count_delta(self) -> float:
        """Relative kernel-count divergence (0.0 = exact agreement)."""
        return _relative_delta(self.kernel_count_trace, self.kernel_count_model)

    @property
    def bytes_delta(self) -> float:
        """Relative bytes-moved divergence."""
        return _relative_delta(self.bytes_trace, self.bytes_model)

    @property
    def int_ops_delta(self) -> float:
        """Relative integer-operation divergence."""
        return _relative_delta(self.int_ops_trace, self.int_ops_model)

    def within(self, *, kernel_tolerance: float = 0.05,
               bytes_tolerance: float = 0.05) -> bool:
        """True when kernel counts and bytes agree within the tolerances."""
        return (
            self.kernel_count_delta <= kernel_tolerance
            and self.bytes_delta <= bytes_tolerance
        )

    def describe(self) -> str:
        """Human-readable delta report (one line per kernel kind)."""
        lines = [
            f"== trace vs cost model: {self.name} ==",
            f"kernels: trace={self.kernel_count_trace:g} "
            f"model={self.kernel_count_model:g} "
            f"delta={self.kernel_count_delta:.2%}",
            f"bytes:   trace={self.bytes_trace:.4g} "
            f"model={self.bytes_model:.4g} delta={self.bytes_delta:.2%}",
            f"int ops: trace={self.int_ops_trace:.4g} "
            f"model={self.int_ops_model:.4g} delta={self.int_ops_delta:.2%}",
        ]
        for kind in self.kinds:
            lines.append(
                f"  {kind.kind:<12} kernels {kind.trace_kernels:g}/"
                f"{kind.model_kernels:g}  bytes {kind.trace_bytes:.4g}/"
                f"{kind.model_bytes:.4g}"
            )
        return "\n".join(lines)


def reconcile_trace(trace, cost, *, name: str | None = None) -> TraceReconciliation:
    """Cross-validate a recorded trace against a hand-built operation cost.

    ``trace`` is anything exposing ``kernels()`` (a
    :class:`repro.core.dispatch.KernelTrace`) or an iterable of
    :class:`repro.gpu.kernel.Kernel`; ``cost`` is an
    :class:`repro.perf.costmodel.OperationCost` (or any object with a
    ``kernels`` attribute).  Build the cost with ``limb_batch=None`` to
    compare against traces recorded from the all-limbs-per-kernel data
    plane.
    """
    trace_kernels = trace.kernels() if hasattr(trace, "kernels") and callable(
        getattr(trace, "kernels")
    ) else list(trace)
    model_kernels = cost.kernels if hasattr(cost, "kernels") else list(cost)
    by_kind = {kind: KindDelta(kind) for kind in KERNEL_KINDS}
    for kernel in trace_kernels:
        entry = by_kind[kernel_kind(kernel.name)]
        entry.trace_kernels += kernel.launches
        entry.trace_bytes += kernel.bytes_moved
        entry.trace_int_ops += kernel.int_ops
    for kernel in model_kernels:
        entry = by_kind[kernel_kind(kernel.name)]
        entry.model_kernels += kernel.launches
        entry.model_bytes += kernel.bytes_moved
        entry.model_int_ops += kernel.int_ops
    kinds = [
        entry for entry in by_kind.values()
        if entry.trace_kernels or entry.model_kernels
    ]
    return TraceReconciliation(
        name=name if name is not None else getattr(cost, "name", "operation"),
        kinds=kinds,
    )


__all__ = [
    "ArithmeticCosts",
    "GPUModelCalibration",
    "CPUModelCalibration",
    "ARITHMETIC",
    "GPU_CALIBRATION",
    "CPU_CALIBRATION",
    "KERNEL_KINDS",
    "kernel_kind",
    "KindDelta",
    "TraceReconciliation",
    "reconcile_trace",
]
