"""Calibration constants of the performance models.

The execution model's structural parameters (bytes moved, operation
counts, kernel decomposition, cache behaviour) come from the algorithm
descriptions in the paper and from the functional implementation in
:mod:`repro.ckks`.  The constants here are the remaining free parameters
-- arithmetic cost of a modular multiplication, roofline efficiencies,
backend-specific overheads -- chosen once so that the reproduced
Table V/VI headline numbers land in the right range on the RTX 4090 and
Ryzen 9 7900.  They are *not* tuned per experiment; every table and figure
uses the same constants, so the trends (the paper's "shape") emerge from
the model structure rather than from per-point fitting.

See EXPERIMENTS.md for the calibration discussion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArithmeticCosts:
    """Integer-operation counts of the modular primitives (Table III)."""

    #: int ops of one modular multiplication with Barrett reduction
    #: (2 wide + 1 low multiplications plus correction).
    modmul_ops: float = 6.0
    #: int ops of one Shoup modular multiplication (1 wide + 2 low).
    shoup_mul_ops: float = 5.0
    #: int ops of one modular addition/subtraction.
    modadd_ops: float = 2.0
    #: int ops of one NTT butterfly (Shoup multiply + add + sub).
    butterfly_ops: float = 9.0
    #: int ops of one multiply-accumulate in the base-conversion kernel
    #: (128-bit accumulation, single reduction amortised away).
    baseconv_mac_ops: float = 4.0


@dataclass(frozen=True)
class GPUModelCalibration:
    """Roofline and scheduling constants for the GPU backends."""

    compute_efficiency: float = 0.35
    bandwidth_efficiency: float = 0.80
    #: Streams used by FIDESlib's limb-batched execution.
    fideslib_streams: int = 8
    #: Phantom issues its kernels on a single stream.
    phantom_streams: int = 1
    #: Extra data volume Phantom pays because element-wise steps are not
    #: fused into its NTT kernels (Rescale/ModDown/HMult fusions, §III-F.5).
    phantom_fusion_penalty: float = 1.15
    #: Extra arithmetic per butterfly of Phantom's radix-8 NTT relative to
    #: the radix-2 formulation the paper found cheaper.
    phantom_ntt_compute_penalty: float = 1.12


@dataclass(frozen=True)
class CPUModelCalibration:
    """Constants of the OpenFHE CPU baselines."""

    #: Modular-arithmetic operations retired per cycle by one core running
    #: the generic (non-HEXL) OpenFHE backend.
    baseline_ops_per_cycle: float = 1.10
    #: Effective parallel speedup of the 24-thread HEXL configuration
    #: (OpenFHE's abstraction layers and allocator serialise most of the
    #: gain, which is why the paper measures only 2-3.5x on large ops).
    hexl_parallel_speedup: float = 2.2
    #: Additional vector speedup HEXL provides on NTT/element-wise compute.
    hexl_vector_speedup: float = 1.2
    #: Fraction of peak DRAM bandwidth the multithreaded run achieves.
    hexl_bandwidth_efficiency: float = 0.35
    #: Fixed per-operation software overhead (allocation, layer dispatch),
    #: in seconds, for the baseline and HEXL configurations.
    baseline_op_overhead: float = 8.0e-4
    hexl_op_overhead: float = 1.0e-4


ARITHMETIC = ArithmeticCosts()
GPU_CALIBRATION = GPUModelCalibration()
CPU_CALIBRATION = CPUModelCalibration()

__all__ = [
    "ArithmeticCosts",
    "GPUModelCalibration",
    "CPUModelCalibration",
    "ARITHMETIC",
    "GPU_CALIBRATION",
    "CPU_CALIBRATION",
]
