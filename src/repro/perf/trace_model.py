"""Trace-driven performance backend: price recorded kernel streams.

The hand-built models in :mod:`repro.perf.costmodel` answer "what would
this operation cost"; :class:`TraceCostModel` answers "what would the
kernel stream *the data plane actually executed* cost".  It consumes a
:class:`repro.core.dispatch.KernelTrace` recorded from the real execution
plane, prices every kernel with the roofline
:class:`repro.gpu.kernel.KernelCostModel`, and schedules the stream on the
dependency-aware multi-stream simulator of :mod:`repro.gpu.stream` --
launch-overhead hiding across streams (§III-F.1) included.

Because the evaluator and key-switching layers tag operation scopes, the
resulting :class:`TraceReport` also segments the timeline into
hmult/modup/moddown/rescale regions, which is how the Fig./Table
benchmarks consume measured-from-execution traces instead of duplicating
workload math.

Fused traces price transparently: :func:`repro.core.fusion.fuse_trace`
replaces each merged chain with a single kernel carrying the *summed*
``int_ops`` of its members but only the chain-*endpoint* bytes (interior
producer/consumer round trips subtracted), so pricing the fused trace
against the original quantifies exactly the launch overhead and global
memory traffic the fusion pass removed -- no special casing here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernel import KernelCostModel, KernelTiming, TransferKernel
from repro.gpu.platforms import ComputePlatform
from repro.gpu.stream import ScheduleResult, StreamScheduler
from repro.perf.calibration import GPU_CALIBRATION


@dataclass
class ScopeCost:
    """Aggregate cost of one operation scope inside a trace."""

    scope: str
    kernel_count: int = 0
    bytes_moved: float = 0.0
    int_ops: float = 0.0
    execution_time: float = 0.0


@dataclass
class TraceReport:
    """Priced and scheduled view of one recorded kernel trace."""

    platform: str
    streams: int
    schedule: ScheduleResult
    segments: dict[str, ScopeCost] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """End-to-end simulated time of the trace (seconds)."""
        return self.schedule.makespan

    @property
    def execution_time(self) -> float:
        """Device busy time (sum of kernel execution times)."""
        return self.schedule.execution_time

    @property
    def launch_time(self) -> float:
        """Total CPU-side launch overhead."""
        return self.schedule.launch_time

    @property
    def kernel_count(self) -> int:
        """Number of kernel launches in the trace."""
        return self.schedule.kernel_count

    @property
    def transfer_time(self) -> float:
        """Total interconnect-link time (zero for single-device traces)."""
        return self.schedule.transfer_time

    def device_busy(self) -> dict[int, float]:
        """Busy seconds per cluster device (transfers excluded)."""
        return self.schedule.device_busy()

    def summary(self) -> dict:
        """Machine-readable summary (used by the benchmark artifacts)."""
        summary = {
            "platform": self.platform,
            "streams": self.streams,
            "makespan_s": self.makespan,
            "execution_s": self.execution_time,
            "launch_s": self.launch_time,
            "launch_hidden_s": self.schedule.launch_hidden,
            "kernel_count": self.kernel_count,
            "segments": {
                name: {
                    "kernels": segment.kernel_count,
                    "bytes": segment.bytes_moved,
                    "execution_s": segment.execution_time,
                }
                for name, segment in self.segments.items()
            },
        }
        device_busy = self.device_busy()
        if self.transfer_time > 0.0 or len(device_busy) > 1:
            summary["transfer_s"] = self.transfer_time
            summary["device_busy_s"] = {
                str(device): busy for device, busy in sorted(device_busy.items())
            }
        return summary


class TraceCostModel:
    """Prices a recorded :class:`~repro.core.dispatch.KernelTrace`.

    Calibration defaults match the FIDESlib GPU model
    (:data:`repro.perf.calibration.GPU_CALIBRATION`), so a priced trace is
    directly comparable with :class:`repro.perf.fideslib_model.FIDESlibModel`
    numbers for the same operation.
    """

    def __init__(
        self,
        platform: ComputePlatform,
        *,
        streams: int | None = None,
        compute_efficiency: float | None = None,
        bandwidth_efficiency: float | None = None,
        topology=None,
    ) -> None:
        self.platform = platform
        self.topology = topology
        self.streams = streams if streams is not None else GPU_CALIBRATION.fideslib_streams
        self.cost_model = KernelCostModel(
            platform,
            compute_efficiency=(
                compute_efficiency
                if compute_efficiency is not None
                else GPU_CALIBRATION.compute_efficiency
            ),
            bandwidth_efficiency=(
                bandwidth_efficiency
                if bandwidth_efficiency is not None
                else GPU_CALIBRATION.bandwidth_efficiency
            ),
        )

    def _time_kernel(self, kernel) -> KernelTiming:
        """Roofline timing, except transfers priced from their link."""
        if isinstance(kernel, TransferKernel):
            if kernel.is_self_transfer:
                return KernelTiming(kernel=kernel, compute_time=0.0, memory_time=0.0)
            if self.topology is None:
                raise ValueError(
                    f"trace contains cross-device transfer {kernel.name!r} but "
                    f"this TraceCostModel has no topology; pass topology= to "
                    f"price multi-device traces"
                )
            link = self.topology.link(kernel.src_device, kernel.dst_device)
            return KernelTiming(
                kernel=kernel,
                compute_time=0.0,
                memory_time=link.transfer_time(kernel.payload_bytes),
            )
        return self.cost_model.time_kernel(kernel)

    def price(self, trace, *, streams: int | None = None) -> TraceReport:
        """Time, schedule and segment a recorded trace."""
        streams = streams if streams is not None else self.streams
        timings = [self._time_kernel(k) for k in trace.kernels()]
        scheduler = StreamScheduler(
            self.platform, streams=streams, topology=self.topology
        )
        schedule = scheduler.schedule(timings, dependencies=trace.dependencies())
        segments: dict[str, ScopeCost] = {}
        for event, timing in zip(trace, timings):
            leaf = event.scope.rsplit("/", 1)[-1] if event.scope else ""
            segment = segments.setdefault(leaf, ScopeCost(scope=leaf))
            segment.kernel_count += int(round(event.kernel.launches))
            segment.bytes_moved += event.kernel.bytes_moved
            segment.int_ops += event.kernel.int_ops
            segment.execution_time += timing.execution_time
        return TraceReport(
            platform=self.platform.name,
            streams=streams,
            schedule=schedule,
            segments=segments,
        )

    def makespan(self, trace, *, streams: int | None = None) -> float:
        """Shortcut: the simulated end-to-end time of a trace (seconds)."""
        return self.price(trace, streams=streams).makespan


__all__ = ["TraceCostModel", "TraceReport", "ScopeCost"]
