"""FIDESlib execution plan on the GPU model.

Maps CKKS operations to kernel sequences with every optimisation the paper
describes enabled: kernel fusion (§III-F.5), limb batching with
multi-stream execution (§III-F.1), the radix-2 hierarchical NTT
(§III-F.4) and hoisted rotations (§III-F.6).  The limb batch is a tunable
parameter exactly as in the library; :meth:`best_limb_batch` sweeps it the
way Figure 7 does and returns the fastest configuration for the platform.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ckks.params import CKKSParameters
from repro.gpu.device import ExecutionResult, GPUDevice
from repro.gpu.platforms import ComputePlatform
from repro.perf.calibration import GPU_CALIBRATION
from repro.perf.costmodel import CKKSOperationCosts, OperationCost


class FIDESlibModel:
    """Performance model of FIDESlib on a given GPU platform."""

    #: Operations exposed by the library (Figure 1 API functionality).
    SUPPORTED_OPERATIONS = (
        "ScalarAdd", "PtAdd", "HAdd", "ScalarMult", "PtMult", "HMult",
        "HSquare", "Rescale", "HRotate", "HConjugate", "HoistedRotate",
        "NTT", "iNTT", "PtMultRescale", "KeySwitch", "Bootstrap",
    )

    def __init__(
        self,
        platform: ComputePlatform,
        params: CKKSParameters,
        *,
        limb_batch: int | None = None,
        streams: int | None = None,
    ) -> None:
        self.platform = platform
        self.params = params
        self.limb_batch = limb_batch if limb_batch is not None else params.limb_batch
        self.device = GPUDevice(
            platform,
            streams=streams if streams is not None else GPU_CALIBRATION.fideslib_streams,
            compute_efficiency=GPU_CALIBRATION.compute_efficiency,
            bandwidth_efficiency=GPU_CALIBRATION.bandwidth_efficiency,
        )
        self.costs = CKKSOperationCosts(params, limb_batch=self.limb_batch, fusion=True)

    # ------------------------------------------------------------------

    def supports(self, operation: str) -> bool:
        """True when FIDESlib implements ``operation`` (it implements all)."""
        return operation in self.SUPPORTED_OPERATIONS

    def operation_cost(self, operation: str, limbs: int | None = None, **kwargs) -> OperationCost:
        """Return the kernel decomposition of ``operation``."""
        limbs = self.params.limb_count if limbs is None else limbs
        builders = {
            "ScalarAdd": lambda: self.costs.scalar_add(limbs),
            "PtAdd": lambda: self.costs.ptadd(limbs),
            "HAdd": lambda: self.costs.hadd(limbs),
            "ScalarMult": lambda: self.costs.scalar_mult(limbs),
            "PtMult": lambda: self.costs.ptmult(limbs),
            "HMult": lambda: self.costs.hmult(limbs),
            "HSquare": lambda: self.costs.hsquare(limbs),
            "Rescale": lambda: self.costs.rescale(limbs),
            "HRotate": lambda: self.costs.hrotate(limbs),
            "HConjugate": lambda: self.costs.hrotate(limbs),
            "HoistedRotate": lambda: self.costs.hoisted_rotations(
                limbs, kwargs.get("rotations", 2)
            ),
            "NTT": lambda: self.costs.ntt_microbenchmark(limbs),
            "iNTT": lambda: self.costs.ntt_microbenchmark(limbs, inverse=True),
            "PtMultRescale": lambda: self.costs.ptmult_rescale(limbs),
            "KeySwitch": lambda: self.costs.key_switch(limbs),
        }
        if operation not in builders:
            raise ValueError(f"unknown operation {operation!r}")
        return builders[operation]()

    def execute(self, cost: OperationCost) -> ExecutionResult:
        """Run a prepared cost object through the device model."""
        return self.device.execute(cost.kernels)

    def time_operation(self, operation: str, limbs: int | None = None, **kwargs) -> float:
        """Return the modelled execution time (seconds) of one operation."""
        return self.execute(self.operation_cost(operation, limbs, **kwargs)).total_time

    # ------------------------------------------------------------------

    def with_limb_batch(self, limb_batch: int) -> "FIDESlibModel":
        """Return a copy of this model using a different limb batch."""
        return FIDESlibModel(
            self.platform, self.params, limb_batch=limb_batch,
            streams=self.device.scheduler.streams,
        )

    def best_limb_batch(self, candidates: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 10, 12),
                        *, operation: str = "HMult", limbs: int | None = None) -> int:
        """Sweep the limb-batch parameter (Figure 7) and return the fastest."""
        best_batch, best_time = None, float("inf")
        for batch in candidates:
            model = self.with_limb_batch(batch)
            elapsed = model.time_operation(operation, limbs)
            if elapsed < best_time:
                best_batch, best_time = batch, elapsed
        return best_batch


@lru_cache(maxsize=None)
def _cached_best_batch(platform_name: str, log_n: int, depth: int, scale: int, dnum: int) -> int:
    from repro.gpu.platforms import PLATFORMS_BY_NAME
    from repro.ckks.params import paper_parameter_set

    params = paper_parameter_set(log_n, depth, scale, dnum)
    model = FIDESlibModel(PLATFORMS_BY_NAME[platform_name], params)
    return model.best_limb_batch()


def best_limb_batch_for(platform: ComputePlatform, params: CKKSParameters) -> int:
    """Cached Figure 7-style sweep used by the figure benches."""
    log_n = params.ring_degree.bit_length() - 1
    return _cached_best_batch(platform.name, log_n, params.mult_depth,
                              params.scale_bits, params.dnum)


__all__ = ["FIDESlibModel", "best_limb_batch_for"]
