"""Composite workloads: bootstrapping and logistic regression.

Tables VI and VII of the paper evaluate composite workloads rather than
single primitives.  The classes here express those workloads as sequences
of CKKS operations (with the level schedule bootstrapping and LR actually
follow), build them against any backend's
:class:`~repro.perf.costmodel.CKKSOperationCosts`, and report modelled
times per backend.  The same structures are exercised functionally (at
reduced parameters) by :mod:`repro.apps`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ckks.params import CKKSParameters
from repro.perf.costmodel import CKKSOperationCosts, OperationCost


@dataclass
class BootstrapWorkload:
    """The CKKS bootstrapping pipeline at a given slot count (Table VI).

    The cost structure follows :class:`repro.ckks.bootstrap.Bootstrapper`:
    ModRaise, a BSGS CoeffToSlot (with partial sums for sparse packing),
    two ApproxModEval evaluations (Chebyshev Paterson-Stockmeyer plus
    double-angle iterations), and a BSGS SlotToCoeff.
    """

    params: CKKSParameters
    slots: int
    chebyshev_degree: int = 44
    double_angle_iterations: int = 3
    level_budget: int | None = None

    def __post_init__(self) -> None:
        if self.slots < 1 or self.slots > self.params.slots:
            raise ValueError(f"slots must lie in [1, {self.params.slots}]")
        if self.slots & (self.slots - 1):
            raise ValueError("slots must be a power of two")

    # -- level schedule -------------------------------------------------------

    @property
    def transform_levels(self) -> int:
        """Levels each homomorphic DFT consumes (sparse block decomposition).

        Following [40], [44] the DFT plaintext matrix is split into
        ``level_budget`` sparser block matrices; sparse packings need fewer
        blocks, which is why the paper's Table VI reports more remaining
        levels for small slot counts.
        """
        if self.level_budget is not None:
            return self.level_budget
        return max(1, min(3, math.ceil(math.log2(2 * self.slots) / 5)))

    @property
    def chebyshev_depth(self) -> int:
        """Levels consumed by the Paterson-Stockmeyer Chebyshev evaluation."""
        return math.ceil(math.log2(self.chebyshev_degree + 1)) + 1

    @property
    def depth_consumed(self) -> int:
        """Total levels one bootstrap consumes."""
        return (
            1  # CoeffToSlot pre-scaling
            + 2 * self.transform_levels
            + self.chebyshev_depth
            + self.double_angle_iterations
        )

    @property
    def remaining_levels(self) -> int:
        """Levels available for computation after bootstrapping."""
        return max(0, self.params.mult_depth - self.depth_consumed)

    # -- structure ------------------------------------------------------------

    def _transform_stages(self) -> list[int]:
        """Number of generalized diagonals per factored-DFT stage."""
        stages = self.transform_levels
        radix = max(2, round((2 * self.slots) ** (1.0 / stages)))
        return [2 * radix - 1] * stages

    def _linear_transform(self, costs: CKKSOperationCosts, limbs: int) -> OperationCost:
        """One factored homomorphic DFT (CoeffToSlot or SlotToCoeff).

        Each stage is a BSGS multiplication by a sparse block matrix with
        ``~2*radix`` generalized diagonals; baby-step rotations are hoisted
        (§III-F.6) and the accumulation uses the dot-product fusion.
        """
        cost = OperationCost("LinearTransform")
        stage_limbs = limbs
        for diagonals in self._transform_stages():
            baby = max(1, 1 << math.ceil(math.log2(max(1, math.isqrt(diagonals)))))
            giant = max(1, math.ceil(diagonals / baby))
            if baby > 1:
                cost.extend(costs.hoisted_rotations(stage_limbs, baby - 1))
            cost.extend(costs.ptmult(stage_limbs).scaled(float(diagonals)))
            cost.extend(costs.hadd(stage_limbs).scaled(float(max(0, diagonals - giant))))
            for _ in range(giant - 1):
                cost.extend(costs.hrotate(stage_limbs))
            cost.extend(costs.rescale(stage_limbs))
            stage_limbs = max(2, stage_limbs - 1)
        return cost

    def _eval_mod(self, costs: CKKSOperationCosts, limbs: int) -> OperationCost:
        """One ApproxModEval (Chebyshev PS + double angle) on one ciphertext."""
        degree = self.chebyshev_degree
        baby = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
        giants = max(1, math.ceil(math.log2(max(2, (degree + 1) / baby))))
        blocks = math.ceil((degree + 1) / baby)
        cost = OperationCost("ApproxModEval")
        cost.extend(costs.hsquare(limbs).scaled(float(baby - 1)))        # baby steps
        cost.extend(costs.hsquare(limbs).scaled(float(giants)))          # giant steps
        cost.extend(costs.hmult(limbs).scaled(float(blocks)))            # PS recombination
        cost.extend(costs.scalar_mult(limbs).scaled(float(degree)))      # coefficients
        cost.extend(costs.hadd(limbs).scaled(float(degree)))
        cost.extend(costs.hsquare(limbs).scaled(float(self.double_angle_iterations)))
        cost.extend(costs.scalar_add(limbs).scaled(float(self.double_angle_iterations + 2)))
        return cost

    def build(self, costs: CKKSOperationCosts) -> OperationCost:
        """Build the full bootstrap cost against a backend's cost builder."""
        params = self.params
        full = params.limb_count
        cost = OperationCost(f"Bootstrap[{self.slots} slots]")
        # ModRaise: base-extend both components from q0 to the full basis.
        for _ in range(2):
            cost.kernels += costs.base_conversion_kernels(1, full, tag="modraise")
            cost.kernels += costs.ntt_kernels(full, tag="modraise-ntt")
        # Sparse packing: replicate message across N/2 slots (partial sums).
        sparse_factor = params.slots // self.slots
        partial_sum_rotations = int(math.log2(sparse_factor)) if sparse_factor > 1 else 0
        limbs_c2s = full - 1
        for _ in range(partial_sum_rotations):
            cost.extend(costs.hrotate(limbs_c2s))
            cost.extend(costs.hadd(limbs_c2s))
        # CoeffToSlot (+ conjugation split into the two halves).
        cost.extend(costs.scalar_mult(full))
        cost.extend(self._linear_transform(costs, limbs_c2s))
        limbs_after_c2s = max(2, full - 1 - self.transform_levels)
        cost.extend(costs.hrotate(limbs_after_c2s))           # conjugation
        cost.extend(costs.hadd(limbs_after_c2s).scaled(2.0))
        # ApproxModEval on both halves.
        limbs_mod = max(2, limbs_after_c2s - self.chebyshev_depth // 2)
        cost.extend(self._eval_mod(costs, limbs_mod).scaled(2.0))
        # SlotToCoeff.
        limbs_s2c = max(2, self.remaining_levels + self.transform_levels)
        cost.extend(costs.hadd(limbs_s2c))
        cost.extend(self._linear_transform(costs, limbs_s2c))
        return cost

    # -- reporting ------------------------------------------------------------

    def amortized_time_us(self, total_time_s: float) -> float:
        """Amortised time per slot-level in microseconds (Table VI metric)."""
        work_items = self.slots * max(1, self.remaining_levels)
        return total_time_s * 1e6 / work_items


@dataclass
class LogisticRegressionWorkload:
    """Encrypted logistic-regression training iteration (Table VII).

    Mirrors the mini-batch gradient-descent iteration of Han et al. [51]
    as implemented functionally in
    :mod:`repro.apps.logistic_regression`: an inner product between the
    packed sample matrix and the weight vector (rotations + multiplies), a
    degree-3 polynomial sigmoid, the gradient aggregation across the
    mini-batch, and the weight update.  ``bootstrap_every_iteration``
    matches the paper's configuration.
    """

    params: CKKSParameters
    batch_samples: int = 1024
    features: int = 32
    bootstrap_slots: int = 32768
    working_limbs: int | None = None

    def iteration_operations(self) -> dict[str, float]:
        """Operation counts of one training iteration (no bootstrap)."""
        feature_rotations = int(math.log2(self.features))
        batch_rotations = int(math.log2(max(2, self.batch_samples // self.features)))
        return {
            "HMult": 4.0,              # X·w, sigmoid square/cube, gradient product
            "HRotate": float(feature_rotations + batch_rotations + 4),
            "PtMult": 4.0,             # masks and learning-rate application
            "HAdd": float(feature_rotations + batch_rotations + 4),
            "ScalarMult": 2.0,
            "ScalarAdd": 2.0,
            "Rescale": 3.0,
        }

    def build_iteration(self, costs: CKKSOperationCosts) -> OperationCost:
        """Cost of one LR iteration without bootstrapping.

        The iteration runs on the levels left after the per-iteration
        bootstrap, so the default working limb count is the bootstrap's
        ``remaining_levels``.
        """
        if self.working_limbs is not None:
            limbs = self.working_limbs
        else:
            limbs = max(
                6, BootstrapWorkload(self.params, self.bootstrap_slots).remaining_levels
            )
        cost = OperationCost("LR iteration")
        builders = {
            "HMult": costs.hmult,
            "HRotate": costs.hrotate,
            "PtMult": costs.ptmult,
            "HAdd": costs.hadd,
            "ScalarMult": costs.scalar_mult,
            "ScalarAdd": costs.scalar_add,
            "Rescale": costs.rescale,
        }
        for op, count in self.iteration_operations().items():
            cost.extend(builders[op](limbs).scaled(count))
        return cost

    def build_iteration_with_bootstrap(self, costs: CKKSOperationCosts) -> OperationCost:
        """Cost of one LR iteration followed by a bootstrap (paper setting)."""
        cost = self.build_iteration(costs)
        bootstrap = BootstrapWorkload(self.params, self.bootstrap_slots)
        cost.extend(bootstrap.build(costs))
        return cost


__all__ = ["BootstrapWorkload", "LogisticRegressionWorkload"]
