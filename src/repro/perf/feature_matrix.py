"""Qualitative feature comparison of GPU CKKS libraries (Table VIII).

The table is qualitative: which libraries are open source, published,
feature-complete (bootstrapping), interoperable with OpenFHE, and how much
testing/benchmarking infrastructure they ship.  The entries below follow
the paper's Table VIII and the accompanying §V discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

YES = "✓"
NO = ""
WIP = "WIP"
LR = "LR"


@dataclass(frozen=True)
class LibraryFeatures:
    """Feature flags of one GPU CKKS library."""

    name: str
    reference: str
    open_source: str = NO
    published: str = NO
    bootstrapping: str = NO
    openfhe_interoperability: str = NO
    benchmarks: str = NO
    microbenchmarks: str = NO
    unit_tests: str = NO
    integration_tests: str = NO
    multi_gpu: str = NO

    def as_row(self) -> dict[str, str]:
        """Return the Table VIII row for this library."""
        return {
            "Library": self.name,
            "Open Source": self.open_source,
            "Published": self.published,
            "Bootstrapping": self.bootstrapping,
            "OpenFHE Inter.": self.openfhe_interoperability,
            "Benchmarks": self.benchmarks,
            "Microbench.": self.microbenchmarks,
            "Unit Tests": self.unit_tests,
            "Integration Tests": self.integration_tests,
            "Multi-GPU": self.multi_gpu,
        }


#: Table VIII of the paper (§V Related Work).
FEATURE_MATRIX: tuple[LibraryFeatures, ...] = (
    LibraryFeatures(
        name="HEaaN", reference="[17]",
        published=YES, bootstrapping=YES, benchmarks=YES, microbenchmarks=YES,
    ),
    LibraryFeatures(
        name="HEonGPU", reference="[18]",
        open_source=YES, microbenchmarks=YES, unit_tests=YES,
    ),
    LibraryFeatures(
        name="Over100x", reference="[19]",
        open_source=YES, published=YES, bootstrapping=YES, benchmarks=YES,
        microbenchmarks=YES,
    ),
    LibraryFeatures(
        name="Troy-Nova", reference="[20]",
        open_source=YES, microbenchmarks=YES, unit_tests=YES, multi_gpu=YES,
    ),
    LibraryFeatures(
        name="Phantom", reference="[15]",
        open_source=YES, published=YES, benchmarks=YES, microbenchmarks=YES,
    ),
    LibraryFeatures(
        name="Cheddar", reference="[16]",
        published=YES, bootstrapping=YES, microbenchmarks=YES,
    ),
    LibraryFeatures(
        name="Liberate-FHE", reference="[23]",
        open_source=YES, multi_gpu=YES,
    ),
    LibraryFeatures(
        name="TensorFHE", reference="[22]",
        published=YES, bootstrapping=YES, benchmarks=YES, microbenchmarks=YES,
    ),
    LibraryFeatures(
        name="FIDESlib", reference="(this work)",
        open_source=YES, published=YES, bootstrapping=YES,
        openfhe_interoperability=YES, benchmarks=LR, microbenchmarks=YES,
        unit_tests=YES, integration_tests=YES, multi_gpu=WIP,
    ),
)


def feature_table() -> list[dict[str, str]]:
    """Return Table VIII as a list of row dictionaries."""
    return [library.as_row() for library in FEATURE_MATRIX]


def feature_counts() -> dict[str, int]:
    """Count, per feature, how many libraries provide it (used by tests)."""
    counts: dict[str, int] = {}
    for library in FEATURE_MATRIX:
        for key, value in library.as_row().items():
            if key == "Library":
                continue
            counts[key] = counts.get(key, 0) + (1 if value not in (NO,) else 0)
    return counts


__all__ = ["LibraryFeatures", "FEATURE_MATRIX", "feature_table", "feature_counts", "YES", "NO", "WIP", "LR"]
