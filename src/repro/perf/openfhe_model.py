"""OpenFHE CPU baselines: single-threaded and HEXL/AVX-512 with 24 threads.

The paper's Table V/VI/VII baselines run OpenFHE on an AMD Ryzen 9 7900,
either single-threaded ("OpenFHE (Baseline)") or with Intel HEXL and 24
threads ("OpenFHE (Intel HEXL, 24 threads)").  The model reuses the same
operation decomposition as the GPU backends (the algorithms are
identical), and converts operation counts and data volume into time with a
small number of calibrated constants:

* the baseline retires a fraction of an operation per cycle on one core
  (modular arithmetic expands to many scalar instructions);
* the HEXL build gets a vector speedup on the arithmetic and a modest
  effective parallel speedup -- the paper itself observes that OpenFHE's
  multi-backend abstraction keeps the 24-thread HEXL build within 1-3.5x
  of the single-threaded baseline on most primitives;
* both are additionally bounded by DRAM bandwidth and pay a fixed
  per-operation software overhead (allocation and layer dispatch).
"""

from __future__ import annotations

from repro.ckks.params import CKKSParameters
from repro.gpu.platforms import CPU_RYZEN_9_7900, ComputePlatform
from repro.perf.calibration import CPU_CALIBRATION
from repro.perf.costmodel import CKKSOperationCosts, OperationCost


class OpenFHEModel:
    """Performance model of the OpenFHE CPU library."""

    VARIANTS = ("baseline", "hexl")
    SUPPORTED_OPERATIONS = (
        "ScalarAdd", "PtAdd", "HAdd", "ScalarMult", "PtMult", "HMult",
        "HSquare", "Rescale", "HRotate", "HConjugate", "HoistedRotate",
        "NTT", "iNTT", "PtMultRescale", "KeySwitch", "Bootstrap",
    )

    def __init__(
        self,
        params: CKKSParameters,
        *,
        variant: str = "baseline",
        platform: ComputePlatform = CPU_RYZEN_9_7900,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        self.params = params
        self.variant = variant
        self.platform = platform
        self.costs = CKKSOperationCosts(params, limb_batch=None, fusion=False)

    # ------------------------------------------------------------------

    def supports(self, operation: str) -> bool:
        """OpenFHE implements the full CKKS API including bootstrapping."""
        return operation in self.SUPPORTED_OPERATIONS

    def operation_cost(self, operation: str, limbs: int | None = None, **kwargs) -> OperationCost:
        """Return the operation decomposition (shared with the GPU models)."""
        limbs = self.params.limb_count if limbs is None else limbs
        builders = {
            "ScalarAdd": lambda: self.costs.scalar_add(limbs),
            "PtAdd": lambda: self.costs.ptadd(limbs),
            "HAdd": lambda: self.costs.hadd(limbs),
            "ScalarMult": lambda: self.costs.scalar_mult(limbs),
            "PtMult": lambda: self.costs.ptmult(limbs),
            "HMult": lambda: self.costs.hmult(limbs),
            "HSquare": lambda: self.costs.hsquare(limbs),
            "Rescale": lambda: self.costs.rescale(limbs),
            "HRotate": lambda: self.costs.hrotate(limbs),
            "HConjugate": lambda: self.costs.hrotate(limbs),
            "HoistedRotate": lambda: self.costs.hoisted_rotations(
                limbs, kwargs.get("rotations", 2)
            ),
            "NTT": lambda: self.costs.ntt_microbenchmark(limbs),
            "iNTT": lambda: self.costs.ntt_microbenchmark(limbs, inverse=True),
            "PtMultRescale": lambda: self.costs.ptmult_rescale(limbs),
            "KeySwitch": lambda: self.costs.key_switch(limbs),
        }
        if operation not in builders:
            raise ValueError(f"unknown operation {operation!r}")
        return builders[operation]()

    def time_cost(self, cost: OperationCost) -> float:
        """Convert an operation decomposition into CPU time (seconds)."""
        cal = CPU_CALIBRATION
        cycles_per_s = self.platform.frequency_ghz * 1e9
        if self.variant == "baseline":
            compute = cost.int_ops / (cycles_per_s * cal.baseline_ops_per_cycle)
            memory = cost.bytes_moved / (self.platform.bandwidth_bytes_per_s * 0.25)
            overhead = cal.baseline_op_overhead
        else:
            throughput = (
                cycles_per_s
                * cal.baseline_ops_per_cycle
                * cal.hexl_parallel_speedup
                * cal.hexl_vector_speedup
            )
            compute = cost.int_ops / throughput
            memory = cost.bytes_moved / (
                self.platform.bandwidth_bytes_per_s * cal.hexl_bandwidth_efficiency
            )
            overhead = cal.hexl_op_overhead
        return max(compute, memory) + overhead

    def time_operation(self, operation: str, limbs: int | None = None, **kwargs) -> float:
        """Return the modelled execution time (seconds) of one operation."""
        return self.time_cost(self.operation_cost(operation, limbs, **kwargs))


__all__ = ["OpenFHEModel"]
