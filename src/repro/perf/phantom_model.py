"""Phantom execution plan on the GPU model (the open-source GPU baseline).

Phantom [15] is the leading open-source GPU CKKS library the paper
compares against.  Its published design differs from FIDESlib in the ways
Table VIII and §V spell out, and those differences are what this model
encodes:

* radix-8 NTT formulation (more arithmetic per butterfly than the radix-2
  scheme the paper found to minimise compute);
* no kernel fusion -- element-wise pre/post-processing around NTT kernels
  is separate traffic;
* monolithic kernels over all limbs on a single stream -- no limb
  batching, so large working sets spill the L2 cache and kernel-launch
  overhead is serialised;
* missing functionality: no ScalarAdd, ScalarMult, HSquare, hoisted
  rotations or bootstrapping (reported as ``N/A`` in Table V).
"""

from __future__ import annotations

from repro.ckks.params import CKKSParameters
from repro.gpu.device import ExecutionResult, GPUDevice
from repro.gpu.platforms import ComputePlatform
from repro.perf.calibration import GPU_CALIBRATION
from repro.perf.costmodel import CKKSOperationCosts, OperationCost


class UnsupportedOperation(NotImplementedError):
    """Raised when a baseline library does not implement an operation."""


class PhantomModel:
    """Performance model of the Phantom library on a given GPU platform."""

    SUPPORTED_OPERATIONS = (
        "PtAdd", "HAdd", "PtMult", "HMult", "Rescale", "HRotate",
        "HConjugate", "NTT", "iNTT", "PtMultRescale", "KeySwitch",
    )
    UNSUPPORTED_OPERATIONS = (
        "ScalarAdd", "ScalarMult", "HSquare", "HoistedRotate", "Bootstrap",
    )

    def __init__(self, platform: ComputePlatform, params: CKKSParameters) -> None:
        self.platform = platform
        self.params = params
        self.device = GPUDevice(
            platform,
            streams=GPU_CALIBRATION.phantom_streams,
            compute_efficiency=GPU_CALIBRATION.compute_efficiency,
            bandwidth_efficiency=GPU_CALIBRATION.bandwidth_efficiency,
        )
        self.costs = CKKSOperationCosts(
            params,
            limb_batch=None,  # monolithic kernels over every limb
            fusion=False,
            ntt_compute_factor=GPU_CALIBRATION.phantom_ntt_compute_penalty,
            fusion_penalty=GPU_CALIBRATION.phantom_fusion_penalty,
            ntt_twiddle_traffic=True,
        )

    def supports(self, operation: str) -> bool:
        """True when Phantom implements ``operation``."""
        return operation in self.SUPPORTED_OPERATIONS

    def operation_cost(self, operation: str, limbs: int | None = None, **kwargs) -> OperationCost:
        """Return the kernel decomposition, raising for unsupported ops."""
        if not self.supports(operation):
            raise UnsupportedOperation(
                f"Phantom does not implement {operation} (Table V reports N/A)"
            )
        limbs = self.params.limb_count if limbs is None else limbs
        builders = {
            "PtAdd": lambda: self.costs.ptadd(limbs),
            "HAdd": lambda: self.costs.hadd(limbs),
            "PtMult": lambda: self.costs.ptmult(limbs),
            "HMult": lambda: self.costs.hmult(limbs),
            "Rescale": lambda: self.costs.rescale(limbs),
            "HRotate": lambda: self.costs.hrotate(limbs),
            "HConjugate": lambda: self.costs.hrotate(limbs),
            "NTT": lambda: self.costs.ntt_microbenchmark(limbs),
            "iNTT": lambda: self.costs.ntt_microbenchmark(limbs, inverse=True),
            "PtMultRescale": lambda: self.costs.ptmult_rescale(limbs),
            "KeySwitch": lambda: self.costs.key_switch(limbs),
        }
        return builders[operation]()

    def execute(self, cost: OperationCost) -> ExecutionResult:
        """Run a prepared cost object through the device model."""
        return self.device.execute(cost.kernels)

    def time_operation(self, operation: str, limbs: int | None = None, **kwargs) -> float:
        """Return the modelled execution time (seconds) of one operation."""
        return self.execute(self.operation_cost(operation, limbs, **kwargs)).total_time


__all__ = ["PhantomModel", "UnsupportedOperation"]
