"""Performance models: execution plans for FIDESlib, Phantom and OpenFHE.

The paper's evaluation (Tables V-VII, Figures 4-8) compares four
implementations of the same CKKS operations:

* **FIDESlib** on a GPU -- kernel fusion, limb batching, multi-stream
  execution, radix-2 hierarchical NTT (modelled by
  :class:`repro.perf.fideslib_model.FIDESlibModel`);
* **Phantom** on a GPU -- no fusion, single stream, monolithic kernels
  (:class:`repro.perf.phantom_model.PhantomModel`);
* **OpenFHE** single-threaded and **OpenFHE + HEXL** with 24 threads on a
  CPU (:class:`repro.perf.openfhe_model.OpenFHEModel`).

Each model maps a CKKS operation (at a given parameter set and level) to
either a kernel sequence executed by the :mod:`repro.gpu` device model or
an operation-count/bandwidth estimate for the CPU.  The workload
composition used by the table/figure benches lives in
:mod:`repro.perf.workloads`.
"""

from repro.perf.calibration import TraceReconciliation, reconcile_trace
from repro.perf.costmodel import CKKSOperationCosts, OperationCost
from repro.perf.trace_model import TraceCostModel, TraceReport
from repro.perf.fideslib_model import FIDESlibModel
from repro.perf.phantom_model import PhantomModel
from repro.perf.openfhe_model import OpenFHEModel
from repro.perf.workloads import BootstrapWorkload, LogisticRegressionWorkload

__all__ = [
    "CKKSOperationCosts",
    "OperationCost",
    "TraceCostModel",
    "TraceReport",
    "TraceReconciliation",
    "reconcile_trace",
    "FIDESlibModel",
    "PhantomModel",
    "OpenFHEModel",
    "BootstrapWorkload",
    "LogisticRegressionWorkload",
]
